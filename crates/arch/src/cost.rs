//! [`CostModel`] — cycle costs for IR operations.
//!
//! The reproduction does not generate machine code; instead the VM charges
//! each executed IR operation a platform-dependent cycle cost. Only the
//! *relative* costs matter for reproducing the paper's result shape: an
//! explicit null check costs a compare-and-branch on IA32 but a single
//! conditional trap cycle on PowerPC (§3.3.1, §5.4), memory traffic
//! dominates ALU work, and taken traps are catastrophically expensive
//! (which is fine — they only fire on genuinely null pointers).

/// Per-operation cycle costs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Simple integer ALU op (add/sub/logic/shift), move, constant.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Float add/sub/mul/compare/convert.
    pub float_alu: u64,
    /// Float divide.
    pub float_div: u64,
    /// Memory read (field load, array-length load, array element load).
    pub load: u64,
    /// Memory write (field store, array element store).
    pub store: u64,
    /// Conditional or unconditional branch.
    pub branch: u64,
    /// An **explicit** null check instruction (compare+branch on IA32, one
    /// `tw` conditional trap cycle on PowerPC).
    pub explicit_null_check: u64,
    /// An array bounds check (compare+branch pair).
    pub bound_check: u64,
    /// Fixed call/return overhead (dispatch, frame setup).
    pub call_overhead: u64,
    /// Extra overhead for virtual dispatch (method table load + indirect
    /// branch) on top of [`Self::call_overhead`].
    pub virtual_dispatch: u64,
    /// Object allocation base cost.
    pub alloc_base: u64,
    /// Allocation cost per slot (zeroing).
    pub alloc_per_slot: u64,
    /// A math intrinsic lowered to hardware (e.g. x87 `f2xm1`-based exp).
    pub intrinsic: u64,
    /// The same math function as an out-of-line library call (platforms
    /// without the instruction, §5.4).
    pub math_library_call: u64,
    /// Taking a hardware trap and dispatching it to an exception handler.
    pub trap_taken: u64,
    /// Software exception throw/dispatch.
    pub throw_dispatch: u64,
    /// An `observe` output operation.
    pub observe: u64,
}

impl CostModel {
    /// Pentium III-class IA32 costs. Explicit null checks are a two-cycle
    /// compare-and-branch.
    pub const fn ia32() -> Self {
        CostModel {
            int_alu: 1,
            int_mul: 4,
            int_div: 40,
            float_alu: 3,
            float_div: 32,
            load: 3,
            store: 3,
            branch: 2,
            explicit_null_check: 2,
            bound_check: 2,
            call_overhead: 12,
            virtual_dispatch: 6,
            alloc_base: 40,
            alloc_per_slot: 1,
            intrinsic: 40,
            math_library_call: 150,
            trap_taken: 1200,
            throw_dispatch: 120,
            observe: 10,
        }
    }

    /// PowerPC 604e-class costs. An explicit null check is a single-cycle
    /// `tw` (trap word) conditional trap (paper §3.3.1: *"a conditional trap
    /// instruction (which requires only one cycle if it is not taken)"*).
    pub const fn ppc() -> Self {
        CostModel {
            int_alu: 1,
            int_mul: 4,
            int_div: 36,
            float_alu: 3,
            float_div: 31,
            load: 3,
            store: 3,
            branch: 2,
            explicit_null_check: 1,
            bound_check: 2,
            call_overhead: 14,
            virtual_dispatch: 7,
            alloc_base: 40,
            alloc_per_slot: 1,
            // No exponential instruction on PowerPC (§5.4): intrinsics are
            // never formed there, but keep a value for completeness.
            intrinsic: 60,
            math_library_call: 180,
            trap_taken: 1500,
            throw_dispatch: 140,
            observe: 10,
        }
    }

    /// S/390 costs (close to IA32 for our purposes).
    pub const fn s390() -> Self {
        let mut m = Self::ia32();
        m.explicit_null_check = 2;
        m.trap_taken = 1400;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ppc_explicit_check_is_cheaper_than_ia32() {
        // §5.4: "the execution cost for an explicit null check on the
        // PowerPC platform (using a conditional trap) is smaller than that
        // on the Intel platform".
        assert!(CostModel::ppc().explicit_null_check < CostModel::ia32().explicit_null_check);
    }

    #[test]
    fn traps_cost_more_than_checks() {
        for m in [CostModel::ia32(), CostModel::ppc(), CostModel::s390()] {
            assert!(m.trap_taken > 100 * m.explicit_null_check);
        }
    }

    #[test]
    fn library_math_costs_more_than_intrinsic() {
        let m = CostModel::ia32();
        assert!(m.math_library_call > m.intrinsic);
    }
}
