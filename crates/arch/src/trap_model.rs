//! [`TrapModel`] — what the hardware/OS pair guarantees about null accesses.

use njc_ir::AccessKind;

/// The hardware-trap capabilities of a platform.
///
/// A *guaranteed-trapping* access is one the compiler may rely on to raise a
/// hardware trap when the base reference is null; only such accesses may
/// carry an implicit null check (paper §4.2.1, in-block insertion algorithm:
/// *"I will cause a hardware trap if object reference is null"*).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrapModel {
    /// Size in bytes of the protected area at address zero. Accesses with a
    /// statically known offset `< trap_area_bytes` fault on a null base.
    pub trap_area_bytes: u64,
    /// Whether *reads* of the protected area raise a trap. False on AIX,
    /// which silently satisfies reads of the first page (paper §1).
    pub traps_on_read: bool,
    /// Whether *writes* to the protected area raise a trap.
    pub traps_on_write: bool,
}

impl TrapModel {
    /// Windows NT on IA32: both reads and writes of page 0 fault.
    /// The protected region is a single 4 KiB page.
    pub const fn windows_ia32() -> Self {
        TrapModel {
            trap_area_bytes: 4096,
            traps_on_read: true,
            traps_on_write: true,
        }
    }

    /// AIX on PowerPC: only writes to the first page fault; reads return
    /// data silently (paper §1, §3.3.1 Figure 5 (2)).
    pub const fn aix_ppc() -> Self {
        TrapModel {
            trap_area_bytes: 4096,
            traps_on_read: false,
            traps_on_write: true,
        }
    }

    /// Linux on S/390: both reads and writes fault (the paper's JIT also
    /// targets S/390; modeled like Windows with a 4 KiB page).
    pub const fn linux_s390() -> Self {
        TrapModel {
            trap_area_bytes: 4096,
            traps_on_read: true,
            traps_on_write: true,
        }
    }

    /// Solaris on SPARC (the LaTTe assumption from §2.1): all memory reads
    /// and writes cause hardware traps; 8 KiB pages.
    pub const fn solaris_sparc() -> Self {
        TrapModel {
            trap_area_bytes: 8192,
            traps_on_read: true,
            traps_on_write: true,
        }
    }

    /// A model with no trap support at all — the paper's
    /// "No Null Opt. (No Hardware Trap)" baseline, where every null check
    /// must be an explicit instruction.
    pub const fn no_traps() -> Self {
        TrapModel {
            trap_area_bytes: 0,
            traps_on_read: false,
            traps_on_write: false,
        }
    }

    /// Whether an access of `kind` at statically-known byte offset `offset`
    /// is **guaranteed** to trap when the base is null.
    ///
    /// `offset == None` means the offset is computed at run time (array
    /// element accesses); the compiler may not rely on those trapping
    /// because the effective address can exceed the trap area.
    pub fn access_traps(&self, kind: AccessKind, offset: Option<u64>) -> bool {
        let Some(off) = offset else { return false };
        if off >= self.trap_area_bytes {
            return false;
        }
        match kind {
            AccessKind::Read => self.traps_on_read,
            AccessKind::Write => self.traps_on_write,
        }
    }

    /// Whether an access at a *runtime* effective offset would actually
    /// fault on this platform — the VM's ground truth, as opposed to the
    /// compiler-facing guarantee of [`Self::access_traps`].
    pub fn runtime_faults(&self, kind: AccessKind, effective_offset: u64) -> bool {
        if effective_offset >= self.trap_area_bytes {
            return false;
        }
        match kind {
            AccessKind::Read => self.traps_on_read,
            AccessKind::Write => self.traps_on_write,
        }
    }

    /// Whether `addr` lies inside the protected area at address zero — the
    /// region where a null-base access produces a guard-page fault rather
    /// than touching mapped memory.
    pub fn protects(&self, addr: u64) -> bool {
        addr < self.trap_area_bytes
    }

    /// Whether loads may be **speculated** above their null checks: legal
    /// exactly when a null-base read cannot fault (paper §3.3.1: *"If a
    /// memory read with a null pointer is guaranteed not to cause a hardware
    /// trap, it can be moved across its null check speculatively"*).
    pub fn reads_are_speculatable(&self) -> bool {
        !self.traps_on_read
    }

    /// Whether the platform supports implicit null checks at all.
    pub fn supports_implicit_checks(&self) -> bool {
        self.trap_area_bytes > 0 && (self.traps_on_read || self.traps_on_write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_traps_on_reads_and_writes() {
        let m = TrapModel::windows_ia32();
        assert!(m.access_traps(AccessKind::Read, Some(0)));
        assert!(m.access_traps(AccessKind::Write, Some(8)));
        assert!(!m.reads_are_speculatable());
        assert!(m.supports_implicit_checks());
    }

    #[test]
    fn aix_traps_only_on_writes() {
        let m = TrapModel::aix_ppc();
        assert!(!m.access_traps(AccessKind::Read, Some(0)));
        assert!(m.access_traps(AccessKind::Write, Some(0)));
        assert!(m.reads_are_speculatable());
        assert!(m.supports_implicit_checks());
    }

    #[test]
    fn big_offset_never_traps() {
        // The Figure 5 (1) case: offset beyond the protected area.
        let m = TrapModel::windows_ia32();
        assert!(!m.access_traps(AccessKind::Read, Some(4096)));
        assert!(!m.access_traps(AccessKind::Write, Some(1 << 20)));
        assert!(m.access_traps(AccessKind::Read, Some(4095)));
    }

    #[test]
    fn dynamic_offset_never_guaranteed() {
        let m = TrapModel::windows_ia32();
        assert!(!m.access_traps(AccessKind::Read, None));
        assert!(!m.access_traps(AccessKind::Write, None));
    }

    #[test]
    fn protects_matches_trap_area() {
        let m = TrapModel::windows_ia32();
        assert!(m.protects(0));
        assert!(m.protects(4095));
        assert!(!m.protects(4096));
        assert!(!TrapModel::no_traps().protects(0));
    }

    #[test]
    fn runtime_faults_follow_effective_offset() {
        let m = TrapModel::windows_ia32();
        assert!(m.runtime_faults(AccessKind::Read, 16));
        assert!(!m.runtime_faults(AccessKind::Read, 4096));
        let aix = TrapModel::aix_ppc();
        assert!(!aix.runtime_faults(AccessKind::Read, 16));
        assert!(aix.runtime_faults(AccessKind::Write, 16));
    }

    #[test]
    fn no_trap_model_disables_everything() {
        let m = TrapModel::no_traps();
        assert!(!m.supports_implicit_checks());
        assert!(!m.access_traps(AccessKind::Read, Some(0)));
        assert!(!m.runtime_faults(AccessKind::Write, 0));
        // With no read traps, reads are trivially speculatable.
        assert!(m.reads_are_speculatable());
    }
}
