//! [`Platform`] — a named (architecture, OS) pair bundling trap and cost
//! models, with presets for the machines the paper evaluates on.

use crate::cost::CostModel;
use crate::trap_model::TrapModel;

/// CPU architecture family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArchKind {
    /// Intel IA32 (Pentium III in the paper).
    Ia32,
    /// PowerPC (604e in the paper).
    PowerPc,
    /// IBM S/390.
    S390,
}

/// Operating system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OsKind {
    /// Windows NT 4.0.
    WindowsNt,
    /// AIX 4.3.3.
    Aix,
    /// Linux.
    Linux,
}

/// A complete platform description used by both the compiler (phase 2 and
/// speculation legality) and the VM (runtime fault behaviour and costs).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Platform {
    /// Short human-readable name, e.g. `"ia32-winnt"`.
    pub name: &'static str,
    /// Architecture family.
    pub arch: ArchKind,
    /// Operating system.
    pub os: OsKind,
    /// Hardware trap capabilities.
    pub trap: TrapModel,
    /// Cycle costs.
    pub cost: CostModel,
    /// Simulated clock in Hz (converts cycles to reported seconds).
    pub clock_hz: u64,
    /// Whether the JIT can lower `Math.exp`-style calls to a hardware
    /// instruction (true on IA32, false on PowerPC — paper §5.4).
    pub has_fp_intrinsics: bool,
}

impl Platform {
    /// Pentium III 600 MHz, Windows NT 4.0 — the paper's primary platform
    /// (Tables 1–5).
    pub const fn windows_ia32() -> Self {
        Platform {
            name: "ia32-winnt",
            arch: ArchKind::Ia32,
            os: OsKind::WindowsNt,
            trap: TrapModel::windows_ia32(),
            cost: CostModel::ia32(),
            clock_hz: 600_000_000,
            has_fp_intrinsics: true,
        }
    }

    /// PowerPC 604e 332 MHz, AIX 4.3.3 — the paper's secondary platform
    /// (Tables 6–7). Reads of the null page do not trap; reads may be
    /// speculated instead.
    pub const fn aix_ppc() -> Self {
        Platform {
            name: "ppc-aix",
            arch: ArchKind::PowerPc,
            os: OsKind::Aix,
            trap: TrapModel::aix_ppc(),
            cost: CostModel::ppc(),
            clock_hz: 332_000_000,
            has_fp_intrinsics: false,
        }
    }

    /// S/390 Linux (the paper's third JIT target; not separately measured).
    pub const fn linux_s390() -> Self {
        Platform {
            name: "s390-linux",
            arch: ArchKind::S390,
            os: OsKind::Linux,
            trap: TrapModel::linux_s390(),
            cost: CostModel::s390(),
            clock_hz: 500_000_000,
            has_fp_intrinsics: false,
        }
    }

    /// This platform with a different trap model (used to build the
    /// "no hardware trap" baseline configuration).
    pub const fn with_trap_model(mut self, trap: TrapModel) -> Self {
        self.trap = trap;
        self
    }

    /// Converts a cycle count to seconds on this platform's clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::AccessKind;

    #[test]
    fn paper_platform_presets() {
        let win = Platform::windows_ia32();
        assert_eq!(win.clock_hz, 600_000_000);
        assert!(win.trap.traps_on_read);
        assert!(win.has_fp_intrinsics);

        let aix = Platform::aix_ppc();
        assert_eq!(aix.clock_hz, 332_000_000);
        assert!(!aix.trap.traps_on_read);
        assert!(aix.trap.traps_on_write);
        assert!(!aix.has_fp_intrinsics);
    }

    #[test]
    fn with_trap_model_overrides() {
        let p = Platform::windows_ia32().with_trap_model(TrapModel::no_traps());
        assert!(!p.trap.supports_implicit_checks());
        assert!(!p.trap.access_traps(AccessKind::Read, Some(0)));
        // Cost model is unchanged.
        assert_eq!(p.cost, CostModel::ia32());
    }

    #[test]
    fn cycles_to_seconds() {
        let p = Platform::windows_ia32();
        let s = p.cycles_to_seconds(600_000_000);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
