//! # njc-arch — architecture and operating-system models
//!
//! The architecture *dependent* half of the null check optimization (paper
//! §3.3, §4.2) consumes exactly three pieces of platform information, all
//! captured by [`TrapModel`]:
//!
//! 1. does accessing the protected page **trap on reads**, **writes**, or
//!    both (Windows/IA32: both; AIX/PowerPC: writes only — and reads of the
//!    first page silently succeed, paper §1 and §3.3.1);
//! 2. how large the **protected trap area** is — accesses at offsets beyond
//!    it never trap (the paper's "BigOffset" case, Figure 5 (1));
//! 3. what an **explicit null check costs** (IA32: compare + branch;
//!    PowerPC: a 1-cycle `tw` conditional trap, §3.3.1/§5.4).
//!
//! [`CostModel`] assigns cycle costs to IR operations so the VM can report
//! results whose *shape* matches the paper's measurements, and
//! [`Platform`] bundles the two with presets for the machines the paper
//! evaluates on.

pub mod cost;
pub mod platform;
pub mod trap_model;

pub use cost::CostModel;
pub use platform::{ArchKind, OsKind, Platform};
pub use trap_model::TrapModel;
