//! # njc-trap — simulated MMU with a protected null page
//!
//! The paper's implicit null checks rely on the operating system delivering
//! a hardware trap when the program dereferences a null pointer: the load or
//! store computes an effective address `null + offset` that lands inside a
//! protected page at the bottom of the address space.
//!
//! This crate reproduces that mechanism as a deterministic substrate:
//! [`GuardedMemory`] is a flat byte-addressed memory whose first
//! `trap_area_bytes` bytes form the guard region. Object allocation starts
//! above the guard, the null reference is address `0`, and every read/write
//! goes through the trap check:
//!
//! * access inside the guard region **and** the platform traps for that
//!   access kind → [`HardwareTrap`] is raised (the VM then dispatches it to
//!   a `NullPointerException` if the faulting site is a marked exception
//!   site);
//! * read inside the guard region on a platform that does *not* trap reads
//!   (AIX) → the read **silently returns zero**, exactly the behaviour the
//!   paper exploits for speculation (§3.3.1) and that makes the
//!   "Illegal Implicit" configuration of §5.4 unsound;
//! * access beyond the guard region with a null base (the "BigOffset" case
//!   of Figure 5) → lands in ordinary memory and is reported as a
//!   [`MemoryError::WildAccess`] so tests can detect the corruption a real
//!   system would suffer.
//!
//! **Substitution note** (see DESIGN.md §5): a production JIT would install
//! a real `SIGSEGV` handler. Signal handlers are process-global and
//! interfere with test harnesses, so this simulated MMU exercises the same
//! code path — effective-address computation, fault detection, exception
//! site lookup — deterministically and portably.

use std::fmt;

use njc_arch::TrapModel;
use njc_ir::AccessKind;

/// A hardware trap raised by a guarded access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HardwareTrap {
    /// The faulting effective address (inside the guard region).
    pub address: u64,
    /// Whether the faulting access was a read or a write.
    pub kind: AccessKind,
}

impl fmt::Display for HardwareTrap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        write!(
            f,
            "hardware trap: {k} of protected address {:#x}",
            self.address
        )
    }
}

impl std::error::Error for HardwareTrap {}

/// A non-trap memory failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemoryError {
    /// The access faulted in the guard region.
    Trap(HardwareTrap),
    /// The access fell outside every allocation — e.g. a null-base access
    /// whose offset exceeds the guard region ("BigOffset" without an
    /// explicit check). A real machine would silently corrupt or crash
    /// here; we report it so the soundness tests can catch it.
    WildAccess {
        /// The wild effective address.
        address: u64,
        /// Read or write.
        kind: AccessKind,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Trap(t) => t.fmt(f),
            MemoryError::WildAccess { address, kind } => {
                let k = match kind {
                    AccessKind::Read => "read",
                    AccessKind::Write => "write",
                };
                write!(f, "wild {k} at address {address:#x}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

impl From<HardwareTrap> for MemoryError {
    fn from(t: HardwareTrap) -> Self {
        MemoryError::Trap(t)
    }
}

/// Counters describing trap traffic, exposed for the experiment harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrapStats {
    /// Traps taken on reads.
    pub read_traps: u64,
    /// Traps taken on writes.
    pub write_traps: u64,
    /// Guard-region reads that were *silently satisfied* (AIX semantics).
    pub silent_null_reads: u64,
    /// Guard-region writes that were silently satisfied (no-trap models).
    pub silent_null_writes: u64,
}

impl TrapStats {
    /// Total traps taken.
    pub fn total_traps(&self) -> u64 {
        self.read_traps + self.write_traps
    }
}

/// The result of a successfully *completed* guarded read: either real data,
/// or zero synthesized for a silent guard-region read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadOutcome {
    /// The value read.
    pub value: u64,
    /// Whether the value was synthesized from the guard region (and is
    /// therefore garbage from the program's point of view).
    pub from_guard: bool,
}

/// A flat, byte-addressed memory with a protected guard region at address 0.
///
/// Addresses are `u64`; the null reference is address `0`. All accesses are
/// 8-byte slots (the model's field/element size).
///
/// # Example
/// ```
/// use njc_trap::GuardedMemory;
/// use njc_arch::TrapModel;
/// use njc_ir::AccessKind;
///
/// let mut mem = GuardedMemory::new(TrapModel::windows_ia32());
/// let obj = mem.alloc(32);
/// mem.write_u64(obj + 8, 42).unwrap();
/// assert_eq!(mem.read_u64(obj + 8).unwrap().value, 42);
/// // Null dereference: effective address 8 lies in the guard page.
/// assert!(mem.read_u64(8).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct GuardedMemory {
    model: TrapModel,
    /// Backing store, indexed from address 0 (the guard region is backed by
    /// real zero bytes so silent reads return 0 naturally).
    data: Vec<u8>,
    /// Next allocation address.
    brk: u64,
    stats: TrapStats,
}

/// Minimum heap base: allocations never start inside the guard region, and
/// never at address 0 even for trap-less models (address 0 must remain
/// distinguishable as null).
const MIN_HEAP_BASE: u64 = 64;

impl GuardedMemory {
    /// Creates a memory with the given trap model. The guard region spans
    /// `model.trap_area_bytes` bytes from address 0.
    pub fn new(model: TrapModel) -> Self {
        let base = model.trap_area_bytes.max(MIN_HEAP_BASE);
        GuardedMemory {
            model,
            data: vec![0; base as usize],
            brk: base,
            stats: TrapStats::default(),
        }
    }

    /// The trap model in force.
    pub fn model(&self) -> TrapModel {
        self.model
    }

    /// Trap statistics so far.
    pub fn stats(&self) -> TrapStats {
        self.stats
    }

    /// Allocates `size` bytes of zeroed memory, 8-byte aligned, and returns
    /// the base address (always above the guard region, never 0).
    pub fn alloc(&mut self, size: u64) -> u64 {
        let base = self.brk;
        let size = size.div_ceil(8) * 8;
        self.brk += size.max(8);
        self.data.resize(self.brk as usize, 0);
        base
    }

    /// Total bytes currently allocated (including the guard region).
    pub fn footprint(&self) -> u64 {
        self.brk
    }

    /// The lowest address object allocation can use (just above the guard
    /// region, or the 64-byte minimum for trap-less models).
    pub fn heap_base(&self) -> u64 {
        self.model.trap_area_bytes.max(MIN_HEAP_BASE)
    }

    /// FNV-1a digest of the allocated heap contents (from [`Self::heap_base`]
    /// to the break), folding in the break itself so that runs differing only
    /// in footprint also differ in digest. The guard region is excluded: it
    /// is zero by construction (silent writes are discarded), so including it
    /// would only dilute the digest.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for &b in &self.data[self.heap_base() as usize..self.brk as usize] {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for b in self.brk.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        h
    }

    fn classify(&mut self, addr: u64, kind: AccessKind) -> Result<bool, MemoryError> {
        // Returns Ok(true) when the access is a silent guard-region access.
        if self.model.protects(addr) {
            if self.model.runtime_faults(kind, addr) {
                match kind {
                    AccessKind::Read => self.stats.read_traps += 1,
                    AccessKind::Write => self.stats.write_traps += 1,
                }
                return Err(HardwareTrap {
                    address: addr,
                    kind,
                }
                .into());
            }
            match kind {
                AccessKind::Read => self.stats.silent_null_reads += 1,
                AccessKind::Write => self.stats.silent_null_writes += 1,
            }
            return Ok(true);
        }
        // Checked: an address within 8 bytes of `u64::MAX` must not wrap
        // around into an in-bounds slice index.
        match addr.checked_add(8) {
            Some(end) if end <= self.brk => Ok(false),
            _ => Err(MemoryError::WildAccess {
                address: addr,
                kind,
            }),
        }
    }

    /// Reads the 8-byte slot at `addr`.
    ///
    /// # Errors
    /// [`MemoryError::Trap`] when the access faults in the guard region;
    /// [`MemoryError::WildAccess`] when it falls outside every allocation.
    pub fn read_u64(&mut self, addr: u64) -> Result<ReadOutcome, MemoryError> {
        let from_guard = self.classify(addr, AccessKind::Read)?;
        if from_guard {
            // AIX semantics: the first page reads as zero.
            return Ok(ReadOutcome {
                value: 0,
                from_guard: true,
            });
        }
        let i = addr as usize;
        let value = u64::from_le_bytes(self.data[i..i + 8].try_into().expect("slot"));
        Ok(ReadOutcome {
            value,
            from_guard: false,
        })
    }

    /// Writes the 8-byte slot at `addr`.
    ///
    /// # Errors
    /// Same conditions as [`Self::read_u64`]. A silent guard-region write
    /// (trap-less models) is discarded.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemoryError> {
        let to_guard = self.classify(addr, AccessKind::Write)?;
        if to_guard {
            // Writes into the guard region on a non-write-trapping model are
            // discarded: the backing page stays zero so later silent reads
            // behave like a zero page.
            return Ok(());
        }
        let i = addr as usize;
        self.data[i..i + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Whether `addr` is the null reference.
    pub fn is_null(addr: u64) -> bool {
        addr == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_above_guard_and_aligned() {
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let a = m.alloc(24);
        assert!(a >= 4096);
        assert_eq!(a % 8, 0);
        let b = m.alloc(1);
        assert!(b >= a + 24);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let a = m.alloc(16);
        m.write_u64(a, u64::MAX).unwrap();
        m.write_u64(a + 8, 7).unwrap();
        assert_eq!(m.read_u64(a).unwrap().value, u64::MAX);
        assert_eq!(m.read_u64(a + 8).unwrap().value, 7);
    }

    #[test]
    fn null_read_traps_on_windows() {
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let err = m.read_u64(16).unwrap_err();
        assert_eq!(
            err,
            MemoryError::Trap(HardwareTrap {
                address: 16,
                kind: AccessKind::Read
            })
        );
        assert_eq!(m.stats().read_traps, 1);
    }

    #[test]
    fn null_read_is_silent_zero_on_aix() {
        let mut m = GuardedMemory::new(TrapModel::aix_ppc());
        let r = m.read_u64(16).unwrap();
        assert_eq!(r.value, 0);
        assert!(r.from_guard);
        assert_eq!(m.stats().silent_null_reads, 1);
        // But writes trap.
        assert!(m.write_u64(16, 1).is_err());
        assert_eq!(m.stats().write_traps, 1);
    }

    #[test]
    fn big_offset_is_wild_not_trap() {
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        // Null base + 1 MiB offset: beyond the guard region and beyond the
        // heap — a wild access, exactly the Figure 5 (1) hazard.
        let err = m.read_u64(1 << 20).unwrap_err();
        assert!(matches!(err, MemoryError::WildAccess { .. }));
        assert_eq!(m.stats().total_traps(), 0);
    }

    #[test]
    fn big_offset_can_hit_live_heap() {
        // Worse than wild: with a large enough heap, a null-base big-offset
        // access silently reads *another object's* memory.
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let a = m.alloc(8192);
        m.write_u64(a + 8, 0xDEAD).unwrap();
        let offset_from_null = a + 8; // as if `null.field_at(a + 8)`
        let r = m.read_u64(offset_from_null).unwrap();
        assert_eq!(r.value, 0xDEAD, "silent corruption read");
        assert!(!r.from_guard);
    }

    #[test]
    fn silent_guard_write_is_discarded() {
        let mut m = GuardedMemory::new(TrapModel {
            trap_area_bytes: 4096,
            traps_on_read: false,
            traps_on_write: false,
        });
        m.write_u64(8, 99).unwrap();
        assert_eq!(m.stats().silent_null_writes, 1);
        assert_eq!(m.read_u64(8).unwrap().value, 0, "guard page stays zero");
    }

    #[test]
    fn no_trap_model_still_reserves_null() {
        let mut m = GuardedMemory::new(TrapModel::no_traps());
        let a = m.alloc(8);
        assert!(a >= MIN_HEAP_BASE);
        assert!(GuardedMemory::is_null(0));
        assert!(!GuardedMemory::is_null(a));
    }

    #[test]
    fn near_max_address_is_wild_not_panic() {
        // `addr + 8` used to overflow here and wrap into an in-bounds slice
        // index, panicking (or worse, silently aliasing) in release builds.
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let err = m.read_u64(u64::MAX - 4).unwrap_err();
        assert!(matches!(err, MemoryError::WildAccess { .. }));
        let err = m.write_u64(u64::MAX - 7, 1).unwrap_err();
        assert!(matches!(err, MemoryError::WildAccess { .. }));
    }

    #[test]
    fn digest_tracks_heap_contents() {
        let mut m = GuardedMemory::new(TrapModel::windows_ia32());
        let a = m.alloc(16);
        let d0 = m.digest();
        m.write_u64(a, 7).unwrap();
        let d1 = m.digest();
        assert_ne!(d0, d1, "a visible store changes the digest");
        m.write_u64(a, 7).unwrap();
        assert_eq!(m.digest(), d1, "digest is a pure function of contents");
        // Guard-region writes are discarded and must not perturb the digest.
        let mut aix = GuardedMemory::new(TrapModel {
            trap_area_bytes: 4096,
            traps_on_read: false,
            traps_on_write: false,
        });
        let b = aix.alloc(8);
        aix.write_u64(b, 3).unwrap();
        let d = aix.digest();
        aix.write_u64(8, 99).unwrap();
        assert_eq!(aix.digest(), d);
    }

    #[test]
    fn heap_base_respects_model() {
        assert_eq!(
            GuardedMemory::new(TrapModel::windows_ia32()).heap_base(),
            4096
        );
        assert_eq!(GuardedMemory::new(TrapModel::no_traps()).heap_base(), 64);
    }

    #[test]
    fn trap_display_mentions_kind_and_address() {
        let t = HardwareTrap {
            address: 0x10,
            kind: AccessKind::Write,
        };
        assert_eq!(
            t.to_string(),
            "hardware trap: write of protected address 0x10"
        );
    }
}
