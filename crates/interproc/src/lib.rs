//! # njc-interproc — interprocedural non-nullness inference
//!
//! The paper's elimination is purely intraprocedural: phase 1's forward
//! analysis starts every function knowing nothing about its parameters,
//! its callees' returns, or the heap. This crate closes that gap with a
//! whole-module *call-graph fixpoint* in the style of Hubert et al.'s
//! bytecode annotation inferencer and NullAway's non-null discipline:
//!
//! * **parameter facts** — a parameter is non-null if every intra-module
//!   call site passes a provably non-null argument and the function is
//!   not an entry point (so no unknown caller exists);
//! * **return facts** — a function never returns null if every `return`
//!   yields a provably non-null reference;
//! * **field facts** — a reference field is never observed null if every
//!   store to it stores a provably non-null value and every `new` of its
//!   class initializes it before the object can escape or a handler can
//!   observe it (the constructor-path condition).
//!
//! ## Lattice and fixpoint
//!
//! Each candidate fact is one boolean; the lattice is the powerset of
//! candidates ordered by inclusion. Inference starts **optimistically**
//! (all candidates assumed) and repeatedly re-judges every function's
//! body under the current assumption set — using exactly the analysis
//! phase 1 will later consume ([`njc_core::nonnull::compute_sets_assumed`]
//! plus the entry boundary), so inference and consumption cannot drift.
//! Any violated candidate is removed and the loop repeats until no fact
//! changes: a greatest-fixpoint computation that terminates because facts
//! only ever shrink.
//!
//! ## Soundness
//!
//! At the fixpoint every surviving fact is justified by the others, and
//! the circularity grounds out by induction on execution depth: entry
//! points ([`CallGraph::is_root`]: `main` plus any function with zero
//! intra-module call sites) carry no parameter facts, so the outermost
//! judgment of every dynamic call chain uses only sound intraprocedural
//! evidence (allocations, checks, branch edges), and each deeper judgment
//! uses facts already established for shallower frames. Dynamic
//! (virtual) call targets are conservatively merged: a virtual site
//! constrains the parameters of **every** implementation of the method,
//! and a virtual return fact requires **all** implementations to carry
//! it. The companion dynamic oracle ([`assertion_module`]) rechecks every
//! inferred fact at run time.

use njc_arch::TrapModel;
use njc_core::ctx::AnalysisCtx;
use njc_core::nonnull::{compute_sets_assumed, NonNullProblem};
use njc_core::{EntryAssumptions, FnFacts};
use njc_dataflow::solve;
use njc_ir::{
    CallTarget, CheckId, FieldId, Function, FunctionId, Inst, Module, NullCheckKind, Terminator,
    Type, VarId,
};

/// The intra-module call graph, with dynamic targets conservatively
/// merged: a virtual call contributes one site (and one edge) to every
/// implementation of the method.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallGraph {
    /// Deduplicated `(caller, callee)` edges, ascending.
    pub edges: Vec<(FunctionId, FunctionId)>,
    /// Number of call sites per callee (indexed by function id); a
    /// virtual site counts once per implementation it may dispatch to.
    pub site_counts: Vec<u32>,
    /// Whether each function is an entry point: reachable from outside
    /// the module (`main`) or without any intra-module call site.
    roots: Vec<bool>,
}

impl CallGraph {
    /// Whether `f` is an entry point (unknown callers ⇒ no parameter
    /// facts may be inferred for it).
    pub fn is_root(&self, f: FunctionId) -> bool {
        self.roots[f.index()]
    }
}

/// All functions a call through `target` may dispatch to. Static and
/// devirtualized targets are precise; virtual targets return every
/// implementation of the method across the class table.
pub fn resolve_targets(module: &Module, target: &CallTarget) -> Vec<FunctionId> {
    match target {
        CallTarget::Static(f) | CallTarget::Direct(f) => vec![*f],
        CallTarget::Virtual { method, .. } => module
            .implementations_of(method)
            .into_iter()
            .map(|(_, f)| f)
            .collect(),
    }
}

/// Builds the intra-module call graph over [`CallTarget`]s.
pub fn build_call_graph(module: &Module) -> CallGraph {
    let n = module.num_functions();
    let mut site_counts = vec![0u32; n];
    let mut edges = Vec::new();
    for (ci, f) in module.functions().iter().enumerate() {
        for b in f.blocks() {
            for inst in &b.insts {
                if let Inst::Call { target, .. } = inst {
                    for t in resolve_targets(module, target) {
                        site_counts[t.index()] += 1;
                        edges.push((FunctionId::new(ci), t));
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let roots = (0..n)
        .map(|i| site_counts[i] == 0 || module.function(FunctionId::new(i)).name() == "main")
        .collect();
    CallGraph {
        edges,
        site_counts,
        roots,
    }
}

/// Statistics of one inference run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Fixpoint rounds until convergence (including the final no-change
    /// round).
    pub rounds: usize,
    /// Surviving parameter facts.
    pub param_facts: usize,
    /// Surviving return facts.
    pub return_facts: usize,
    /// Surviving field facts.
    pub field_facts: usize,
}

/// Mutable fixpoint state: one boolean per candidate fact.
struct State {
    /// `params[f][j]`: parameter `j` of function `f` non-null at every
    /// call site.
    params: Vec<Vec<bool>>,
    /// `rets[f]`: function `f` never returns null.
    rets: Vec<bool>,
    /// `fields[k]`: field `k` never observed null.
    fields: Vec<bool>,
}

impl State {
    fn optimistic(module: &Module, cg: &CallGraph) -> State {
        let params = module
            .function_ids()
            .map(|fid| {
                let f = module.function(fid);
                f.params()
                    .iter()
                    .map(|&t| t == Type::Ref && !cg.is_root(fid))
                    .collect()
            })
            .collect();
        let rets = module
            .functions()
            .iter()
            .map(|f| f.return_type() == Some(Type::Ref))
            .collect();
        let fields = (0..module.num_fields())
            .map(|k| module.field_decl(FieldId::new(k)).ty == Type::Ref)
            .collect();
        State {
            params,
            rets,
            fields,
        }
    }

    fn to_assumptions(&self, module: &Module, cg: &CallGraph) -> EntryAssumptions {
        let mut asm = EntryAssumptions::new();
        for fid in module.function_ids() {
            let fi = fid.index();
            let nonnull_params: Vec<u32> = self.params[fi]
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(j, _)| j as u32)
                .collect();
            asm.set_function(
                module.function(fid).name(),
                FnFacts {
                    nonnull_params,
                    nonnull_return: self.rets[fi],
                    call_sites: cg.site_counts[fi],
                },
            );
        }
        for (k, &b) in self.fields.iter().enumerate() {
            if b {
                asm.insert_field(FieldId::new(k));
            }
        }
        asm
    }
}

/// Whether, in the instruction suffix following a `new` of `obj`, the
/// candidate `field` of the fresh object is provably initialized before
/// the object can escape — or before, inside a try region, any
/// potentially-throwing instruction could hand a handler the chance to
/// observe the uninitialized field through the still-live local.
fn init_before_escape(rest: &[Inst], obj: VarId, field: FieldId, in_try: bool) -> bool {
    for inst in rest {
        match inst {
            // A store into the fresh object itself: initializes our field
            // (the stored value's non-nullness is judged by the global
            // store rule) or harmlessly fills a sibling field. Cannot
            // throw — the base is the fresh, non-null object.
            Inst::PutField {
                obj: o, field: f2, ..
            } if *o == obj => {
                if *f2 == field {
                    return true;
                }
            }
            // A null check of the fresh object never fires.
            Inst::NullCheck { var, .. } if *var == obj => {}
            _ => {
                if inst.uses().contains(&obj) {
                    return false; // escapes
                }
                if in_try {
                    return false; // a throw could expose the local
                }
                if inst.def() == Some(obj) {
                    return true; // overwritten: the object is unreachable
                }
            }
        }
    }
    false // block ends with the field still uninitialized
}

/// Infers [`EntryAssumptions`] for `module`. See the crate docs for the
/// lattice and the soundness argument. Must run on real function bodies
/// (after inlining, before any body is taken out of the module).
pub fn infer(module: &Module) -> EntryAssumptions {
    infer_with_stats(module).0
}

/// [`infer`] with convergence statistics.
pub fn infer_with_stats(module: &Module) -> (EntryAssumptions, InferStats) {
    let cg = build_call_graph(module);
    let mut st = State::optimistic(module, &cg);
    let mut rounds = 0;
    loop {
        rounds += 1;
        let asm = st.to_assumptions(module, &cg);
        let ctx = AnalysisCtx::new(module, TrapModel::no_traps()).with_assumptions(Some(&asm));
        let mut changed = false;
        let demote_param = |st: &mut State, f: usize, j: usize| {
            if st.params[f][j] {
                st.params[f][j] = false;
                true
            } else {
                false
            }
        };
        for (fi, f) in module.functions().iter().enumerate() {
            let nv = f.num_vars();
            if nv == 0 || f.num_blocks() == 0 {
                continue;
            }
            // Exactly the analysis phase 1 consumes the facts with.
            let problem = NonNullProblem {
                func: f,
                sets: compute_sets_assumed(&ctx, f),
                earliest: None,
                entry: ctx.entry_facts(f, nv),
                num_facts: nv,
            };
            let sol = solve(f, &problem);
            for (bi, b) in f.blocks().iter().enumerate() {
                let mut set = sol.ins[bi].clone();
                let in_try = b.try_region.is_some();
                for (ii, inst) in b.insts.iter().enumerate() {
                    // Judge the instruction against the current facts...
                    match inst {
                        Inst::Call {
                            target,
                            receiver,
                            args,
                            ..
                        } => {
                            for t in resolve_targets(module, target) {
                                let callee = module.function(t);
                                let np = callee.params().len();
                                let argv: Vec<VarId> = if callee.is_instance() {
                                    receiver
                                        .iter()
                                        .copied()
                                        .chain(args.iter().copied())
                                        .collect()
                                } else {
                                    args.clone()
                                };
                                for j in 0..np {
                                    let passes_nonnull =
                                        argv.len() == np && set.contains(argv[j].index());
                                    if !passes_nonnull {
                                        changed |= demote_param(&mut st, t.index(), j);
                                    }
                                }
                            }
                        }
                        Inst::PutField { field, value, .. }
                            if st.fields[field.index()] && !set.contains(value.index()) =>
                        {
                            st.fields[field.index()] = false;
                            changed = true;
                        }
                        Inst::New { dst, class } => {
                            for &fid in &module.class(*class).fields {
                                if st.fields[fid.index()]
                                    && !init_before_escape(&b.insts[ii + 1..], *dst, fid, in_try)
                                {
                                    st.fields[fid.index()] = false;
                                    changed = true;
                                }
                            }
                        }
                        _ => {}
                    }
                    // ... then apply the same transfer the solver used.
                    if let Some(d) = ctx.assumed_nonnull_def(inst) {
                        set.insert(d.index());
                    } else {
                        match inst {
                            Inst::NullCheck { var, .. } => {
                                set.insert(var.index());
                            }
                            Inst::New { dst, .. } | Inst::NewArray { dst, .. } => {
                                set.insert(dst.index());
                            }
                            _ => {
                                if let Some(d) = inst.def() {
                                    set.remove(d.index());
                                }
                            }
                        }
                    }
                }
                if st.rets[fi] {
                    if let Terminator::Return(v) = &b.term {
                        let nonnull = matches!(v, Some(v) if set.contains(v.index()));
                        if !nonnull {
                            st.rets[fi] = false;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            let asm = st.to_assumptions(module, &cg);
            let stats = InferStats {
                rounds,
                param_facts: asm.num_param_facts(),
                return_facts: asm.num_return_facts(),
                field_facts: asm.num_field_facts(),
            };
            return (asm, stats);
        }
    }
}

/// Builds the dynamic soundness oracle's *fact-assertion module*: a clone
/// of `module` with an explicit null check asserting every inferred fact
/// — each proven parameter at function entry, each proven call return
/// and field load right after the defining instruction. If all facts are
/// sound the assertion module is observationally equivalent to the
/// original; a violated fact surfaces as a diverging
/// `NullPointerException`.
pub fn assertion_module(module: &Module, asm: &EntryAssumptions) -> Module {
    let ctx = AnalysisCtx::new(module, TrapModel::no_traps()).with_assumptions(Some(asm));
    let check = |var: VarId| Inst::NullCheck {
        var,
        kind: NullCheckKind::Explicit,
        id: CheckId::NONE,
    };
    let mut out = module.clone();
    for fid in module.function_ids() {
        let src: &Function = module.function(fid);
        let entry = src.entry();
        let param_checks: Vec<Inst> = asm
            .function(src.name())
            .map(|ff| {
                ff.nonnull_params
                    .iter()
                    .filter(|&&p| (p as usize) < src.num_vars())
                    .map(|&p| check(VarId::new(p as usize)))
                    .collect()
            })
            .unwrap_or_default();
        let f = out.function_mut(fid);
        for bi in 0..src.num_blocks() {
            let block = njc_ir::BlockId::new(bi);
            let old = std::mem::take(f.insts_mut(block));
            let mut rebuilt = Vec::with_capacity(old.len() + 2);
            if block == entry {
                rebuilt.extend(param_checks.iter().cloned());
            }
            for inst in old {
                let assumed = ctx.assumed_nonnull_def(&inst);
                rebuilt.push(inst);
                if let Some(d) = assumed {
                    rebuilt.push(check(d));
                }
            }
            *f.insts_mut(block) = rebuilt;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::FuncBuilder;

    /// `mk() -> ref { v = new C; v.f0 = 1; return v }`
    fn mk_helper(m: &Module, name: &str) -> Function {
        let class = m.class_by_name("C").unwrap();
        let field = m.field(class, "f0").unwrap();
        let mut b = FuncBuilder::new(name, &[], Type::Ref);
        let v = b.new_object(class);
        let one = b.iconst(1);
        b.put_field(v, field, one);
        b.ret(Some(v));
        b.finish()
    }

    fn base_module() -> Module {
        let mut m = Module::new("t");
        m.add_class("C", &[("f0", Type::Int), ("link", Type::Ref)]);
        m
    }

    /// `use(o) -> int { return o.f0 }` — wants a param fact.
    fn use_helper(m: &Module, name: &str) -> Function {
        let class = m.class_by_name("C").unwrap();
        let field = m.field(class, "f0").unwrap();
        let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Int);
        let p = b.param(0);
        let x = b.get_field(p, field);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn return_fact_survives_direct_recursion() {
        // f(n) = if n < 1 { mk() } else { f(n - 1) } — never returns null,
        // and the recursive return is justified by f's own fact.
        let mut m = base_module();
        let mk = m.add_function(mk_helper(&m, "mk"));
        let mut b = FuncBuilder::new("f", &[Type::Int], Type::Ref);
        let n = b.param(0);
        let one = b.iconst(1);
        let (then_bb, else_bb) = (b.new_block(), b.new_block());
        b.br_if(njc_ir::Cond::Lt, n, one, then_bb, else_bb);
        b.switch_to(then_bb);
        let fresh = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
        b.ret(Some(fresh));
        b.switch_to(else_bb);
        let nm = b.binop(njc_ir::Op::Sub, n, one);
        let self_id = FunctionId::new(m.num_functions()); // f's own id
        let rec = b.call_static(self_id, &[nm], Some(Type::Ref)).unwrap();
        b.ret(Some(rec));
        let f = b.finish();
        let fid = m.add_function(f);
        assert_eq!(fid, self_id);
        let asm = infer(&m);
        assert!(asm.function("f").unwrap().nonnull_return, "{asm:?}");
        assert!(asm.function("mk").unwrap().nonnull_return);
    }

    #[test]
    fn param_fact_inferred_when_all_sites_pass_nonnull() {
        let mut m = base_module();
        let used = m.add_function(use_helper(&m, "use"));
        let mk = m.add_function(mk_helper(&m, "mk"));
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let o = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
        let r = b.call_static(used, &[o], Some(Type::Int)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        let asm = infer(&m);
        let ff = asm.function("use").unwrap();
        assert_eq!(ff.nonnull_params, vec![0], "{asm:?}");
        assert_eq!(ff.call_sites, 1);
    }

    #[test]
    fn maybe_null_argument_blocks_param_fact() {
        let mut m = base_module();
        let used = m.add_function(use_helper(&m, "use"));
        let mk = m.add_function(mk_helper(&m, "mk"));
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let o = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
        let r1 = b.call_static(used, &[o], Some(Type::Int)).unwrap();
        let nul = b.null_ref();
        let r2 = b.call_static(used, &[nul], Some(Type::Int)).unwrap();
        let r = b.binop(njc_ir::Op::Add, r1, r2);
        b.ret(Some(r));
        m.add_function(b.finish());
        let asm = infer(&m);
        assert!(
            asm.function("use")
                .map_or(true, |ff| ff.nonnull_params.is_empty()),
            "a maybe-null site must block the fact: {asm:?}"
        );
    }

    #[test]
    fn mutual_recursion_converges() {
        // even(n) = n < 1 ? mk() : odd(n-1); odd(n) = n < 1 ? null : even(n-1).
        // `odd` may return null, so `even`'s recursive arm is fine (it
        // returns odd's value — which may be null — so even loses its
        // fact too; only mk keeps one).
        let mut m = base_module();
        let mk = m.add_function(mk_helper(&m, "mk"));
        let even_id = FunctionId::new(1);
        let odd_id = FunctionId::new(2);
        let mk_fn = |name: &str, callee: FunctionId, base_null: bool, m: &Module| {
            let mut b = FuncBuilder::new(name, &[Type::Int], Type::Ref);
            let n = b.param(0);
            let one = b.iconst(1);
            let (t, e) = (b.new_block(), b.new_block());
            b.br_if(njc_ir::Cond::Lt, n, one, t, e);
            b.switch_to(t);
            if base_null {
                let nul = b.null_ref();
                b.ret(Some(nul));
            } else {
                let fresh = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
                b.ret(Some(fresh));
            }
            b.switch_to(e);
            let nm = b.binop(njc_ir::Op::Sub, n, one);
            let rec = b.call_static(callee, &[nm], Some(Type::Ref)).unwrap();
            b.ret(Some(rec));
            let _ = m;
            b.finish()
        };
        let even = mk_fn("even", odd_id, false, &m);
        assert_eq!(m.add_function(even), even_id);
        let odd = mk_fn("odd", even_id, true, &m);
        assert_eq!(m.add_function(odd), odd_id);
        let asm = infer(&m);
        assert!(asm.function("mk").unwrap().nonnull_return);
        assert!(
            asm.function("odd").map_or(true, |ff| !ff.nonnull_return),
            "odd returns null on the base path: {asm:?}"
        );
        assert!(
            asm.function("even").map_or(true, |ff| !ff.nonnull_return),
            "even forwards odd's maybe-null value: {asm:?}"
        );
    }

    #[test]
    fn virtual_targets_merge_conservatively() {
        // Two implementations of `get`; one may return null ⇒ a virtual
        // call through the method has no return fact, and the maybe-null
        // receiver class's impl also drags down param facts at the site.
        let mut m = Module::new("t");
        let a = m.add_class("A", &[("f0", Type::Int)]);
        let bcls = m.add_class("B", &[("g0", Type::Int)]);
        let mk_impl = |name: &str, class_name: &str, null_ret: bool, m: &Module| {
            let class = m.class_by_name(class_name).unwrap();
            let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Ref);
            b.instance_method();
            if null_ret {
                let nul = b.null_ref();
                b.ret(Some(nul));
            } else {
                let v = b.new_object(class);
                b.ret(Some(v));
            }
            b.finish()
        };
        let a_get = mk_impl("A_get", "A", false, &m);
        m.add_method(a, "get", a_get);
        let b_get = mk_impl("B_get", "B", true, &m);
        m.add_method(bcls, "get", b_get);
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let recv = b.new_object(a);
        let got = b
            .call_virtual(a, "get", recv, &[], Some(Type::Ref))
            .unwrap();
        b.observe(got);
        let z = b.iconst(0);
        b.ret(Some(z));
        m.add_function(b.finish());
        let asm = infer(&m);
        assert!(asm.function("A_get").unwrap().nonnull_return);
        assert!(asm.function("B_get").map_or(true, |ff| !ff.nonnull_return));
        let ctx = AnalysisCtx::new(&m, TrapModel::no_traps()).with_assumptions(Some(&asm));
        let virt = CallTarget::Virtual {
            class: a,
            method: "get".to_string(),
        };
        assert!(
            !ctx.call_returns_nonnull(&virt),
            "one maybe-null impl poisons the virtual meet"
        );
    }

    #[test]
    fn field_fact_requires_init_before_escape() {
        // good: new D; d.link = mk(); observe d  ⇒ link keeps its fact.
        // bad:  new D; observe d; d.link = mk()  ⇒ escape before init.
        // (class D is distinct from C: mk itself allocates a C and leaves
        // C's ref field uninitialized, which correctly kills C's fact.)
        for (escape_first, expect_fact) in [(false, true), (true, false)] {
            let mut m = base_module();
            let class = m.add_class("D", &[("link", Type::Ref)]);
            let link = m.field(class, "link").unwrap();
            let mk = m.add_function(mk_helper(&m, "mk"));
            let mut b = FuncBuilder::new("main", &[], Type::Int);
            let v = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
            let c = b.new_object(class);
            if escape_first {
                b.observe(c);
                b.put_field(c, link, v);
            } else {
                b.put_field(c, link, v);
                b.observe(c);
            }
            let z = b.iconst(0);
            b.ret(Some(z));
            m.add_function(b.finish());
            let asm = infer(&m);
            assert_eq!(
                asm.field_nonnull(link),
                expect_fact,
                "escape_first={escape_first}: {asm:?}"
            );
        }
    }

    #[test]
    fn null_store_blocks_field_fact() {
        let mut m = base_module();
        let class = m.class_by_name("C").unwrap();
        let link = m.field(class, "link").unwrap();
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let c = b.new_object(class);
        let nul = b.null_ref();
        b.put_field(c, link, nul);
        let z = b.iconst(0);
        b.ret(Some(z));
        m.add_function(b.finish());
        let asm = infer(&m);
        assert!(!asm.field_nonnull(link));
    }

    #[test]
    fn roots_get_no_param_facts() {
        let mut m = base_module();
        let f = use_helper(&m, "lonely"); // zero call sites ⇒ root
        m.add_function(f);
        let asm = infer(&m);
        assert!(
            asm.function("lonely")
                .map_or(true, |ff| ff.nonnull_params.is_empty()),
            "{asm:?}"
        );
    }

    #[test]
    fn assertion_module_adds_checks_for_every_fact() {
        let mut m = base_module();
        let used = m.add_function(use_helper(&m, "use"));
        let mk = m.add_function(mk_helper(&m, "mk"));
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let o = b.call_static(mk, &[], Some(Type::Ref)).unwrap();
        let r = b.call_static(used, &[o], Some(Type::Int)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        let asm = infer(&m);
        let count = |m: &Module| -> usize {
            m.functions()
                .iter()
                .flat_map(|f| f.blocks())
                .flat_map(|b| &b.insts)
                .filter(|i| matches!(i, Inst::NullCheck { .. }))
                .count()
        };
        let am = assertion_module(&m, &asm);
        assert!(
            count(&am) > count(&m),
            "assertions added: {} vs {}",
            count(&am),
            count(&m)
        );
        njc_ir::verify_module(&am).expect("assertion module verifies");
    }
}
