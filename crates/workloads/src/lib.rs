//! # njc-workloads — benchmark programs in the njc IR
//!
//! Reproductions of the access patterns of the paper's two benchmark
//! suites, hand-written against the IR builder:
//!
//! * [`jbm`] — the ten jBYTEmark v0.9 kernels (Table 1 / Figures 8, 10, 14):
//!   Numeric Sort, String Sort, Bitfield, FP Emulation, Fourier,
//!   Assignment, IDEA encryption, Huffman Compression, Neural Net,
//!   LU Decomposition.
//! * [`spec`] — the seven SPECjvm98 programs (Table 2 / Figures 9, 11, 15):
//!   mtrt, jess, compress, db, mpegaudio, jack, javac.
//! * [`micro`] — the paper's figure examples (Figures 1/7, 3, 4, 6, the
//!   BigOffset case of Figure 5), plus a null-seeded program whose
//!   NullPointerException paths actually execute — the correctness
//!   oracle's worst case.
//!
//! Each workload is a self-contained [`njc_ir::Module`] whose `main`
//! returns an `int` checksum and `observe`s intermediate values, so
//! optimized and unoptimized runs can be compared for observational
//! equivalence. See DESIGN.md §5 for the substitution rationale (the
//! original Java sources are not reproducible here; what the null check
//! optimizations see is the *pattern* of object/array accesses, loop
//! structure, and call structure, which these kernels preserve).

pub mod gen;
pub mod jbm;
pub mod math;
pub mod micro;
pub mod spec;

use njc_ir::Module;

/// Which suite a workload belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// jBYTEmark v0.9 (index; larger is better).
    JByteMark,
    /// SPECjvm98 (seconds; smaller is better).
    SpecJvm98,
    /// Paper figure micro-examples.
    Micro,
}

/// A benchmark workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, matching the paper's table column.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// The program.
    pub module: Module,
    /// Entry function (always takes no arguments, returns an int checksum).
    pub entry: &'static str,
    /// Abstract work units: the index computations scale by this so that
    /// kernels of different sizes produce comparable numbers.
    pub work_units: u64,
}

impl Workload {
    fn new(name: &'static str, suite: Suite, module: Module, work_units: u64) -> Self {
        Workload {
            name,
            suite,
            module,
            entry: "main",
            work_units,
        }
    }
}

/// The ten jBYTEmark kernels, in the paper's Table 1 column order.
pub fn jbytemark() -> Vec<Workload> {
    vec![
        Workload::new("Numeric Sort", Suite::JByteMark, jbm::numeric_sort(), 300),
        Workload::new("String Sort", Suite::JByteMark, jbm::string_sort(), 120),
        Workload::new("Bitfield", Suite::JByteMark, jbm::bitfield(), 4000),
        Workload::new("FP Emulation", Suite::JByteMark, jbm::fp_emulation(), 1500),
        Workload::new("Fourier", Suite::JByteMark, jbm::fourier(), 60),
        Workload::new("Assignment", Suite::JByteMark, jbm::assignment(), 24),
        Workload::new("IDEA encryption", Suite::JByteMark, jbm::idea(), 800),
        Workload::new(
            "Huffman Compression",
            Suite::JByteMark,
            jbm::huffman(),
            2500,
        ),
        Workload::new("Neural Net", Suite::JByteMark, jbm::neural_net(), 40),
        Workload::new("LU Decomposition", Suite::JByteMark, jbm::lu(), 20),
    ]
}

/// The seven SPECjvm98 programs, in the paper's Table 2 column order.
pub fn specjvm98() -> Vec<Workload> {
    vec![
        Workload::new("mtrt", Suite::SpecJvm98, spec::mtrt(), 900),
        Workload::new("jess", Suite::SpecJvm98, spec::jess(), 700),
        Workload::new("compress", Suite::SpecJvm98, spec::compress(), 4000),
        Workload::new("db", Suite::SpecJvm98, spec::db(), 300),
        Workload::new("mpegaudio", Suite::SpecJvm98, spec::mpegaudio(), 500),
        Workload::new("jack", Suite::SpecJvm98, spec::jack(), 2000),
        Workload::new("javac", Suite::SpecJvm98, spec::javac(), 400),
    ]
}

/// Every macro workload (both suites).
pub fn all() -> Vec<Workload> {
    let mut v = jbytemark();
    v.extend(specjvm98());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_verify() {
        for w in all() {
            njc_ir::verify_module(&w.module).unwrap_or_else(|e| {
                panic!("{} failed to verify: {:?}", w.name, &e[..3.min(e.len())])
            });
        }
    }

    #[test]
    fn suites_have_paper_cardinalities() {
        assert_eq!(jbytemark().len(), 10);
        assert_eq!(specjvm98().len(), 7);
        assert_eq!(all().len(), 17);
    }

    #[test]
    fn entry_points_exist_and_return_int() {
        for w in all() {
            let id = w
                .module
                .function_by_name(w.entry)
                .unwrap_or_else(|| panic!("{} lacks entry {}", w.name, w.entry));
            let f = w.module.function(id);
            assert_eq!(f.params().len(), 0, "{}", w.name);
            assert_eq!(f.return_type(), Some(njc_ir::Type::Int), "{}", w.name);
        }
    }

    #[test]
    fn names_match_paper_columns() {
        let names: Vec<&str> = jbytemark().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "Numeric Sort",
                "String Sort",
                "Bitfield",
                "FP Emulation",
                "Fourier",
                "Assignment",
                "IDEA encryption",
                "Huffman Compression",
                "Neural Net",
                "LU Decomposition"
            ]
        );
        let names: Vec<&str> = specjvm98().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            [
                "mtrt",
                "jess",
                "compress",
                "db",
                "mpegaudio",
                "jack",
                "javac"
            ]
        );
    }
}
