//! Random program generation shared by the property tests and the
//! differential harness.
//!
//! The container this reproduction builds in has no access to a crates.io
//! registry, so nothing here may depend on `proptest` or `rand`: the
//! [`Rng`] is a self-contained SplitMix64 and the program generator is a
//! small action language lowered through the IR builder.
//!
//! Two menus share one [`Action`] vocabulary:
//!
//! * [`gen_actions`] — the *sound* menu the optimizer property tests have
//!   always drawn from (loops, branches, field and array traffic, null
//!   references). Its draw sequence is stable: adding fault shapes must
//!   never change what an existing seed generates.
//! * [`gen_fault_actions`] — a superset menu for the differential harness
//!   that additionally injects faults benchmarks never exercise:
//!   receivers null-seeded at a randomized loop iteration, checked array
//!   indices near the guard-page boundary, and *raw* (unchecked) element
//!   loads whose effective address wraps past the guard page.
//!
//! Every fault shape is designed to behave identically across the three
//! platform trap models under checked addressing, so the harness may diff
//! behavior *across* platforms as well as across optimizer configurations;
//! see DESIGN.md §9.

use njc_ir::{
    CatchKind, ClassId, Cond, FieldId, FuncBuilder, FunctionId, Inst, Module, Op, Type, VarId,
};

/// SplitMix64: tiny, fast, and statistically solid for test-data purposes.
///
/// Deterministic across platforms and runs — a failing seed printed by the
/// property harness always reproduces the same program.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    /// Panics when `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// A coin flip with probability `num/den` of `true`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }

    /// A uniformly random `i8` (handy for small signed constants).
    #[allow(clippy::should_implement_trait)]
    pub fn i8(&mut self) -> i8 {
        self.next_u64() as i8
    }

    /// Picks a uniformly random element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

/// The index shape of a *raw* (unchecked, unmarked) array element load.
///
/// Every shape resolves — under checked address arithmetic — to the same
/// verdict on all three platform trap models, so raw loads never make
/// cross-platform diffing unsound. (Under the legacy wrapping arithmetic
/// [`GuardWrap`](RawIndex::GuardWrap) lands *inside* the guard page, where
/// AIX silently reads zero while Windows and S/390 trap: exactly the
/// divergence the harness exists to catch.)
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RawIndex {
    /// Null base, index `2^61 + 14`: the mathematical effective address is
    /// `2^64 + 128`, which overflows the address space — a hardware trap on
    /// every model. The legacy wrapping arithmetic computed `128` instead,
    /// inside the guard page.
    GuardWrap,
    /// Array base, index `2^53`: an in-range effective address far past the
    /// break — a wild access on every model.
    HugeWild,
    /// Null base, index `510 + k` for small `k`: the effective address
    /// `4096 + 8k` sits just *past* the guard page, probing the boundary —
    /// a wild access on every model (509 would be inside the page, which is
    /// read-divergent by hardware design and deliberately not generated).
    NearBoundary(u8),
}

/// One step of the random program.
#[derive(Clone, Debug)]
pub enum Action {
    /// Define a fresh int from a constant.
    IConst(i8),
    /// Combine two ints (indices into the int pool).
    IntOp(u8, usize, usize),
    /// Allocate an object into the ref pool.
    NewObj,
    /// Push a null into the ref pool.
    NullRef,
    /// Read field `field` of ref `r` into the int pool (may throw NPE).
    GetField(usize, usize),
    /// Write int `v` to field `field` of ref `r` (may throw NPE).
    PutField(usize, usize, usize),
    /// Read `arr[i & mask]` (bounds-checked) into the int pool.
    ArrLoad(usize),
    /// Store to `arr[i & mask]`.
    ArrStore(usize, usize),
    /// Observe an int.
    Observe(usize),
    /// `if (a < b) { nested }`.
    IfLt(usize, usize, Vec<Action>),
    /// Bounded counted loop over the nested body.
    Loop(u8, Vec<Action>),
    // --- fault-injection shapes below this line are produced only by
    //     `gen_fault_actions`; `gen_actions` never draws them, keeping the
    //     long-lived property-test seed streams byte-for-byte stable. ---
    /// `for i in 0..n { if i == k { r = null }; body; observe r.f0 }` —
    /// a receiver that becomes null at one randomized iteration, so the
    /// NPE fires mid-loop with loop-carried state live.
    NullSeededLoop(u8, u8, Vec<Action>),
    /// Fully checked array load at an extreme index (selector into a menu
    /// of near-boundary and huge magnitudes): the bound check must convert
    /// it to `ArrayIndexOutOfBounds` before any address is formed.
    HugeIndexChecked(u8),
    /// Raw (no null check, no bound check, unmarked) element load with the
    /// given index shape, kept live by an observe so dead-code elimination
    /// cannot erase it from optimized configs only.
    RawLoad(RawIndex),
    // --- call-heavy shapes below this line are produced only by
    //     `gen_call_actions` and lowered only by `build_call_module`:
    //     they reference helper functions that plain `build_module` does
    //     not create. The sound and fault menus never draw them. ---
    /// Call into the pre-built `chain_k` helper (depth selector, modulo the
    /// chain length). When `fresh` the argument is a new allocation — a
    /// non-null call site feeding the interprocedural parameter meet;
    /// otherwise it comes from the ref pool (which contains a null, so the
    /// site demotes the callee's parameter fact).
    CallChain(u8, bool, u8),
    /// Call the `make()` helper, which returns a freshly allocated,
    /// field-initialized object on every path — a return fact the
    /// interprocedural analysis proves — and push it into the ref pool.
    CallMake,
    /// Call `make_box()` (non-null return, and its `payload` field is
    /// assigned non-null before the object escapes — a constructor field
    /// fact), then read `box.payload` and dereference the payload.
    BoxPayload,
}

/// Draws one action from the sound menu.
pub fn gen_action(rng: &mut Rng, depth: u32) -> Action {
    // Nine leaf shapes; the two recursive shapes join the menu while
    // depth budget remains.
    let n = if depth > 0 { 11 } else { 9 };
    match rng.below(n) {
        0 => Action::IConst(rng.i8()),
        1 => Action::IntOp(rng.below(4) as u8, rng.below(8), rng.below(8)),
        2 => Action::NewObj,
        3 => Action::NullRef,
        4 => Action::GetField(rng.below(6), rng.below(2)),
        5 => Action::PutField(rng.below(6), rng.below(2), rng.below(8)),
        6 => Action::ArrLoad(rng.below(8)),
        7 => Action::ArrStore(rng.below(8), rng.below(8)),
        8 => Action::Observe(rng.below(8)),
        9 => {
            let (a, b) = (rng.below(8), rng.below(8));
            let len = rng.range(1, 4);
            Action::IfLt(a, b, gen_actions(rng, len, depth - 1))
        }
        _ => {
            let n = rng.range(1, 5) as u8;
            let len = rng.range(1, 4);
            Action::Loop(n, gen_actions(rng, len, depth - 1))
        }
    }
}

/// Draws `len` actions from the sound menu.
pub fn gen_actions(rng: &mut Rng, len: usize, depth: u32) -> Vec<Action> {
    (0..len).map(|_| gen_action(rng, depth)).collect()
}

/// Draws one fault-injection shape. At most one [`Action::RawLoad`] should
/// appear per program (a raw load aborts the run with a VM fault, and two
/// different raw-load kinds could be legally reordered by the optimizer,
/// changing *which* fault fires first); the caller passes `allow_raw` to
/// enforce that, and this function clears it when a raw shape is drawn.
pub fn gen_fault_action(rng: &mut Rng, depth: u32, allow_raw: &mut bool) -> Action {
    let n = if *allow_raw { 8 } else { 5 };
    match rng.below(n) {
        0..=2 => {
            let iters = rng.range(2, 7) as u8;
            let null_at = rng.below(iters as usize) as u8;
            let len = rng.range(1, 3);
            let body = gen_actions(rng, len, depth.min(1));
            Action::NullSeededLoop(iters, null_at, body)
        }
        3 | 4 => Action::HugeIndexChecked(rng.below(8) as u8),
        5 => {
            *allow_raw = false;
            Action::RawLoad(RawIndex::GuardWrap)
        }
        6 => {
            *allow_raw = false;
            Action::RawLoad(RawIndex::HugeWild)
        }
        _ => {
            *allow_raw = false;
            Action::RawLoad(RawIndex::NearBoundary(rng.below(4) as u8))
        }
    }
}

/// Draws `len` actions where roughly a quarter are fault shapes and the
/// rest come from the sound menu.
pub fn gen_fault_actions(rng: &mut Rng, len: usize, depth: u32) -> Vec<Action> {
    let mut allow_raw = true;
    (0..len)
        .map(|_| {
            if rng.chance(1, 4) {
                gen_fault_action(rng, depth, &mut allow_raw)
            } else {
                gen_action(rng, depth)
            }
        })
        .collect()
}

/// Draws one call-heavy action: a third of the draws are call shapes
/// (chain calls, non-null-returning helpers, constructor-initialized
/// fields), the rest come from the sound menu. A separate menu — neither
/// [`gen_action`] nor [`gen_fault_action`] changes its draw sequence, so
/// the long-lived seeds of those menus stay byte-for-byte stable.
pub fn gen_call_action(rng: &mut Rng, depth: u32) -> Action {
    if rng.chance(1, 3) {
        match rng.below(4) {
            0 | 1 => {
                let d = rng.below(CHAIN_DEPTH) as u8;
                // Mostly fresh (non-null) arguments, so parameter facts
                // survive on many seeds; pool arguments (which include the
                // null parameter) appear often enough to exercise the
                // demotion path too.
                let fresh = rng.chance(3, 4);
                Action::CallChain(d, fresh, rng.below(4) as u8)
            }
            2 => Action::CallMake,
            _ => Action::BoxPayload,
        }
    } else {
        gen_action(rng, depth)
    }
}

/// Draws `len` actions from the call-heavy menu. Nested bodies (inside
/// `IfLt`/`Loop`) come from the sound menu only, so call shapes appear
/// exclusively at the top level, where [`emit_call`] lowers them.
pub fn gen_call_actions(rng: &mut Rng, len: usize, depth: u32) -> Vec<Action> {
    (0..len).map(|_| gen_call_action(rng, depth)).collect()
}

/// Emits one action into the builder, maintaining pools of defined ints
/// and refs so every operand is initialized.
pub fn emit(
    b: &mut FuncBuilder,
    a: &Action,
    ints: &mut Vec<VarId>,
    refs: &mut Vec<VarId>,
    class: ClassId,
    fields: &[FieldId],
    arr: VarId,
) {
    let int_at = |ints: &Vec<VarId>, i: usize| ints[i % ints.len()];
    let ref_at = |refs: &Vec<VarId>, i: usize| refs[i % refs.len()];
    match a {
        Action::IConst(k) => ints.push(b.iconst(*k as i64)),
        Action::IntOp(o, x, y) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let op = [Op::Add, Op::Sub, Op::Mul, Op::Xor][*o as usize % 4];
            ints.push(b.binop(op, x, y));
        }
        Action::NewObj => refs.push(b.new_object(class)),
        Action::NullRef => refs.push(b.null_ref()),
        Action::GetField(r, f) => {
            let r = ref_at(refs, *r);
            ints.push(b.get_field(r, fields[*f % fields.len()]));
        }
        Action::PutField(r, f, v) => {
            let r = ref_at(refs, *r);
            let v = int_at(ints, *v);
            b.put_field(r, fields[*f % fields.len()], v);
        }
        Action::ArrLoad(i) => {
            let i = int_at(ints, *i);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            ints.push(b.array_load(arr, idx, Type::Int));
        }
        Action::ArrStore(i, v) => {
            let i = int_at(ints, *i);
            let v = int_at(ints, *v);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            b.array_store(arr, idx, v, Type::Int);
        }
        Action::Observe(i) => {
            let v = int_at(ints, *i);
            b.observe(v);
        }
        Action::IfLt(x, y, body) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let t = b.new_block();
            let j = b.new_block();
            b.br_if(Cond::Lt, x, y, t, j);
            b.switch_to(t);
            // Pools are branch-local extensions: anything defined inside
            // the branch must not be used at the join (it may not have
            // executed). Clone-and-restore gives that.
            let mut ints2 = ints.clone();
            let mut refs2 = refs.clone();
            for a in body {
                emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
            }
            b.goto(j);
            b.switch_to(j);
        }
        Action::Loop(n, body) => {
            let zero = b.iconst(0);
            let end = b.iconst(*n as i64);
            b.for_loop(zero, end, 1, |b, _i| {
                let mut ints2 = ints.clone();
                let mut refs2 = refs.clone();
                for a in body {
                    emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
                }
            });
        }
        Action::NullSeededLoop(n, k, body) => {
            let cell = b.var(Type::Ref);
            let seed = ref_at(refs, 0);
            b.assign(cell, seed);
            let kv = b.iconst(*k as i64);
            let zero = b.iconst(0);
            let end = b.iconst(*n as i64);
            b.for_loop(zero, end, 1, |b, i| {
                let t = b.new_block();
                let j = b.new_block();
                b.br_if(Cond::Eq, i, kv, t, j);
                b.switch_to(t);
                let nul = b.null_ref();
                b.assign(cell, nul);
                b.goto(j);
                b.switch_to(j);
                let mut ints2 = ints.clone();
                let mut refs2 = refs.clone();
                refs2.push(cell);
                for a in body {
                    emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
                }
                // The point of the shape: a checked deref of the cell on
                // every iteration, so the NPE fires exactly at iteration k
                // with the loop-carried observation trace live.
                let v = b.get_field(cell, fields[0]);
                b.observe(v);
            });
        }
        Action::HugeIndexChecked(sel) => {
            // Near-boundary and huge magnitudes; the bound check must turn
            // every one of them into ArrayIndexOutOfBounds before an
            // address is ever formed.
            let menu: [i64; 8] = [
                509,
                510,
                511,
                512,
                i64::from(i32::MAX),
                1 << 40,
                -(1 << 40),
                i64::MIN / 2,
            ];
            let idx = b.iconst(menu[*sel as usize % menu.len()]);
            ints.push(b.array_load(arr, idx, Type::Int));
        }
        Action::RawLoad(shape) => {
            let (base, index) = match shape {
                RawIndex::GuardWrap => (b.null_ref(), (1i64 << 61) + 14),
                RawIndex::HugeWild => (arr, 1i64 << 53),
                RawIndex::NearBoundary(k) => (b.null_ref(), 510 + i64::from(*k)),
            };
            let idx = b.iconst(index);
            let dst = b.var(Type::Int);
            b.emit(Inst::ArrayLoad {
                dst,
                arr: base,
                index: idx,
                ty: Type::Int,
                exception_site: false,
            });
            // Keep the load live so dead-code elimination cannot erase it
            // from optimized configs only (the baseline always runs it).
            b.observe(dst);
            ints.push(dst);
        }
        Action::CallChain(..) | Action::CallMake | Action::BoxPayload => {
            panic!("call-heavy shapes need helper functions: lower with build_call_module")
        }
    }
}

/// How many `chain_k` helpers [`build_call_module`] creates.
pub const CHAIN_DEPTH: usize = 4;

/// The helper functions call-heavy shapes are lowered against, pre-built
/// by [`build_call_module`].
pub struct CallEnv {
    /// `chain_k(p) = p.f0 + chain_{k-1}(p)`, each dereferencing its
    /// parameter (so a parameter fact kills the check at every depth).
    pub chain: Vec<FunctionId>,
    /// `make() -> Ref`: returns a fresh, initialized object on every path.
    pub make: FunctionId,
    /// `make_box() -> Ref`: returns a fresh `Box` whose `payload` field is
    /// assigned a non-null object before the box escapes.
    pub make_box: FunctionId,
    /// `Box.payload`, the constructor-initialized reference field.
    pub payload: FieldId,
}

/// [`emit`] extended with the call-heavy shapes; everything else delegates.
#[allow(clippy::too_many_arguments)]
pub fn emit_call(
    b: &mut FuncBuilder,
    a: &Action,
    ints: &mut Vec<VarId>,
    refs: &mut Vec<VarId>,
    class: ClassId,
    fields: &[FieldId],
    arr: VarId,
    env: &CallEnv,
) {
    match a {
        Action::CallChain(d, fresh, r) => {
            let base = if *fresh {
                b.new_object(class)
            } else {
                refs[*r as usize % refs.len()]
            };
            let target = env.chain[*d as usize % env.chain.len()];
            let v = b.call_static(target, &[base], Some(Type::Int)).unwrap();
            ints.push(v);
        }
        Action::CallMake => {
            let o = b.call_static(env.make, &[], Some(Type::Ref)).unwrap();
            refs.push(o);
        }
        Action::BoxPayload => {
            let bx = b.call_static(env.make_box, &[], Some(Type::Ref)).unwrap();
            let p = b.get_field_typed(bx, env.payload, Type::Ref);
            let v = b.get_field(p, fields[0]);
            b.observe(v);
            ints.push(v);
        }
        other => emit(b, other, ints, refs, class, fields, arr),
    }
}

/// Builds a module: `work(obj, maybe_null, arr)` runs the action list
/// inside a catch-all try region (so NPEs are observable, not escaping),
/// and `main` calls it with a real object, a null, and a small array.
pub fn build_module(actions: &[Action]) -> Module {
    let mut m = Module::new("random");
    let class = m.add_class("C", &[("f0", Type::Int), ("f1", Type::Int)]);
    let fields = [m.field(class, "f0").unwrap(), m.field(class, "f1").unwrap()];

    let work = {
        let mut b = FuncBuilder::new("work", &[Type::Ref, Type::Ref, Type::Ref], Type::Int);
        let obj = b.param(0);
        let nul = b.param(1);
        let arr = b.param(2);
        let handler = b.new_block();
        let after = b.new_block();
        let body = b.new_block();
        let code = b.var(Type::Int);
        let out = b.var(Type::Int);
        let z = b.iconst(0);
        b.assign(out, z);
        let region = b.add_try_region(handler, CatchKind::Any, Some(code));
        b.goto(body);
        b.set_try_region(Some(region));
        b.switch_to(body);
        let mut ints = vec![z];
        let mut refs = vec![obj, nul];
        for a in actions {
            emit(&mut b, a, &mut ints, &mut refs, class, &fields, arr);
        }
        let last = *ints.last().unwrap();
        b.assign(out, last);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        b.observe(code);
        b.assign(out, code);
        b.goto(after);
        b.switch_to(after);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let five = b.iconst(5);
    b.put_field(obj, fields[0], five);
    let nul = b.null_ref();
    let eight = b.iconst(8);
    let arr = b.new_array(Type::Int, eight);
    let r = b
        .call_static(work, &[obj, nul, arr], Some(Type::Int))
        .unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// Builds a module for the call-heavy menu: helper functions (`chain_k`,
/// `make`, `make_box`) plus the same `work`/`main` harness as
/// [`build_module`], with `work` lowered through [`emit_call`].
///
/// The helpers are shaped so the interprocedural analysis has real facts
/// to find: every `chain_k` dereferences its parameter (fresh-argument
/// call sites keep the parameter fact alive), `make`/`make_box` return
/// fresh allocations on every path (return facts), and `Box.payload` is
/// assigned non-null before the box escapes its constructor (a field
/// fact). A seed that passes the pool's null into a chain demotes that
/// parameter fact — the negative case rides in the same corpus.
pub fn build_call_module(actions: &[Action]) -> Module {
    let mut m = Module::new("random_calls");
    let class = m.add_class("C", &[("f0", Type::Int), ("f1", Type::Int)]);
    let fields = [m.field(class, "f0").unwrap(), m.field(class, "f1").unwrap()];
    let boxc = m.add_class("Box", &[("payload", Type::Ref)]);
    let payload = m.field(boxc, "payload").unwrap();

    let mut chain = Vec::with_capacity(CHAIN_DEPTH);
    for k in 0..CHAIN_DEPTH {
        let mut b = FuncBuilder::new(format!("chain_{k}"), &[Type::Ref], Type::Int);
        let p = b.param(0);
        let v = b.get_field(p, fields[0]);
        let out = match chain.last() {
            Some(&prev) => {
                let r = b.call_static(prev, &[p], Some(Type::Int)).unwrap();
                b.binop(Op::Add, v, r)
            }
            None => v,
        };
        b.ret(Some(out));
        chain.push(m.add_function(b.finish()));
    }

    let make = {
        let mut b = FuncBuilder::new("make", &[], Type::Ref);
        let o = b.new_object(class);
        let seven = b.iconst(7);
        b.put_field(o, fields[0], seven);
        b.ret(Some(o));
        m.add_function(b.finish())
    };

    let make_box = {
        let mut b = FuncBuilder::new("make_box", &[], Type::Ref);
        let c = b.new_object(class);
        let three = b.iconst(3);
        b.put_field(c, fields[0], three);
        let bx = b.new_object(boxc);
        b.put_field(bx, payload, c);
        b.ret(Some(bx));
        m.add_function(b.finish())
    };

    let env = CallEnv {
        chain,
        make,
        make_box,
        payload,
    };

    let work = {
        let mut b = FuncBuilder::new("work", &[Type::Ref, Type::Ref, Type::Ref], Type::Int);
        let obj = b.param(0);
        let nul = b.param(1);
        let arr = b.param(2);
        let handler = b.new_block();
        let after = b.new_block();
        let body = b.new_block();
        let code = b.var(Type::Int);
        let out = b.var(Type::Int);
        let z = b.iconst(0);
        b.assign(out, z);
        let region = b.add_try_region(handler, CatchKind::Any, Some(code));
        b.goto(body);
        b.set_try_region(Some(region));
        b.switch_to(body);
        let mut ints = vec![z];
        let mut refs = vec![obj, nul];
        for a in actions {
            emit_call(&mut b, a, &mut ints, &mut refs, class, &fields, arr, &env);
        }
        let last = *ints.last().unwrap();
        b.assign(out, last);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        b.observe(code);
        b.assign(out, code);
        b.goto(after);
        b.switch_to(after);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let five = b.iconst(5);
    b.put_field(obj, fields[0], five);
    let nul = b.null_ref();
    let eight = b.iconst(8);
    let arr = b.new_array(Type::Int, eight);
    let r = b
        .call_static(work, &[obj, nul, arr], Some(Type::Int))
        .unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

/// A strictly decreasing size metric over action lists: node count plus
/// loop trip counts. Every candidate [`shrink_candidates`] produces is
/// strictly smaller under this metric, so greedy minimization terminates.
pub fn action_weight(actions: &[Action]) -> usize {
    actions
        .iter()
        .map(|a| match a {
            Action::IfLt(_, _, body) => 1 + action_weight(body),
            Action::Loop(n, body) | Action::NullSeededLoop(n, _, body) => {
                1 + *n as usize + action_weight(body)
            }
            _ => 1,
        })
        .sum()
}

/// Greedy structural minimization: repeatedly adopts the first candidate
/// that is strictly smaller (per `size`) and still fails (per `fails`),
/// until no candidate reproduces the failure.
///
/// Termination is guaranteed by the strict-size check alone, so
/// `candidates` may propose anything; non-shrinking proposals are skipped.
/// The result still satisfies `fails` whenever the initial input did.
pub fn minimize<T: Clone>(
    initial: Vec<T>,
    size: impl Fn(&[T]) -> usize,
    candidates: impl Fn(&[T]) -> Vec<Vec<T>>,
    mut fails: impl FnMut(&[T]) -> bool,
) -> Vec<T> {
    let mut current = initial;
    loop {
        let cur_size = size(&current);
        let adopted = candidates(&current)
            .into_iter()
            .find(|cand| size(cand) < cur_size && fails(cand));
        match adopted {
            Some(cand) => current = cand,
            None => return current,
        }
    }
}

/// One-step shrink candidates for greedy minimization: drop an element,
/// hoist a nested body over its wrapper, or cut a loop's trip count.
pub fn shrink_candidates(actions: &[Action]) -> Vec<Vec<Action>> {
    let mut out = Vec::new();
    for i in 0..actions.len() {
        let mut dropped = actions.to_vec();
        dropped.remove(i);
        out.push(dropped);
        match &actions[i] {
            Action::IfLt(_, _, body)
            | Action::Loop(_, body)
            | Action::NullSeededLoop(_, _, body) => {
                let mut hoisted = actions.to_vec();
                hoisted.splice(i..=i, body.iter().cloned());
                out.push(hoisted);
            }
            _ => {}
        }
        if let Action::Loop(n, body) = &actions[i] {
            if *n > 1 {
                let mut cut = actions.to_vec();
                cut[i] = Action::Loop(1, body.clone());
                out.push(cut);
            }
        }
        if let Action::NullSeededLoop(n, k, body) = &actions[i] {
            if *n > k + 1 {
                let mut cut = actions.to_vec();
                cut[i] = Action::NullSeededLoop(k + 1, *k, body.clone());
                out.push(cut);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sound_menu_is_seed_stable() {
        // The draw sequence for the sound menu must never change: the
        // long-lived property-test seeds encode programs through it.
        // Pin a few structural facts of seed 0..4 at the standard shape.
        for seed in 0..4 {
            let mut a = Rng::new(seed);
            let mut b = Rng::new(seed);
            let la = a.range(1, 20);
            let lb = b.range(1, 20);
            assert_eq!(la, lb);
            let xs = gen_actions(&mut a, la, 3);
            let ys = gen_actions(&mut b, lb, 3);
            assert_eq!(format!("{xs:?}"), format!("{ys:?}"));
        }
    }

    #[test]
    fn generated_modules_verify() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let len = rng.range(1, 12);
            let actions = gen_actions(&mut rng, len, 2);
            let m = build_module(&actions);
            njc_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {:?}", &e[..1.min(e.len())]));
        }
    }

    #[test]
    fn fault_modules_verify_and_allow_one_raw_load() {
        for seed in 0..32 {
            let mut rng = Rng::new(seed);
            let len = rng.range(1, 12);
            let actions = gen_fault_actions(&mut rng, len, 2);
            fn raws(actions: &[Action]) -> usize {
                actions
                    .iter()
                    .map(|a| match a {
                        Action::RawLoad(_) => 1,
                        Action::IfLt(_, _, b)
                        | Action::Loop(_, b)
                        | Action::NullSeededLoop(_, _, b) => raws(b),
                        _ => 0,
                    })
                    .sum()
            }
            assert!(raws(&actions) <= 1, "seed {seed}: {actions:?}");
            let m = build_module(&actions);
            njc_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {:?}", &e[..1.min(e.len())]));
        }
    }

    #[test]
    fn call_modules_verify_and_draw_call_shapes() {
        let mut saw_call = false;
        for seed in 0..24 {
            let mut rng = Rng::new(seed);
            let len = rng.range(1, 12);
            let actions = gen_call_actions(&mut rng, len, 2);
            saw_call |= actions.iter().any(|a| {
                matches!(
                    a,
                    Action::CallChain(..) | Action::CallMake | Action::BoxPayload
                )
            });
            let m = build_call_module(&actions);
            njc_ir::verify_module(&m)
                .unwrap_or_else(|e| panic!("seed {seed}: {:?}", &e[..1.min(e.len())]));
        }
        assert!(saw_call, "the call menu must actually draw call shapes");
    }

    #[test]
    fn shrink_candidates_strictly_reduce_weight() {
        let mut rng = Rng::new(11);
        let actions = gen_fault_actions(&mut rng, 8, 2);
        let w = action_weight(&actions);
        for cand in shrink_candidates(&actions) {
            assert!(
                action_weight(&cand) < w,
                "candidate not smaller: {cand:?} vs {actions:?}"
            );
        }
    }
}
