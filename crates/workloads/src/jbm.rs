//! The ten jBYTEmark v0.9 kernels (paper Table 1).
//!
//! Each kernel builds a module with `main()` returning an int checksum.
//! Like the original benchmarks, the hot loops live in *worker functions*
//! that receive their arrays as parameters: inside a worker nothing is
//! known about the references a priori, so the first dereference of a row
//! happens inside a loop — the paper's Figure 4 situation that separates
//! the two-phase algorithm from forward-only elimination. Workers are
//! deliberately larger than the inlining threshold.
//!
//! The kernels preserve the characteristics §5.1 attributes the results
//! to: *Assignment*, *Neural Net* and *LU Decomposition* use
//! multidimensional arrays (arrays of arrays) in nested loops, and
//! *Neural Net* calls `Math.exp` in its inner loop (§5.4).

use njc_ir::{Cond, FuncBuilder, FunctionId, Module, Op, Type, VarId};

use crate::math::add_math;

// ---------------------------------------------------------------------------
// Small structured-control helpers over the builder.
// ---------------------------------------------------------------------------

/// `if (lhs cond rhs) { then_body }` — leaves the builder in the join block.
pub(crate) fn if_then(
    b: &mut FuncBuilder,
    cond: Cond,
    lhs: VarId,
    rhs: VarId,
    then_body: impl FnOnce(&mut FuncBuilder),
) {
    let t = b.new_block();
    let j = b.new_block();
    b.br_if(cond, lhs, rhs, t, j);
    b.switch_to(t);
    then_body(b);
    b.goto(j);
    b.switch_to(j);
}

/// `if (lhs cond rhs) { then_body } else { else_body }`.
pub(crate) fn if_then_else(
    b: &mut FuncBuilder,
    cond: Cond,
    lhs: VarId,
    rhs: VarId,
    then_body: impl FnOnce(&mut FuncBuilder),
    else_body: impl FnOnce(&mut FuncBuilder),
) {
    let t = b.new_block();
    let e = b.new_block();
    let j = b.new_block();
    b.br_if(cond, lhs, rhs, t, e);
    b.switch_to(t);
    then_body(b);
    b.goto(j);
    b.switch_to(e);
    else_body(b);
    b.goto(j);
    b.switch_to(j);
}

/// Advances a linear congruential generator state variable in place and
/// returns it: `state = (state * 1103515245 + 12345) & 0x3fffffff`.
pub(crate) fn lcg_step(b: &mut FuncBuilder, state: VarId) -> VarId {
    let a = b.iconst(1_103_515_245);
    let c = b.iconst(12_345);
    let mask = b.iconst(0x3fff_ffff);
    b.binop_into(state, Op::Mul, state, a);
    b.binop_into(state, Op::Add, state, c);
    b.binop_into(state, Op::And, state, mask);
    state
}

/// Fills `arr[0..n]` with pseudo-random values masked to `mask`.
pub(crate) fn lcg_fill(b: &mut FuncBuilder, arr: VarId, n: VarId, seed: i64, mask: i64) {
    let state = b.var(Type::Int);
    let s = b.iconst(seed);
    b.assign(state, s);
    let zero = b.iconst(0);
    b.for_loop(zero, n, 1, |b, i| {
        lcg_step(b, state);
        let m = b.iconst(mask);
        let v = b.binop(Op::And, state, m);
        b.array_store(arr, i, v, Type::Int);
    });
}

/// Builds `checksum_ints(arr) -> int`: sum of `arr[i] * (i & 7)`.
fn add_int_checksum(m: &mut Module) -> FunctionId {
    let mut b = FuncBuilder::new("checksum_ints", &[Type::Ref, Type::Int], Type::Int);
    let arr = b.param(0);
    let n = b.param(1);
    let zero = b.iconst(0);
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    b.for_loop(zero, n, 1, |b, i| {
        let v = b.array_load(arr, i, Type::Int);
        let seven = b.iconst(7);
        let w = b.binop(Op::And, i, seven);
        let t = b.mul(v, w);
        b.binop_into(acc, Op::Add, acc, t);
    });
    b.ret(Some(acc));
    m.add_function(b.finish())
}

// ---------------------------------------------------------------------------
// 1. Numeric Sort — selection sort over an int array.
// ---------------------------------------------------------------------------

/// Numeric Sort: integer array sorting in a worker method.
pub fn numeric_sort() -> Module {
    let mut m = Module::new("numeric_sort");

    // sort(arr) -> number of swaps
    let sort = {
        let mut b = FuncBuilder::new("sort", &[Type::Ref, Type::Int], Type::Int);
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let swaps = b.var(Type::Int);
        b.assign(swaps, zero);
        let n_minus_1 = b.add_i(n, -1);
        b.for_loop(zero, n_minus_1, 1, |b, i| {
            let min_idx = b.var(Type::Int);
            b.assign(min_idx, i);
            let i1 = b.add_i(i, 1);
            b.for_loop(i1, n, 1, |b, j| {
                let aj = b.array_load(arr, j, Type::Int);
                let amin = b.array_load(arr, min_idx, Type::Int);
                if_then(b, Cond::Lt, aj, amin, |b| {
                    b.assign(min_idx, j);
                });
            });
            let tmp = b.array_load(arr, i, Type::Int);
            let vmin = b.array_load(arr, min_idx, Type::Int);
            b.array_store(arr, i, vmin, Type::Int);
            b.array_store(arr, min_idx, tmp, Type::Int);
            let one = b.iconst(1);
            b.binop_into(swaps, Op::Add, swaps, one);
        });
        b.ret(Some(swaps));
        m.add_function(b.finish())
    };
    let checksum = add_int_checksum(&mut m);

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(300);
    let arr = b.new_array(Type::Int, n);
    lcg_fill(&mut b, arr, n, 314_159, 0xffff);
    let swaps = b.call_static(sort, &[arr, n], Some(Type::Int)).unwrap();
    let acc = b.call_static(checksum, &[arr, n], Some(Type::Int)).unwrap();
    let out = b.add(acc, swaps);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 2. String Sort — sorting an array of (byte) arrays by first element.
// ---------------------------------------------------------------------------

/// String Sort: two-level arrays, reference swaps, in a worker method.
pub fn string_sort() -> Module {
    let mut m = Module::new("string_sort");

    // sort_strings(strings) -> comparisons
    let sort = {
        let mut b = FuncBuilder::new("sort_strings", &[Type::Ref, Type::Int], Type::Int);
        let strings = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let cmps = b.var(Type::Int);
        b.assign(cmps, zero);
        let n_minus_1 = b.add_i(n, -1);
        b.for_loop(zero, n_minus_1, 1, |b, i| {
            let min_idx = b.var(Type::Int);
            b.assign(min_idx, i);
            let i1 = b.add_i(i, 1);
            b.for_loop(i1, n, 1, |b, j| {
                let sj = b.array_load(strings, j, Type::Ref);
                let kj = b.array_load(sj, zero, Type::Int);
                let smin = b.array_load(strings, min_idx, Type::Ref);
                let kmin = b.array_load(smin, zero, Type::Int);
                let one = b.iconst(1);
                b.binop_into(cmps, Op::Add, cmps, one);
                if_then(b, Cond::Lt, kj, kmin, |b| {
                    b.assign(min_idx, j);
                });
            });
            let a = b.array_load(strings, i, Type::Ref);
            let c = b.array_load(strings, min_idx, Type::Ref);
            b.array_store(strings, i, c, Type::Ref);
            b.array_store(strings, min_idx, a, Type::Ref);
        });
        b.ret(Some(cmps));
        m.add_function(b.finish())
    };

    // checksum(strings) -> sum of (key + length)
    let checksum = {
        let mut b = FuncBuilder::new("checksum_strings", &[Type::Ref, Type::Int], Type::Int);
        let strings = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, n, 1, |b, i| {
            let s = b.array_load(strings, i, Type::Ref);
            let key = b.array_load(s, zero, Type::Int);
            let len = b.array_length(s);
            let t = b.add(key, len);
            b.binop_into(acc, Op::Add, acc, t);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(120);
    let strings = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(271_828);
    b.assign(state, seed);
    let zero = b.iconst(0);
    b.for_loop(zero, n, 1, |b, i| {
        lcg_step(b, state);
        let seven = b.iconst(7);
        let extra = b.binop(Op::And, state, seven);
        let four = b.iconst(4);
        let len = b.add(four, extra);
        let s = b.new_array(Type::Int, len);
        let keymask = b.iconst(0xfff);
        let key = b.binop(Op::And, state, keymask);
        b.array_store(s, zero, key, Type::Int);
        let one = b.iconst(1);
        b.for_loop(one, len, 1, |b, k| {
            let ch = b.add(key, k);
            let chm = b.iconst(0xff);
            let ch = b.binop(Op::And, ch, chm);
            b.array_store(s, k, ch, Type::Int);
        });
        b.array_store(strings, i, s, Type::Ref);
    });
    let cmps = b.call_static(sort, &[strings, n], Some(Type::Int)).unwrap();
    let acc = b
        .call_static(checksum, &[strings, n], Some(Type::Int))
        .unwrap();
    let out = b.add(acc, cmps);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 3. Bitfield — bit manipulation over a word array.
// ---------------------------------------------------------------------------

/// Bitfield: set/clear/toggle bit operations in a worker method.
pub fn bitfield() -> Module {
    let mut m = Module::new("bitfield");

    let toggle = {
        let mut b = FuncBuilder::new("bit_ops", &[Type::Ref, Type::Int], Type::Int);
        let arr = b.param(0);
        let ops = b.param(1);
        let zero = b.iconst(0);
        let state = b.var(Type::Int);
        let seed = b.iconst(161_803);
        b.assign(state, seed);
        b.for_loop(zero, ops, 1, |b, _i| {
            lcg_step(b, state);
            let bitmask = b.iconst(64 * 64 - 1);
            let bit = b.binop(Op::And, state, bitmask);
            let six = b.iconst(6);
            let w = b.binop(Op::Shr, bit, six);
            let m63 = b.iconst(63);
            let o = b.binop(Op::And, bit, m63);
            let one = b.iconst(1);
            let mask = b.binop(Op::Shl, one, o);
            let cur = b.array_load(arr, w, Type::Int);
            let three = b.iconst(3);
            let ten = b.iconst(10);
            let shifted = b.binop(Op::Shr, state, ten);
            let sel = b.binop(Op::And, shifted, three);
            let two = b.iconst(2);
            if_then_else(
                b,
                Cond::Eq,
                sel,
                zero,
                |b| {
                    let v = b.binop(Op::Or, cur, mask);
                    b.array_store(arr, w, v, Type::Int);
                },
                |b| {
                    if_then_else(
                        b,
                        Cond::Eq,
                        sel,
                        two,
                        |b| {
                            let nm = b.neg(mask);
                            let nm1 = b.add_i(nm, -1);
                            let v = b.binop(Op::And, cur, nm1);
                            b.array_store(arr, w, v, Type::Int);
                        },
                        |b| {
                            let v = b.binop(Op::Xor, cur, mask);
                            b.array_store(arr, w, v, Type::Int);
                        },
                    );
                },
            );
        });
        // Popcount-ish checksum in the same worker.
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        let words = b.array_length(arr);
        b.for_loop(zero, words, 1, |b, i| {
            let v = b.array_load(arr, i, Type::Int);
            let m8 = b.iconst(0xff);
            let low = b.binop(Op::And, v, m8);
            b.binop_into(acc, Op::Add, acc, low);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let words = b.iconst(64);
    let arr = b.new_array(Type::Int, words);
    let ops = b.iconst(4000);
    let acc = b.call_static(toggle, &[arr, ops], Some(Type::Int)).unwrap();
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 4. FP Emulation — software floating point over objects with accessors.
// ---------------------------------------------------------------------------

/// FP Emulation: soft-float numbers as objects, with small accessor
/// methods (an inlining showcase).
pub fn fp_emulation() -> Module {
    let mut m = Module::new("fp_emulation");
    let soft = m.add_class(
        "SoftFloat",
        &[
            ("sign", Type::Int),
            ("exp_", Type::Int),
            ("mant", Type::Int),
        ],
    );
    let f_sign = m.field(soft, "sign").unwrap();
    let f_exp = m.field(soft, "exp_").unwrap();
    let f_mant = m.field(soft, "mant").unwrap();

    for (name, field) in [("getSign", f_sign), ("getExp", f_exp), ("getMant", f_mant)] {
        let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Int);
        b.instance_method();
        let this = b.param(0);
        let v = b.get_field(this, field);
        b.ret(Some(v));
        m.add_method(soft, name, b.finish());
    }
    {
        let mut b = FuncBuilder::new_void("setAll", &[Type::Ref, Type::Int, Type::Int, Type::Int]);
        b.instance_method();
        let this = b.param(0);
        let (s, e, mt) = (b.param(1), b.param(2), b.param(3));
        b.put_field(this, f_sign, s);
        b.put_field(this, f_exp, e);
        b.put_field(this, f_mant, mt);
        b.ret(None);
        m.add_method(soft, "setAll", b.finish());
    }

    // soft_mul(x, y, z): z = x * y via accessor calls.
    let soft_mul = {
        let mut b = FuncBuilder::new("soft_mul", &[Type::Ref, Type::Ref, Type::Ref], Type::Int);
        let (x, y, z) = (b.param(0), b.param(1), b.param(2));
        let sx = b
            .call_virtual(soft, "getSign", x, &[], Some(Type::Int))
            .unwrap();
        let sy = b
            .call_virtual(soft, "getSign", y, &[], Some(Type::Int))
            .unwrap();
        let sz = b.binop(Op::Xor, sx, sy);
        let ex = b
            .call_virtual(soft, "getExp", x, &[], Some(Type::Int))
            .unwrap();
        let ey = b
            .call_virtual(soft, "getExp", y, &[], Some(Type::Int))
            .unwrap();
        let ez = b.add(ex, ey);
        let mx = b
            .call_virtual(soft, "getMant", x, &[], Some(Type::Int))
            .unwrap();
        let my = b
            .call_virtual(soft, "getMant", y, &[], Some(Type::Int))
            .unwrap();
        let prod = b.mul(mx, my);
        let sixteen = b.iconst(16);
        let mz = b.binop(Op::Shr, prod, sixteen);
        b.call_virtual(soft, "setAll", z, &[sz, ez, mz], None);
        b.ret(Some(mz));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let x = b.new_object(soft);
    let y = b.new_object(soft);
    let z = b.new_object(soft);
    let zero = b.iconst(0);
    let iters = b.iconst(1500);
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    let state = b.var(Type::Int);
    let seed = b.iconst(577_215);
    b.assign(state, seed);
    b.for_loop(zero, iters, 1, |b, i| {
        lcg_step(b, state);
        let m16 = b.iconst(0xffff);
        let mant_x = b.binop(Op::And, state, m16);
        let one = b.iconst(1);
        let sign_x = b.binop(Op::And, state, one);
        let m5 = b.iconst(31);
        let exp_x = b.binop(Op::And, i, m5);
        b.call_virtual(soft, "setAll", x, &[sign_x, exp_x, mant_x], None);
        let mant_y = b.binop(Op::Xor, mant_x, m5);
        b.call_virtual(soft, "setAll", y, &[sign_x, exp_x, mant_y], None);
        let rz = b
            .call_static(soft_mul, &[x, y, z], Some(Type::Int))
            .unwrap();
        b.binop_into(acc, Op::Add, acc, rz);
        let big = b.iconst(0x0fff_ffff);
        b.binop_into(acc, Op::And, acc, big);
    });
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 5. Fourier — numerical integration of fourier coefficients (pure float).
// ---------------------------------------------------------------------------

/// Fourier: float-heavy, no objects — null check optimizations are
/// expected to be neutral here (the paper measures ~0%).
pub fn fourier() -> Module {
    let mut m = Module::new("fourier");
    let math = add_math(&mut m);
    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let terms = b.iconst(60);
    let acc = b.var(Type::Float);
    let z = b.fconst(0.0);
    b.assign(acc, z);

    b.for_loop(zero, terms, 1, |b, k| {
        let kf = b.convert(k, Type::Float);
        let steps = b.iconst(20);
        let sum = b.var(Type::Float);
        let zf = b.fconst(0.0);
        b.assign(sum, zf);
        b.for_loop(zero, steps, 1, |b, s| {
            let sf = b.convert(s, Type::Float);
            let h = b.fconst(0.1);
            let x = b.mul(sf, h);
            let kx = b.mul(kf, x);
            let c = b.call_static(math.cos, &[kx], Some(Type::Float)).unwrap();
            let si = b.call_static(math.sin, &[kx], Some(Type::Float)).unwrap();
            let t = b.add(c, si);
            b.binop_into(sum, Op::Add, sum, t);
        });
        let e = b.call_static(math.exp, &[sum], Some(Type::Float)).unwrap();
        let sq = b.call_static(math.sqrt, &[e], Some(Type::Float)).unwrap();
        b.binop_into(acc, Op::Add, acc, sq);
    });

    let scale = b.fconst(1000.0);
    let scaled = b.mul(acc, scale);
    let out = b.convert(scaled, Type::Int);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 6. Assignment — task assignment over a 2-D cost matrix.
// ---------------------------------------------------------------------------

/// Assignment: 2-D array (array of arrays) row/column reductions in worker
/// methods — the pattern §5.1 credits for its large improvement.
pub fn assignment() -> Module {
    let mut m = Module::new("assignment");

    // reduce_rows(matrix): subtract each row's minimum. The row's first
    // access is *inside* the scan loop — the Figure 4 pattern a forward-
    // only null check analysis cannot hoist.
    let reduce_rows = {
        let mut b = FuncBuilder::new_void("reduce_rows", &[Type::Ref]);
        let matrix = b.param(0);
        let zero = b.iconst(0);
        let n = b.array_length(matrix);
        b.for_loop(zero, n, 1, |b, i| {
            let row = b.array_load(matrix, i, Type::Ref);
            let minv = b.var(Type::Int);
            b.assign_const(minv, njc_ir::ConstValue::Int(1 << 30));
            b.for_loop(zero, n, 1, |b, j| {
                let v = b.array_load(row, j, Type::Int);
                if_then(b, Cond::Lt, v, minv, |b| {
                    b.assign(minv, v);
                });
            });
            b.for_loop(zero, n, 1, |b, j| {
                let v = b.array_load(row, j, Type::Int);
                let d = b.sub(v, minv);
                b.array_store(row, j, d, Type::Int);
            });
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    // reduce_cols(matrix): subtract each column's minimum.
    let reduce_cols = {
        let mut b = FuncBuilder::new_void("reduce_cols", &[Type::Ref]);
        let matrix = b.param(0);
        let zero = b.iconst(0);
        let n = b.array_length(matrix);
        b.for_loop(zero, n, 1, |b, j| {
            let minv = b.var(Type::Int);
            b.assign_const(minv, njc_ir::ConstValue::Int(1 << 30));
            b.for_loop(zero, n, 1, |b, i| {
                let row = b.array_load(matrix, i, Type::Ref);
                let v = b.array_load(row, j, Type::Int);
                if_then(b, Cond::Lt, v, minv, |b| {
                    b.assign(minv, v);
                });
            });
            b.for_loop(zero, n, 1, |b, i| {
                let row = b.array_load(matrix, i, Type::Ref);
                let v = b.array_load(row, j, Type::Int);
                let d = b.sub(v, minv);
                b.array_store(row, j, d, Type::Int);
            });
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    // score(matrix) -> zeros + diagonal sum.
    let score = {
        let mut b = FuncBuilder::new("score", &[Type::Ref], Type::Int);
        let matrix = b.param(0);
        let zero = b.iconst(0);
        let n = b.array_length(matrix);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, n, 1, |b, i| {
            let row = b.array_load(matrix, i, Type::Ref);
            b.for_loop(zero, n, 1, |b, j| {
                let v = b.array_load(row, j, Type::Int);
                if_then(b, Cond::Eq, v, zero, |b| {
                    let one = b.iconst(1);
                    b.binop_into(acc, Op::Add, acc, one);
                });
                let _ = j;
            });
            let d = b.array_load(row, i, Type::Int);
            b.binop_into(acc, Op::Add, acc, d);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(24);
    let zero = b.iconst(0);
    let matrix = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(141_421);
    b.assign(state, seed);
    b.for_loop(zero, n, 1, |b, i| {
        let row = b.new_array(Type::Int, n);
        b.for_loop(zero, n, 1, |b, j| {
            lcg_step(b, state);
            let mask = b.iconst(0xff);
            let v = b.binop(Op::And, state, mask);
            let one = b.iconst(1);
            let v = b.add(v, one);
            b.array_store(row, j, v, Type::Int);
            let _ = j;
        });
        b.array_store(matrix, i, row, Type::Ref);
    });
    let rounds = b.iconst(3);
    b.for_loop(zero, rounds, 1, |b, _r| {
        b.call_static(reduce_rows, &[matrix], None);
        b.call_static(reduce_cols, &[matrix], None);
    });
    let acc = b.call_static(score, &[matrix], Some(Type::Int)).unwrap();
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 7. IDEA encryption — 16-bit modular arithmetic rounds over int arrays.
// ---------------------------------------------------------------------------

/// IDEA encryption: flat array crypto rounds in a worker (modest
/// improvement in the paper — few loop-invariant accesses).
pub fn idea() -> Module {
    let mut m = Module::new("idea");

    let crypt = {
        let mut b = FuncBuilder::new_void("crypt", &[Type::Ref, Type::Ref, Type::Int, Type::Int]);
        let data = b.param(0);
        let key = b.param(1);
        let rounds = b.param(2);
        let n = b.param(3);
        let zero = b.iconst(0);
        b.for_loop(zero, rounds, 1, |b, r| {
            b.for_loop(zero, n, 1, |b, i| {
                let x = b.array_load(data, i, Type::Int);
                let six = b.iconst(6);
                let kidx0 = b.mul(r, six);
                let m3 = b.iconst(3);
                let koff = b.binop(Op::And, i, m3);
                let kidx = b.add(kidx0, koff);
                let k = b.array_load(key, kidx, Type::Int);
                let t = b.mul(x, k);
                let m16 = b.iconst(0xffff);
                let lo = b.binop(Op::And, t, m16);
                let sixteen = b.iconst(16);
                let hi0 = b.binop(Op::Shr, t, sixteen);
                let hi = b.binop(Op::And, hi0, m16);
                let res = b.var(Type::Int);
                let d = b.sub(lo, hi);
                b.assign(res, d);
                if_then(b, Cond::Lt, res, zero, |b| {
                    let fix = b.iconst(0x10001);
                    b.binop_into(res, Op::Add, res, fix);
                });
                let out = b.binop(Op::And, res, m16);
                b.array_store(data, i, out, Type::Int);
            });
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n = b.iconst(800);
    let data = b.new_array(Type::Int, n);
    let nk = b.iconst(52);
    let key = b.new_array(Type::Int, nk);
    lcg_fill(&mut b, data, n, 662_607, 0xffff);
    lcg_fill(&mut b, key, nk, 602_214, 0xffff);
    let rounds = b.iconst(8);
    b.call_static(crypt, &[data, key, rounds, n], None);
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    b.for_loop(zero, n, 1, |b, i| {
        let v = b.array_load(data, i, Type::Int);
        b.binop_into(acc, Op::Xor, acc, v);
        b.binop_into(acc, Op::Add, acc, i);
    });
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 8. Huffman Compression — frequency counting and bit packing.
// ---------------------------------------------------------------------------

/// Huffman Compression: frequency counting, code lengths, bit packing, in
/// worker methods.
pub fn huffman() -> Module {
    let mut m = Module::new("huffman");

    let count = {
        let mut b = FuncBuilder::new_void("count_freq", &[Type::Ref, Type::Ref, Type::Int]);
        let data = b.param(0);
        let freq = b.param(1);
        let n = b.param(2);
        let zero = b.iconst(0);
        b.for_loop(zero, n, 1, |b, i| {
            let s = b.array_load(data, i, Type::Int);
            let f = b.array_load(freq, s, Type::Int);
            let one = b.iconst(1);
            let f1 = b.add(f, one);
            b.array_store(freq, s, f1, Type::Int);
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    let assign_lengths = {
        let mut b = FuncBuilder::new_void("assign_lengths", &[Type::Ref, Type::Ref]);
        let freq = b.param(0);
        let lens = b.param(1);
        let zero = b.iconst(0);
        let nsym = b.array_length(freq);
        b.for_loop(zero, nsym, 1, |b, s| {
            let f = b.array_load(freq, s, Type::Int);
            let len = b.var(Type::Int);
            let sixteen = b.iconst(16);
            b.assign(len, sixteen);
            let probe = b.var(Type::Int);
            let one = b.iconst(1);
            b.assign(probe, one);
            let bits = b.iconst(14);
            b.for_loop(zero, bits, 1, |b, _k| {
                if_then(b, Cond::Ge, f, probe, |b| {
                    let l1 = b.add_i(len, -1);
                    let two = b.iconst(2);
                    if_then(b, Cond::Gt, l1, two, |b| {
                        b.assign(len, l1);
                    });
                });
                b.binop_into(probe, Op::Add, probe, probe);
            });
            b.array_store(lens, s, len, Type::Int);
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    let pack = {
        let mut b = FuncBuilder::new("pack", &[Type::Ref, Type::Ref, Type::Int], Type::Int);
        let data = b.param(0);
        let lens = b.param(1);
        let n = b.param(2);
        let zero = b.iconst(0);
        let bits_total = b.var(Type::Int);
        b.assign(bits_total, zero);
        let hash = b.var(Type::Int);
        b.assign(hash, zero);
        b.for_loop(zero, n, 1, |b, i| {
            let s = b.array_load(data, i, Type::Int);
            let l = b.array_load(lens, s, Type::Int);
            b.binop_into(bits_total, Op::Add, bits_total, l);
            let five = b.iconst(5);
            let h = b.binop(Op::Shl, hash, five);
            let h2 = b.binop(Op::Xor, h, s);
            let mask = b.iconst(0x0fff_ffff);
            let h3 = b.binop(Op::And, h2, mask);
            b.assign(hash, h3);
            let _ = i;
        });
        let out = b.add(bits_total, hash);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(2500);
    let data = b.new_array(Type::Int, n);
    lcg_fill(&mut b, data, n, 123_456, 63);
    let nsym = b.iconst(64);
    let freq = b.new_array(Type::Int, nsym);
    let lens = b.new_array(Type::Int, nsym);
    b.call_static(count, &[data, freq, n], None);
    b.call_static(assign_lengths, &[freq, lens], None);
    let acc = b
        .call_static(pack, &[data, lens, n], Some(Type::Int))
        .unwrap();
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 9. Neural Net — 2-D weight matrices + Math.exp in the inner loop.
// ---------------------------------------------------------------------------

/// Neural Net: feed-forward passes over 2-D weight arrays with a sigmoid
/// (`Math.exp`) in a worker method — the §5.4 intrinsic showcase.
pub fn neural_net() -> Module {
    let mut m = Module::new("neural_net");
    let math = add_math(&mut m);

    // forward(w, src, dst) -> sum of activations: one layer.
    let forward = {
        let mut b = FuncBuilder::new("forward", &[Type::Ref, Type::Ref, Type::Ref], Type::Float);
        let w = b.param(0);
        let src = b.param(1);
        let dst = b.param(2);
        let zero = b.iconst(0);
        let rows = b.array_length(w);
        let acc = b.var(Type::Float);
        let zf = b.fconst(0.0);
        b.assign(acc, zf);
        b.for_loop(zero, rows, 1, |b, r| {
            let row = b.array_load(w, r, Type::Ref);
            let cols = b.array_length(src);
            let sum = b.var(Type::Float);
            let z = b.fconst(0.0);
            b.assign(sum, z);
            b.for_loop(zero, cols, 1, |b, i| {
                let wv = b.array_load(row, i, Type::Float);
                let x = b.array_load(src, i, Type::Float);
                let p = b.mul(wv, x);
                b.binop_into(sum, Op::Add, sum, p);
            });
            let neg = b.neg(sum);
            let e = b.call_static(math.exp, &[neg], Some(Type::Float)).unwrap();
            let one = b.fconst(1.0);
            let denom = b.add(one, e);
            let a = b.div(one, denom);
            b.array_store(dst, r, a, Type::Float);
            b.binop_into(acc, Op::Add, acc, a);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    // nudge(w, src): tiny weight update (adds in-loop float stores).
    let nudge = {
        let mut b = FuncBuilder::new_void("nudge", &[Type::Ref, Type::Ref]);
        let w = b.param(0);
        let src = b.param(1);
        let zero = b.iconst(0);
        let rows = b.array_length(w);
        b.for_loop(zero, rows, 1, |b, r| {
            let row = b.array_load(w, r, Type::Ref);
            let cols = b.array_length(row);
            b.for_loop(zero, cols, 1, |b, h| {
                let wv = b.array_load(row, h, Type::Float);
                let lr = b.fconst(0.0001);
                let x = b.array_load(src, h, Type::Float);
                let d = b.mul(lr, x);
                let w2v = b.add(wv, d);
                b.array_store(row, h, w2v, Type::Float);
            });
            let _ = r;
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n_in = b.iconst(8);
    let n_hid = b.iconst(8);
    let n_out = b.iconst(4);

    let mk_matrix = |b: &mut FuncBuilder, rows: VarId, cols: VarId, seed: i64| {
        let w = b.new_array(Type::Ref, rows);
        let state = b.var(Type::Int);
        let s = b.iconst(seed);
        b.assign(state, s);
        let z = b.iconst(0);
        b.for_loop(z, rows, 1, |b, r| {
            let row = b.new_array(Type::Float, cols);
            b.for_loop(z, cols, 1, |b, c| {
                lcg_step(b, state);
                let m8 = b.iconst(0xff);
                let vi = b.binop(Op::And, state, m8);
                let vf = b.convert(vi, Type::Float);
                let scale = b.fconst(1.0 / 512.0);
                let half = b.fconst(0.25);
                let w0 = b.mul(vf, scale);
                let wv = b.sub(w0, half);
                b.array_store(row, c, wv, Type::Float);
            });
            b.array_store(w, r, row, Type::Ref);
        });
        w
    };
    let w1 = mk_matrix(&mut b, n_hid, n_in, 424_242);
    let w2 = mk_matrix(&mut b, n_out, n_hid, 434_343);

    let input = b.new_array(Type::Float, n_in);
    let hidden = b.new_array(Type::Float, n_hid);
    let output = b.new_array(Type::Float, n_out);
    b.for_loop(zero, n_in, 1, |b, i| {
        let f = b.convert(i, Type::Float);
        let s = b.fconst(0.125);
        let v = b.mul(f, s);
        b.array_store(input, i, v, Type::Float);
    });

    let epochs = b.iconst(40);
    let acc = b.var(Type::Float);
    let zf = b.fconst(0.0);
    b.assign(acc, zf);
    b.for_loop(zero, epochs, 1, |b, _e| {
        b.call_static(forward, &[w1, input, hidden], Some(Type::Float));
        let a2 = b
            .call_static(forward, &[w2, hidden, output], Some(Type::Float))
            .unwrap();
        b.binop_into(acc, Op::Add, acc, a2);
        b.call_static(nudge, &[w2, hidden], None);
    });

    let scale = b.fconst(1000.0);
    let scaled = b.mul(acc, scale);
    let out = b.convert(scaled, Type::Int);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// 10. LU Decomposition — Gaussian elimination over a 2-D float matrix.
// ---------------------------------------------------------------------------

/// LU Decomposition: the naive source-level `a[i][j] -= a[i][k] * a[k][j]`
/// triple loop in a worker method — scalar replacement must recover the
/// row pointers and invariant elements, which only works above loops
/// whose null and bounds checks were hoisted first.
pub fn lu() -> Module {
    let mut m = Module::new("lu");

    let decompose = {
        let mut b = FuncBuilder::new_void("decompose", &[Type::Ref]);
        let a = b.param(0);
        let zero = b.iconst(0);
        let n = b.array_length(a);
        b.for_loop(zero, n, 1, |b, k| {
            let k1 = b.add_i(k, 1);
            b.for_loop(k1, n, 1, |b, i| {
                // f = a[i][k] / a[k][k]
                let row_i0 = b.array_load(a, i, Type::Ref);
                let aik = b.array_load(row_i0, k, Type::Float);
                let row_k0 = b.array_load(a, k, Type::Ref);
                let akk = b.array_load(row_k0, k, Type::Float);
                let f = b.div(aik, akk);
                b.for_loop(k1, n, 1, |b, j| {
                    let row_k = b.array_load(a, k, Type::Ref);
                    let akj = b.array_load(row_k, j, Type::Float);
                    let row_i = b.array_load(a, i, Type::Ref);
                    let aij = b.array_load(row_i, j, Type::Float);
                    let p = b.mul(f, akj);
                    let v = b.sub(aij, p);
                    b.array_store(row_i, j, v, Type::Float);
                });
                let row_i1 = b.array_load(a, i, Type::Ref);
                b.array_store(row_i1, k, f, Type::Float);
            });
        });
        b.ret(None);
        m.add_function(b.finish())
    };

    let diag_sum = {
        let mut b = FuncBuilder::new("diag_sum", &[Type::Ref], Type::Float);
        let a = b.param(0);
        let zero = b.iconst(0);
        let n = b.array_length(a);
        let acc = b.var(Type::Float);
        let zf = b.fconst(0.0);
        b.assign(acc, zf);
        b.for_loop(zero, n, 1, |b, i| {
            let row = b.array_load(a, i, Type::Ref);
            let d = b.array_load(row, i, Type::Float);
            b.binop_into(acc, Op::Add, acc, d);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n = b.iconst(16);
    let a = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(173_205);
    b.assign(state, seed);
    b.for_loop(zero, n, 1, |b, i| {
        let row = b.new_array(Type::Float, n);
        b.for_loop(zero, n, 1, |b, j| {
            lcg_step(b, state);
            let m8 = b.iconst(0xff);
            let vi = b.binop(Op::And, state, m8);
            let vf = b.convert(vi, Type::Float);
            let one = b.fconst(1.0);
            let v = b.add(vf, one);
            b.array_store(row, j, v, Type::Float);
            let _ = j;
        });
        let d = b.array_load(row, i, Type::Float);
        let big = b.fconst(512.0);
        let d2 = b.add(d, big);
        b.array_store(row, i, d2, Type::Float);
        b.array_store(a, i, row, Type::Ref);
    });
    b.call_static(decompose, &[a], None);
    let acc = b.call_static(diag_sum, &[a], Some(Type::Float)).unwrap();
    let scale = b.fconst(10.0);
    let scaled = b.mul(acc, scale);
    let out = b.convert(scaled, Type::Int);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::verify_module;

    #[test]
    fn every_kernel_verifies() {
        for (name, m) in [
            ("numeric_sort", numeric_sort()),
            ("string_sort", string_sort()),
            ("bitfield", bitfield()),
            ("fp_emulation", fp_emulation()),
            ("fourier", fourier()),
            ("assignment", assignment()),
            ("idea", idea()),
            ("huffman", huffman()),
            ("neural_net", neural_net()),
            ("lu", lu()),
        ] {
            verify_module(&m).unwrap_or_else(|e| {
                panic!(
                    "{name}: {}",
                    e.first().map(|x| x.to_string()).unwrap_or_default()
                )
            });
        }
    }

    fn any_inst(m: &Module, pred: impl Fn(&njc_ir::Inst) -> bool) -> bool {
        m.functions()
            .iter()
            .flat_map(|f| f.blocks())
            .flat_map(|b| &b.insts)
            .any(pred)
    }

    #[test]
    fn multidim_kernels_use_ref_arrays() {
        // The §5.1 claim: Assignment / Neural Net / LU use arrays of arrays.
        for m in [assignment(), neural_net(), lu()] {
            assert!(
                any_inst(&m, |i| matches!(
                    i,
                    njc_ir::Inst::ArrayLoad { ty: Type::Ref, .. }
                )),
                "{} lacks 2-D pattern",
                m.name()
            );
        }
    }

    #[test]
    fn hot_loops_live_in_parameter_taking_workers() {
        // The workers take their arrays as parameters (unknown nullness),
        // reproducing the real benchmarks' method structure.
        for (m, worker) in [
            (numeric_sort(), "sort"),
            (assignment(), "reduce_rows"),
            (lu(), "decompose"),
            (neural_net(), "forward"),
        ] {
            let id = m.function_by_name(worker).unwrap();
            let f = m.function(id);
            assert!(f.params().contains(&Type::Ref), "{worker}");
            assert!(!f.is_instance(), "{worker} params are unknown-null");
        }
    }

    #[test]
    fn fp_emulation_has_virtual_accessors() {
        let m = fp_emulation();
        let soft_mul = m.function(m.function_by_name("soft_mul").unwrap());
        let vcalls = soft_mul
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| {
                matches!(
                    i,
                    njc_ir::Inst::Call {
                        target: njc_ir::CallTarget::Virtual { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(vcalls >= 5, "accessor-heavy kernel expected, got {vcalls}");
    }

    #[test]
    fn neural_net_calls_math_exp_in_worker() {
        let m = neural_net();
        let exp_id = m.function_by_name("Math_exp").unwrap();
        let forward = m.function(m.function_by_name("forward").unwrap());
        let calls_exp = forward.blocks().iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, njc_ir::Inst::Call { target: njc_ir::CallTarget::Static(f), .. } if *f == exp_id)
        });
        assert!(calls_exp);
    }

    #[test]
    fn fourier_is_object_free() {
        let m = fourier();
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(main
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .all(|i| !matches!(i, njc_ir::Inst::New { .. } | njc_ir::Inst::NewArray { .. })));
    }

    #[test]
    fn workers_exceed_inline_threshold() {
        // The hot workers must not get inlined back into main, or the
        // parameter-nullness structure would collapse.
        for (m, worker) in [(lu(), "decompose"), (assignment(), "reduce_rows")] {
            let f = m.function(m.function_by_name(worker).unwrap());
            assert!(f.num_insts() > 24, "{worker} has {}", f.num_insts());
        }
    }
}
