//! `java.lang.Math` stand-ins: intrinsic-shaped wrapper functions.
//!
//! Each wrapper's body is a single [`njc_ir::Inst::IntrinsicOp`] plus a
//! return — the shape `njc_opt::intrinsics` recognizes. On platforms with
//! the hardware instruction (IA32) calls to these functions are replaced by
//! the inline operation; elsewhere (PowerPC) they remain out-of-line calls
//! and act as optimization barriers, reproducing the paper's §5.4
//! `Math.exp` observation.

use njc_ir::{FuncBuilder, FunctionId, Inst, Intrinsic, Module, Type};

/// Handles to the math wrappers registered in a module.
#[derive(Clone, Copy, Debug)]
pub struct MathFns {
    /// `Math.exp`.
    pub exp: FunctionId,
    /// `Math.sqrt`.
    pub sqrt: FunctionId,
    /// `Math.sin`.
    pub sin: FunctionId,
    /// `Math.cos`.
    pub cos: FunctionId,
}

fn wrapper(module: &mut Module, name: &str, op: Intrinsic) -> FunctionId {
    let mut b = FuncBuilder::new(name, &[Type::Float], Type::Float);
    let x = b.param(0);
    let r = b.var(Type::Float);
    b.emit(Inst::IntrinsicOp {
        dst: r,
        intrinsic: op,
        src: x,
    });
    b.ret(Some(r));
    module.add_function(b.finish())
}

/// Registers the four wrappers used by the workloads.
pub fn add_math(module: &mut Module) -> MathFns {
    MathFns {
        exp: wrapper(module, "Math_exp", Intrinsic::Exp),
        sqrt: wrapper(module, "Math_sqrt", Intrinsic::Sqrt),
        sin: wrapper(module, "Math_sin", Intrinsic::Sin),
        cos: wrapper(module, "Math_cos", Intrinsic::Cos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_register_and_verify() {
        let mut m = Module::new("t");
        let fns = add_math(&mut m);
        assert_eq!(m.num_functions(), 4);
        njc_ir::verify_module(&m).unwrap();
        assert_eq!(m.function(fns.exp).name(), "Math_exp");
        assert_eq!(m.function(fns.cos).name(), "Math_cos");
    }
}
