//! The paper's figure examples as runnable micro-programs, plus a
//! null-seeded stress program for the correctness oracle.

use njc_ir::{CatchKind, Cond, ExceptionKind, FuncBuilder, Module, Op, Type};

use crate::jbm::{if_then, if_then_else, lcg_step};

/// Figure 1 / Figure 7: a small method with a branch that only touches
/// `this` on one path, called through a receiver that may be null.
///
/// `main` calls `func` on a fresh object with both positive and negative
/// arguments, then once more inside a try region with a null receiver —
/// the NullPointerException must be thrown even on the path that never
/// dereferences the receiver.
pub fn figure1() -> Module {
    let mut m = Module::new("figure1");
    let c = m.add_class("C", &[("field1", Type::Int)]);
    let field1 = m.field(c, "field1").unwrap();

    // int func(int s1) { if (s1 < 0) return s1; else return this.field1; }
    {
        let mut b = FuncBuilder::new("func", &[Type::Ref, Type::Int], Type::Int);
        b.instance_method();
        let this = b.param(0);
        let s1 = b.param(1);
        let zero = b.iconst(0);
        let neg = b.new_block();
        let pos = b.new_block();
        b.br_if(Cond::Lt, s1, zero, neg, pos);
        b.switch_to(neg);
        b.ret(Some(s1));
        b.switch_to(pos);
        let v = b.get_field(this, field1);
        b.ret(Some(v));
        m.add_method(c, "func", b.finish());
    }

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(c);
    let seven = b.iconst(7);
    b.put_field(obj, field1, seven);
    let acc = b.var(Type::Int);
    let zero = b.iconst(0);
    b.assign(acc, zero);
    // Hot loop: the inlined call's explicit check is what phase 2 earns
    // its keep on.
    let iters = b.iconst(200);
    b.for_loop(zero, iters, 1, |b, i| {
        let three = b.iconst(3);
        let low = b.binop(Op::And, i, three);
        let arg = b.sub(low, seven); // mixes negative arguments in
        let r1 = b
            .call_virtual(c, "func", obj, &[arg], Some(Type::Int))
            .unwrap();
        let r2 = b
            .call_virtual(c, "func", obj, &[i], Some(Type::Int))
            .unwrap();
        let t = b.add(r1, r2);
        b.binop_into(acc, Op::Add, acc, t);
    });
    // Null receiver inside a try region: the i < 0 path must still throw.
    let handler = b.new_block();
    let after = b.new_block();
    let code = b.var(Type::Int);
    let region = b.add_try_region(
        handler,
        CatchKind::Only(ExceptionKind::NullPointer),
        Some(code),
    );
    let entry_try = b.new_block();
    b.goto(entry_try);
    b.set_try_region(Some(region));
    b.switch_to(entry_try);
    let nul = b.null_ref();
    let minus = b.iconst(-5);
    let r = b
        .call_virtual(c, "func", nul, &[minus], Some(Type::Int))
        .unwrap();
    b.binop_into(acc, Op::Add, acc, r); // unreachable: the call throws
    b.goto(after);
    b.set_try_region(None);
    b.switch_to(handler);
    let thousand = b.iconst(1000);
    b.binop_into(acc, Op::Add, acc, thousand);
    b.goto(after);
    b.switch_to(after);
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

/// Figure 3: a partially redundant null check at a merge point.
pub fn figure3() -> Module {
    let mut m = Module::new("figure3");
    let c = m.add_class("A", &[("f", Type::Int), ("g", Type::Int)]);
    let ff = m.field(c, "f").unwrap();
    let fg = m.field(c, "g").unwrap();

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(c);
    let one = b.iconst(1);
    b.put_field(obj, ff, one);
    let two = b.iconst(2);
    b.put_field(obj, fg, two);
    let acc = b.var(Type::Int);
    let zero = b.iconst(0);
    b.assign(acc, zero);
    let iters = b.iconst(300);
    b.for_loop(zero, iters, 1, |b, i| {
        let m1 = b.iconst(1);
        let low = b.binop(Op::And, i, m1);
        // Left path touches a.f (its own check); right path does not.
        if_then(b, Cond::Eq, low, zero, |b| {
            let v = b.get_field(obj, ff);
            b.binop_into(acc, Op::Add, acc, v);
        });
        // Merge: both paths need a.g — the partially redundant check.
        let w = b.get_field(obj, fg);
        b.binop_into(acc, Op::Add, acc, w);
    });
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

/// Figure 4: a loop whose first object access lies inside the loop — the
/// loop invariant null check that forward-only analysis cannot hoist.
pub fn figure4() -> Module {
    let mut m = Module::new("figure4");
    let c = m.add_class("A", &[("count", Type::Int)]);
    let fcount = m.field(c, "count").unwrap();

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(c);
    let zero = b.iconst(0);
    let limit = b.iconst(400);
    // while (a.count < limit) a.count = a.count + 1  — reads and writes of
    // the same field in the loop.
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.goto(header);
    b.switch_to(header);
    let cur = b.get_field(obj, fcount);
    b.br_if(Cond::Lt, cur, limit, body, exit);
    b.switch_to(body);
    let v = b.get_field(obj, fcount);
    let one = b.iconst(1);
    let v1 = b.add(v, one);
    b.put_field(obj, fcount, v1);
    b.goto(header);
    b.switch_to(exit);
    let fin = b.get_field(obj, fcount);
    b.observe(fin);
    b.ret(Some(fin));
    let _ = zero;
    m.add_function(b.finish());
    m
}

/// Figure 6: `total += b[a.I++]` in a do-while — the null check of `b` is
/// blocked by the write to `a.I`, but on AIX the `arraylength b` read can
/// be speculated out of the loop. The loop lives in a worker whose
/// parameters have unknown nullness, as in the paper's intermediate code.
pub fn figure6() -> Module {
    let mut m = Module::new("figure6");
    let c = m.add_class("A", &[("i_field", Type::Int)]);
    let fi = m.field(c, "i_field").unwrap();

    // figure6_loop(a, arr, n): do { total += arr[a.I++]; } while (a.I < n)
    let worker = {
        let mut b = FuncBuilder::new(
            "figure6_loop",
            &[Type::Ref, Type::Ref, Type::Int],
            Type::Int,
        );
        let a = b.param(0);
        let arr = b.param(1);
        let n = b.param(2);
        let zero = b.iconst(0);
        let total = b.var(Type::Int);
        b.assign(total, zero);
        let body = b.new_block();
        let exit = b.new_block();
        b.goto(body);
        b.switch_to(body);
        {
            let t1 = b.get_field(a, fi);
            let one = b.iconst(1);
            let t2 = b.add(t1, one);
            b.put_field(a, fi, t2); // the memory-write barrier of Figure 6
            let v = b.array_load(arr, t1, Type::Int);
            b.binop_into(total, Op::Add, total, v);
            let cur = b.get_field(a, fi);
            b.br_if(Cond::Lt, cur, n, body, exit);
        }
        b.switch_to(exit);
        b.ret(Some(total));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let a = b.new_object(c);
    let zero = b.iconst(0);
    b.put_field(a, fi, zero);
    let n = b.iconst(256);
    let arr = b.new_array(Type::Int, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(999);
    b.assign(state, seed);
    b.for_loop(zero, n, 1, |b, k| {
        lcg_step(b, state);
        let m8 = b.iconst(0xff);
        let v = b.binop(Op::And, state, m8);
        b.array_store(arr, k, v, Type::Int);
    });
    let total = b
        .call_static(worker, &[a, arr, n], Some(Type::Int))
        .unwrap();
    b.observe(total);
    b.ret(Some(total));
    m.add_function(b.finish());
    m
}

/// Figure 5 (1): a field beyond the protected trap area ("BigOffset") —
/// its null check can never be implicit.
pub fn big_offset() -> Module {
    let mut m = Module::new("big_offset");
    let big = m.add_class_with_offsets(
        "Big",
        &[("near", Type::Int, 8), ("far", Type::Int, 1 << 20)],
    );
    let f_near = m.field(big, "near").unwrap();
    let f_far = m.field(big, "far").unwrap();

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(big);
    let zero = b.iconst(0);
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    let iters = b.iconst(150);
    b.for_loop(zero, iters, 1, |b, i| {
        b.put_field(obj, f_near, i);
        b.put_field(obj, f_far, i);
        let nv = b.get_field(obj, f_near);
        let fv = b.get_field(obj, f_far);
        let t = b.add(nv, fv);
        b.binop_into(acc, Op::Add, acc, t);
    });
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

/// A program whose NullPointerException paths actually run: references are
/// conditionally null, dereferences happen inside try regions, and the
/// handlers feed the checksum. The correctness oracle's worst case — any
/// mishandled check motion changes the observable outcome.
pub fn null_seeded() -> Module {
    let mut m = Module::new("null_seeded");
    let c = m.add_class("Cell", &[("v", Type::Int), ("next", Type::Ref)]);
    let fv = m.field(c, "v").unwrap();
    let fnext = m.field(c, "next").unwrap();

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    // Array of cells where every third slot is null.
    let n = b.iconst(40);
    let cells = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(123_123);
    b.assign(state, seed);
    b.for_loop(zero, n, 1, |b, i| {
        lcg_step(b, state);
        let three = b.iconst(3);
        let two = b.iconst(2);
        let low = b.binop(Op::And, i, three);
        if_then(b, Cond::Ne, low, two, |b| {
            let cell = b.new_object(c);
            b.put_field(cell, fv, i);
            b.array_store(cells, i, cell, Type::Ref);
        });
    });
    // Link non-null cells into a chain (next of cell i -> cell i+1, which
    // may be null).
    let n1 = b.add_i(n, -1);
    b.for_loop(zero, n1, 1, |b, i| {
        let cur = b.array_load(cells, i, Type::Ref);
        let skip = b.new_block();
        let link = b.new_block();
        b.br_ifnull(cur, skip, link);
        b.switch_to(link);
        let one = b.iconst(1);
        let i1 = b.add(i, one);
        let nxt = b.array_load(cells, i1, Type::Ref);
        b.put_field(cur, fnext, nxt);
        b.goto(skip);
        b.switch_to(skip);
    });

    // Sweep: dereference every slot inside a try region; handlers count
    // the NPEs. Both the exception count and the value sum are observable.
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    let npes = b.var(Type::Int);
    b.assign(npes, zero);
    let rounds = b.iconst(25);
    b.for_loop(zero, rounds, 1, |b, _r| {
        b.for_loop(zero, n, 1, |b, i| {
            let handler = b.new_block();
            let after = b.new_block();
            let tryb = b.new_block();
            let code = b.var(Type::Int);
            let region = b.add_try_region(
                handler,
                CatchKind::Only(ExceptionKind::NullPointer),
                Some(code),
            );
            b.goto(tryb);
            b.set_try_region(Some(region));
            b.switch_to(tryb);
            {
                let cell = b.array_load(cells, i, Type::Ref);
                let v = b.get_field(cell, fv); // throws on null slots
                b.binop_into(acc, Op::Add, acc, v);
                // Follow the chain one hop: next may be null too.
                let nxt = b.get_field_typed(cell, fnext, Type::Ref);
                let v2 = b.get_field(nxt, fv); // may throw again
                b.binop_into(acc, Op::Add, acc, v2);
            }
            b.goto(after);
            b.set_try_region(None);
            b.switch_to(handler);
            let one = b.iconst(1);
            b.binop_into(npes, Op::Add, npes, one);
            b.goto(after);
            b.switch_to(after);
        });
    });
    let sixteen = b.iconst(16);
    let hi = b.binop(Op::Shl, npes, sixteen);
    let out = b.add(acc, hi);
    b.observe(acc);
    b.observe(npes);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

/// The recovery corpus: a null-seeded program whose *per-strategy*
/// observables all differ. Every iteration derefs a conditionally-null
/// node inside an NPE-catching try region three ways — a field read
/// (where `NullObject` substitutes a typed zero), a field write (where
/// `SkipEffect` drops the store, visible to the next round's reads),
/// and a one-hop chain walk (where a suppressed NPE changes the handler
/// count). Under `Abort`/`Strict` the handlers run and the checksum
/// matches the explicit-check build; under the lossy strategies the
/// result, trace, and heap digest each move in a distinct way — exactly
/// the surface the difftest `+recover:<strategy>` columns classify.
pub fn recovery_sweep() -> Module {
    let mut m = Module::new("recovery_sweep");
    let c = m.add_class("Node", &[("v", Type::Int), ("next", Type::Ref)]);
    let fv = m.field(c, "v").unwrap();
    let fnext = m.field(c, "next").unwrap();

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n = b.iconst(24);
    let nodes = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(77_777);
    b.assign(state, seed);
    // Seed: slots where (i & 3) == 1 stay null, the rest get nodes
    // linked to their successor slot (which may be null).
    b.for_loop(zero, n, 1, |b, i| {
        lcg_step(b, state);
        let three = b.iconst(3);
        let one = b.iconst(1);
        let low = b.binop(Op::And, i, three);
        if_then(b, Cond::Ne, low, one, |b| {
            let node = b.new_object(c);
            b.put_field(node, fv, i);
            b.array_store(nodes, i, node, Type::Ref);
        });
    });
    let n1 = b.add_i(n, -1);
    b.for_loop(zero, n1, 1, |b, i| {
        let cur = b.array_load(nodes, i, Type::Ref);
        let skip = b.new_block();
        let link = b.new_block();
        b.br_ifnull(cur, skip, link);
        b.switch_to(link);
        let one = b.iconst(1);
        let i1 = b.add(i, one);
        let nxt = b.array_load(nodes, i1, Type::Ref);
        b.put_field(cur, fnext, nxt);
        b.goto(skip);
        b.switch_to(skip);
    });

    // Sweep rounds: read, increment-write, chain hop — each null arrival
    // caught and counted. The write makes rounds interact: a skipped
    // store changes what the next round reads.
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    let npes = b.var(Type::Int);
    b.assign(npes, zero);
    let rounds = b.iconst(12);
    b.for_loop(zero, rounds, 1, |b, _r| {
        b.for_loop(zero, n, 1, |b, i| {
            let handler = b.new_block();
            let after = b.new_block();
            let tryb = b.new_block();
            let region =
                b.add_try_region(handler, CatchKind::Only(ExceptionKind::NullPointer), None);
            b.goto(tryb);
            b.set_try_region(Some(region));
            b.switch_to(tryb);
            {
                let node = b.array_load(nodes, i, Type::Ref);
                let v = b.get_field(node, fv); // null slots throw here
                b.binop_into(acc, Op::Add, acc, v);
                let one = b.iconst(1);
                let v1 = b.add(v, one);
                b.put_field(node, fv, v1); // the store the skip drops
                let nxt = b.get_field_typed(node, fnext, Type::Ref);
                let v2 = b.get_field(nxt, fv); // chain hop may throw too
                b.binop_into(acc, Op::Add, acc, v2);
            }
            b.goto(after);
            b.set_try_region(None);
            b.switch_to(handler);
            let one = b.iconst(1);
            b.binop_into(npes, Op::Add, npes, one);
            b.goto(after);
            b.switch_to(after);
        });
    });
    let sixteen = b.iconst(16);
    let hi = b.binop(Op::Shl, npes, sixteen);
    let out = b.add(acc, hi);
    b.observe(acc);
    b.observe(npes);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

/// The re-load congruence shape behind §4.1.2's fact loss: the
/// idiomatic `o.g != null && o.g.x` chained read loads the field twice,
/// and the second read's null check is provably dead only when the
/// forward analysis tracks facts by value number rather than by
/// variable name. The chain alternates null and non-null links so the
/// guard stays live at runtime, and the null store keeps the
/// interprocedural field fact from claiming the kill first.
pub fn reload_congruence() -> Module {
    let mut m = Module::new("reload_congruence");
    let d = m.add_class("D", &[("x", Type::Int)]);
    let dx = m.field(d, "x").unwrap();
    let c = m.add_class("C", &[("g", Type::Ref)]);
    let cg = m.field(c, "g").unwrap();

    // int probe(C p) { if (p.g != null) return p.g.x; return 0; }
    let probe = {
        let mut b = FuncBuilder::new("probe", &[Type::Ref], Type::Int);
        let p = b.param(0);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        let chain = b.new_block();
        let join = b.new_block();
        let peek = b.get_field_typed(p, cg, Type::Ref);
        b.br_ifnull(peek, join, chain);
        b.switch_to(chain);
        let again = b.get_field_typed(p, cg, Type::Ref);
        let v = b.get_field(again, dx); // check dead only via congruence
        b.binop_into(acc, Op::Add, acc, v);
        b.goto(join);
        b.switch_to(join);
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n = b.iconst(50);
    let acc = b.var(Type::Int);
    b.assign(acc, zero);
    b.for_loop(zero, n, 1, |b, i| {
        let o = b.new_object(c);
        let one = b.iconst(1);
        let odd = b.binop(Op::And, i, one);
        if_then_else(
            b,
            Cond::Eq,
            odd,
            zero,
            |b| {
                let inner = b.new_object(d);
                b.put_field(inner, dx, i);
                b.put_field(o, cg, inner);
            },
            |b| {
                // Odd iterations store null: the guard is live and the
                // field is not always-non-null interprocedurally.
                let nul = b.null_ref();
                b.put_field(o, cg, nul);
            },
        );
        let r = b.call_static(probe, &[o], Some(Type::Int)).unwrap();
        b.binop_into(acc, Op::Add, acc, r);
    });
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

/// All micro workloads with their names.
pub fn all_micro() -> Vec<(&'static str, Module)> {
    vec![
        ("figure1", figure1()),
        ("figure3", figure3()),
        ("figure4", figure4()),
        ("figure6", figure6()),
        ("big_offset", big_offset()),
        ("null_seeded", null_seeded()),
        ("recovery_sweep", recovery_sweep()),
        ("reload_congruence", reload_congruence()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::verify_module;

    #[test]
    fn every_micro_verifies() {
        for (name, m) in all_micro() {
            verify_module(&m).unwrap_or_else(|e| {
                panic!(
                    "{name}: {}",
                    e.first().map(|x| x.to_string()).unwrap_or_default()
                )
            });
        }
    }

    #[test]
    fn big_offset_field_is_beyond_any_page() {
        let m = big_offset();
        let c = m.class_by_name("Big").unwrap();
        let far = m.field(c, "far").unwrap();
        assert!(m.field_offset(far) >= 65536);
    }

    #[test]
    fn null_seeded_has_npe_handlers() {
        let m = null_seeded();
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(!main.try_regions().is_empty());
    }

    #[test]
    fn recovery_sweep_has_npe_handlers_and_a_store_in_the_try() {
        let m = recovery_sweep();
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(!main.try_regions().is_empty());
        let stores = main
            .blocks()
            .iter()
            .flat_map(|blk| &blk.insts)
            .filter(|i| matches!(i, njc_ir::Inst::PutField { .. }))
            .count();
        assert!(stores >= 3, "seed, link, and sweep stores: {stores}");
    }
}
