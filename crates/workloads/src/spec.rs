//! The seven SPECjvm98 programs (paper Table 2).
//!
//! As in the original suite, the hot code lives in worker methods whose
//! array/object parameters have unknown nullness. Each kernel reproduces
//! the documented workload character:
//!
//! * **mtrt** — ray tracing: vector objects accessed through *many small
//!   accessor methods called frequently* — the explicit-null-check factory
//!   that makes phase 2 particularly effective after inlining (§5.1);
//! * **jess** — expert system: linked fact chains, branchy matching;
//! * **compress** — LZW-style byte-array compression loops;
//! * **db** — in-memory database: object records, field comparisons,
//!   scan-based lookups;
//! * **mpegaudio** — float filter banks (windowed dot products);
//! * **jack** — parser/tokenizer: branch-dense scanning with a try region
//!   for error handling;
//! * **javac** — compiler: a small AST of linked node objects walked
//!   repeatedly with an explicit work stack.

use njc_ir::{Cond, FuncBuilder, Module, Op, Type};

use crate::jbm::{if_then, if_then_else, lcg_fill, lcg_step};
use crate::math::add_math;

// ---------------------------------------------------------------------------
// mtrt
// ---------------------------------------------------------------------------

/// mtrt: vectors as objects, small accessors, sphere intersection loops.
pub fn mtrt() -> Module {
    let mut m = Module::new("mtrt");
    let vec3 = m.add_class(
        "Vec3",
        &[("x", Type::Float), ("y", Type::Float), ("z", Type::Float)],
    );
    let fx = m.field(vec3, "x").unwrap();
    let fy = m.field(vec3, "y").unwrap();
    let fz = m.field(vec3, "z").unwrap();

    // Small accessor methods — called frequently, inlined by the JIT.
    for (name, field) in [("getX", fx), ("getY", fy), ("getZ", fz)] {
        let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Float);
        b.instance_method();
        let this = b.param(0);
        let v = b.get_field_typed(this, field, Type::Float);
        b.ret(Some(v));
        m.add_method(vec3, name, b.finish());
    }
    {
        let mut b = FuncBuilder::new("dot", &[Type::Ref, Type::Ref], Type::Float);
        b.instance_method();
        let this = b.param(0);
        let other = b.param(1);
        let ax = b.get_field_typed(this, fx, Type::Float);
        let bx = b.get_field_typed(other, fx, Type::Float);
        let ay = b.get_field_typed(this, fy, Type::Float);
        let by = b.get_field_typed(other, fy, Type::Float);
        let az = b.get_field_typed(this, fz, Type::Float);
        let bz = b.get_field_typed(other, fz, Type::Float);
        let px = b.mul(ax, bx);
        let py = b.mul(ay, by);
        let pz = b.mul(az, bz);
        let s1 = b.add(px, py);
        let s = b.add(s1, pz);
        b.ret(Some(s));
        m.add_method(vec3, "dot", b.finish());
    }

    // trace(centers, dir, nrays, seed0) -> hits + scaled accumulator
    let trace = {
        let mut b = FuncBuilder::new(
            "trace",
            &[Type::Ref, Type::Ref, Type::Int, Type::Int, Type::Int],
            Type::Int,
        );
        let centers = b.param(0);
        let dir = b.param(1);
        let nrays = b.param(2);
        let seed0 = b.param(3);
        let nspheres = b.param(4);
        let zero = b.iconst(0);
        let state = b.var(Type::Int);
        b.assign(state, seed0);
        let hits = b.var(Type::Int);
        b.assign(hits, zero);
        let accf = b.var(Type::Float);
        let zf = b.fconst(0.0);
        b.assign(accf, zf);
        b.for_loop(zero, nrays, 1, |b, _r| {
            lcg_step(b, state);
            let m6 = b.iconst(0x3f);
            let di = b.binop(Op::And, state, m6);
            let df = b.convert(di, Type::Float);
            let inv = b.fconst(1.0 / 64.0);
            let dx = b.mul(df, inv);
            b.put_field(dir, fx, dx);
            let c2 = b.fconst(0.7);
            b.put_field(dir, fy, c2);
            let c3 = b.fconst(0.2);
            b.put_field(dir, fz, c3);
            b.for_loop(zero, nspheres, 1, |b, s| {
                let c = b.array_load(centers, s, Type::Ref);
                let d = b
                    .call_virtual(vec3, "dot", c, &[dir], Some(Type::Float))
                    .unwrap();
                let cx = b
                    .call_virtual(vec3, "getX", c, &[], Some(Type::Float))
                    .unwrap();
                let thresh = b.fconst(2.0);
                let cmp = b.fcmp(Cond::Gt, d, thresh);
                if_then(b, Cond::Ne, cmp, zero, |b| {
                    let one = b.iconst(1);
                    b.binop_into(hits, Op::Add, hits, one);
                    b.binop_into(accf, Op::Add, accf, cx);
                    // Hit path reads the vector directly (§3.3.2: mtrt
                    // touches its small objects from many places).
                    let cy = b.get_field_typed(c, fy, Type::Float);
                    b.binop_into(accf, Op::Add, accf, cy);
                });
                // Unconditional read after the merge: its check is partially
                // redundant (the hit path already checked `c`), so phase 1
                // hoists one check to the sphere-loop header — a position
                // with no adjacent access, convertible only by phase 2's
                // forward motion (the mtrt effect the paper isolates).
                let cz = b.get_field_typed(c, fz, Type::Float);
                b.binop_into(accf, Op::Add, accf, cz);
            });
        });
        let scale = b.fconst(100.0);
        let sa = b.mul(accf, scale);
        let ai = b.convert(sa, Type::Int);
        let out = b.add(hits, ai);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let nspheres = b.iconst(12);
    let centers = b.new_array(Type::Ref, nspheres);
    let state = b.var(Type::Int);
    let seed = b.iconst(299_792);
    b.assign(state, seed);
    b.for_loop(zero, nspheres, 1, |b, i| {
        let c = b.new_object(vec3);
        lcg_step(b, state);
        let m8 = b.iconst(0xff);
        let vi = b.binop(Op::And, state, m8);
        let vf = b.convert(vi, Type::Float);
        let inv = b.fconst(1.0 / 64.0);
        let x = b.mul(vf, inv);
        b.put_field(c, fx, x);
        let half = b.fconst(0.5);
        let y = b.mul(x, half);
        b.put_field(c, fy, y);
        let quarter = b.fconst(0.25);
        let z = b.mul(x, quarter);
        b.put_field(c, fz, z);
        b.array_store(centers, i, c, Type::Ref);
    });
    let dir = b.new_object(vec3);
    let nrays = b.iconst(900);
    let seed2 = b.iconst(299_793);
    let out = b
        .call_static(
            trace,
            &[centers, dir, nrays, seed2, nspheres],
            Some(Type::Int),
        )
        .unwrap();
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// jess
// ---------------------------------------------------------------------------

/// jess: linked fact chains and branchy rule matching in a worker.
pub fn jess() -> Module {
    let mut m = Module::new("jess");
    let fact = m.add_class(
        "Fact",
        &[
            ("kind", Type::Int),
            ("value", Type::Int),
            ("next", Type::Ref),
        ],
    );
    let f_kind = m.field(fact, "kind").unwrap();
    let f_value = m.field(fact, "value").unwrap();
    let f_next = m.field(fact, "next").unwrap();

    // run_rounds(head, rounds) -> fired | failures<<16
    let run_rounds = {
        let mut b = FuncBuilder::new("run_rounds", &[Type::Ref, Type::Int], Type::Int);
        let head = b.param(0);
        let rounds = b.param(1);
        let zero = b.iconst(0);
        let fired = b.var(Type::Int);
        b.assign(fired, zero);
        let failures = b.var(Type::Int);
        b.assign(failures, zero);
        b.for_loop(zero, rounds, 1, |b, round| {
            let cur = b.var(Type::Ref);
            b.assign(cur, head);
            let walk = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.goto(walk);
            b.switch_to(walk);
            b.br_ifnull(cur, done, body);
            b.switch_to(body);
            {
                let k = b.get_field(cur, f_kind);
                let m3 = b.iconst(7);
                let want = b.binop(Op::And, round, m3);
                if_then(b, Cond::Eq, k, want, |b| {
                    let v = b.get_field(cur, f_value);
                    let lim = b.iconst(0x300);
                    if_then_else(
                        b,
                        Cond::Lt,
                        v,
                        lim,
                        |b| {
                            let one = b.iconst(1);
                            b.binop_into(fired, Op::Add, fired, one);
                            let v2 = b.add(v, one);
                            b.put_field(cur, f_value, v2);
                        },
                        |b| {
                            let one = b.iconst(1);
                            b.binop_into(failures, Op::Add, failures, one);
                        },
                    );
                });
                // Chained-pattern rule: peek at the successor fact the
                // way jess rules test `cur.next != null &&
                // cur.next.value ...` — the field is read twice with no
                // intervening store, so the second read's null check is
                // dead only under re-load congruence.
                let peek = b.get_field_typed(cur, f_next, Type::Ref);
                let chain = b.new_block();
                let advance = b.new_block();
                b.br_ifnull(peek, advance, chain);
                b.switch_to(chain);
                let again = b.get_field_typed(cur, f_next, Type::Ref);
                let nv = b.get_field(again, f_value);
                let one = b.iconst(1);
                let bit = b.binop(Op::And, nv, one);
                b.binop_into(fired, Op::Add, fired, bit);
                b.goto(advance);
                b.switch_to(advance);
                let nxt = b.get_field_typed(cur, f_next, Type::Ref);
                b.assign(cur, nxt);
            }
            b.goto(walk);
            b.switch_to(done);
        });
        let sixteen = b.iconst(16);
        let fh = b.binop(Op::Shl, failures, sixteen);
        let out = b.add(fired, fh);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let nfacts = b.iconst(60);
    let head = b.var(Type::Ref);
    let nul = b.null_ref();
    b.assign(head, nul);
    let state = b.var(Type::Int);
    let seed = b.iconst(314_000);
    b.assign(state, seed);
    b.for_loop(zero, nfacts, 1, |b, _i| {
        let f = b.new_object(fact);
        lcg_step(b, state);
        let m3 = b.iconst(7);
        let k = b.binop(Op::And, state, m3);
        b.put_field(f, f_kind, k);
        let mv = b.iconst(0x3ff);
        let v = b.binop(Op::And, state, mv);
        b.put_field(f, f_value, v);
        b.put_field(f, f_next, head);
        b.assign(head, f);
    });
    let rounds = b.iconst(40);
    let out = b
        .call_static(run_rounds, &[head, rounds], Some(Type::Int))
        .unwrap();
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// compress
// ---------------------------------------------------------------------------

/// compress: LZW-flavor hashing compression in worker methods.
pub fn compress() -> Module {
    let mut m = Module::new("compress");

    // compress(input, htab, codes) -> ncodes
    let comp = {
        let mut b = FuncBuilder::new(
            "compress",
            &[Type::Ref, Type::Ref, Type::Ref, Type::Int],
            Type::Int,
        );
        let input = b.param(0);
        let htab = b.param(1);
        let codes = b.param(2);
        let n = b.param(3);
        let zero = b.iconst(0);
        let ncodes = b.var(Type::Int);
        b.assign(ncodes, zero);
        let prev = b.var(Type::Int);
        b.assign(prev, zero);
        b.for_loop(zero, n, 1, |b, i| {
            let c = b.array_load(input, i, Type::Int);
            let four = b.iconst(4);
            let sh = b.binop(Op::Shl, prev, four);
            let x = b.binop(Op::Xor, sh, c);
            let hm = b.iconst(511);
            let h = b.binop(Op::And, x, hm);
            let entry = b.array_load(htab, h, Type::Int);
            let key = b.add(c, sh);
            if_then_else(
                b,
                Cond::Eq,
                entry,
                key,
                |b| {
                    b.assign(prev, key);
                },
                |b| {
                    b.array_store(htab, h, key, Type::Int);
                    b.array_store(codes, ncodes, prev, Type::Int);
                    let one = b.iconst(1);
                    b.binop_into(ncodes, Op::Add, ncodes, one);
                    b.assign(prev, c);
                },
            );
        });
        b.ret(Some(ncodes));
        m.add_function(b.finish())
    };

    // fold(codes, ncodes) -> rolling checksum
    let fold = {
        let mut b = FuncBuilder::new("fold", &[Type::Ref, Type::Int], Type::Int);
        let codes = b.param(0);
        let ncodes = b.param(1);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, ncodes, 1, |b, i| {
            let v = b.array_load(codes, i, Type::Int);
            let x = b.binop(Op::Xor, acc, v);
            let three = b.iconst(3);
            let r = b.binop(Op::Shl, x, three);
            let mask = b.iconst(0x0fff_ffff);
            let r2 = b.binop(Op::And, r, mask);
            let fold = b.binop(Op::Xor, r2, v);
            b.assign(acc, fold);
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(4000);
    let input = b.new_array(Type::Int, n);
    lcg_fill(&mut b, input, n, 112_358, 0xff);
    let hsize = b.iconst(512);
    let htab = b.new_array(Type::Int, hsize);
    let codes = b.new_array(Type::Int, n);
    let ncodes = b
        .call_static(comp, &[input, htab, codes, n], Some(Type::Int))
        .unwrap();
    let acc = b
        .call_static(fold, &[codes, ncodes], Some(Type::Int))
        .unwrap();
    let t = b.add(acc, ncodes);
    b.observe(ncodes);
    b.observe(t);
    b.ret(Some(t));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// db
// ---------------------------------------------------------------------------

/// db: record objects, scan-based lookups, field comparisons in a worker.
pub fn db() -> Module {
    let mut m = Module::new("db");
    let rec = m.add_class(
        "Record",
        &[
            ("id", Type::Int),
            ("balance", Type::Int),
            ("touched", Type::Int),
        ],
    );
    let f_id = m.field(rec, "id").unwrap();
    let f_bal = m.field(rec, "balance").unwrap();
    let f_touch = m.field(rec, "touched").unwrap();

    // run_queries(table, queries, seed0) -> total
    let run_queries = {
        let mut b = FuncBuilder::new(
            "run_queries",
            &[Type::Ref, Type::Int, Type::Int, Type::Int],
            Type::Int,
        );
        let table = b.param(0);
        let queries = b.param(1);
        let seed0 = b.param(2);
        let n = b.param(3);
        let zero = b.iconst(0);
        let state = b.var(Type::Int);
        b.assign(state, seed0);
        let total = b.var(Type::Int);
        b.assign(total, zero);
        b.for_loop(zero, queries, 1, |b, q| {
            lcg_step(b, state);
            let key = b.var(Type::Int);
            let km = b.iconst(127);
            let k0 = b.binop(Op::And, state, km);
            b.assign(key, k0);
            b.for_loop(zero, n, 1, |b, i| {
                let r = b.array_load(table, i, Type::Ref);
                let id = b.get_field(r, f_id);
                if_then(b, Cond::Eq, id, key, |b| {
                    let bal = b.get_field(r, f_bal);
                    let one = b.iconst(1);
                    let nb = b.add(bal, one);
                    b.put_field(r, f_bal, nb);
                    let t = b.get_field(r, f_touch);
                    let t2 = b.add(t, one);
                    b.put_field(r, f_touch, t2);
                });
            });
            let m63 = b.iconst(63);
            let low = b.binop(Op::And, q, m63);
            if_then(b, Cond::Eq, low, zero, |b| {
                b.for_loop(zero, n, 1, |b, i| {
                    let r = b.array_load(table, i, Type::Ref);
                    let bal = b.get_field(r, f_bal);
                    b.binop_into(total, Op::Add, total, bal);
                    let big = b.iconst(0x0fff_ffff);
                    b.binop_into(total, Op::And, total, big);
                });
            });
        });
        b.ret(Some(total));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let n = b.iconst(150);
    let table = b.new_array(Type::Ref, n);
    let state = b.var(Type::Int);
    let seed = b.iconst(161_616);
    b.assign(state, seed);
    b.for_loop(zero, n, 1, |b, i| {
        let r = b.new_object(rec);
        b.put_field(r, f_id, i);
        lcg_step(b, state);
        let mask = b.iconst(0xffff);
        let bal = b.binop(Op::And, state, mask);
        b.put_field(r, f_bal, bal);
        b.array_store(table, i, r, Type::Ref);
    });
    let queries = b.iconst(300);
    let seed2 = b.iconst(161_617);
    let total = b
        .call_static(run_queries, &[table, queries, seed2, n], Some(Type::Int))
        .unwrap();
    b.observe(total);
    b.ret(Some(total));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// mpegaudio
// ---------------------------------------------------------------------------

/// mpegaudio: windowed float dot products (filter bank) in a worker.
pub fn mpegaudio() -> Module {
    let mut m = Module::new("mpegaudio");
    let math = add_math(&mut m);

    // filter(window, samples, frames) -> scaled sum
    let filter = {
        let mut b = FuncBuilder::new(
            "filter",
            &[Type::Ref, Type::Ref, Type::Int, Type::Int],
            Type::Int,
        );
        let window = b.param(0);
        let samples = b.param(1);
        let frames = b.param(2);
        let nwin = b.param(3);
        let zero = b.iconst(0);
        let acc = b.var(Type::Float);
        let zf = b.fconst(0.0);
        b.assign(acc, zf);
        b.for_loop(zero, frames, 1, |b, f| {
            let sum = b.var(Type::Float);
            let z2 = b.fconst(0.0);
            b.assign(sum, z2);
            let thirty_two = b.iconst(32);
            let base = b.mul(f, thirty_two);
            b.for_loop(zero, nwin, 1, |b, k| {
                let w = b.array_load(window, k, Type::Float);
                let idx = b.add(base, k);
                let s = b.array_load(samples, idx, Type::Float);
                let p = b.mul(w, s);
                b.binop_into(sum, Op::Add, sum, p);
            });
            b.binop_into(acc, Op::Add, acc, sum);
        });
        let scale = b.fconst(1000.0);
        let sa = b.mul(acc, scale);
        let out = b.convert(sa, Type::Int);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let nwin = b.iconst(32);
    let window = b.new_array(Type::Float, nwin);
    b.for_loop(zero, nwin, 1, |b, i| {
        let fi = b.convert(i, Type::Float);
        let c = b.fconst(0.196349);
        let x = b.mul(fi, c);
        let s = b.call_static(math.sin, &[x], Some(Type::Float)).unwrap();
        b.array_store(window, i, s, Type::Float);
    });
    let nsamp = b.iconst(2048);
    let samples = b.new_array(Type::Float, nsamp);
    let state = b.var(Type::Int);
    let seed = b.iconst(441_000);
    b.assign(state, seed);
    b.for_loop(zero, nsamp, 1, |b, i| {
        lcg_step(b, state);
        let m8 = b.iconst(0xff);
        let vi = b.binop(Op::And, state, m8);
        let vf = b.convert(vi, Type::Float);
        let sc = b.fconst(1.0 / 128.0);
        let one = b.fconst(1.0);
        let v0 = b.mul(vf, sc);
        let v = b.sub(v0, one);
        b.array_store(samples, i, v, Type::Float);
        let _ = i;
    });
    let frames = b.iconst(60);
    let out = b
        .call_static(filter, &[window, samples, frames, nwin], Some(Type::Int))
        .unwrap();
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// jack
// ---------------------------------------------------------------------------

/// jack: tokenizer with a try region around the scan loop.
pub fn jack() -> Module {
    let mut m = Module::new("jack");

    // scan(text) -> tokens | errors<<8 | idents<<16
    let scan = {
        let mut b = FuncBuilder::new("scan", &[Type::Ref, Type::Int], Type::Int);
        let text = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let tokens = b.var(Type::Int);
        b.assign(tokens, zero);
        let errors = b.var(Type::Int);
        b.assign(errors, zero);
        let idents = b.var(Type::Int);
        b.assign(idents, zero);

        let handler = b.new_block();
        let after = b.new_block();
        let code = b.var(Type::Int);
        let region = b.add_try_region(handler, njc_ir::CatchKind::Any, Some(code));

        let scan_loop = b.new_block();
        let pos = b.var(Type::Int);
        b.assign(pos, zero);
        b.goto(scan_loop);

        b.set_try_region(Some(region));
        b.switch_to(scan_loop);
        {
            let body = b.new_block();
            b.br_if(Cond::Ge, pos, n, after, body);
            b.switch_to(body);
            let c = b.array_load(text, pos, Type::Int);
            let one = b.iconst(1);
            b.binop_into(pos, Op::Add, pos, one);
            let letter = b.iconst(65);
            let bang = b.iconst(33);
            if_then_else(
                &mut b,
                Cond::Ge,
                c,
                letter,
                |b| {
                    b.binop_into(idents, Op::Add, idents, one);
                    let skip = b.new_block();
                    let done = b.new_block();
                    b.goto(skip);
                    b.switch_to(skip);
                    {
                        let cont = b.new_block();
                        b.br_if(Cond::Ge, pos, n, done, cont);
                        b.switch_to(cont);
                        let c2 = b.array_load(text, pos, Type::Int);
                        let more = b.new_block();
                        b.br_if(Cond::Ge, c2, letter, more, done);
                        b.switch_to(more);
                        b.binop_into(pos, Op::Add, pos, one);
                        b.goto(skip);
                    }
                    b.switch_to(done);
                },
                |b| {
                    if_then_else(
                        b,
                        Cond::Eq,
                        c,
                        bang,
                        |b| {
                            b.binop_into(errors, Op::Add, errors, one);
                        },
                        |b| {
                            b.binop_into(tokens, Op::Add, tokens, one);
                        },
                    );
                },
            );
            b.goto(scan_loop);
        }
        b.set_try_region(None);
        b.switch_to(handler);
        {
            let one = b.iconst(1);
            b.binop_into(errors, Op::Add, errors, one);
            b.goto(after);
        }
        b.switch_to(after);
        let eight = b.iconst(8);
        let e = b.binop(Op::Shl, errors, eight);
        let t0 = b.add(tokens, e);
        let sixteen = b.iconst(16);
        let id = b.binop(Op::Shl, idents, sixteen);
        let out = b.add(t0, id);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let n = b.iconst(2000);
    let text = b.new_array(Type::Int, n);
    lcg_fill(&mut b, text, n, 777_777, 0x7f);
    let out = b.call_static(scan, &[text, n], Some(Type::Int)).unwrap();
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

// ---------------------------------------------------------------------------
// javac
// ---------------------------------------------------------------------------

/// javac: build a small expression AST (linked node objects) and evaluate
/// it repeatedly with an explicit work stack, in a worker.
pub fn javac() -> Module {
    let mut m = Module::new("javac");
    let node = m.add_class(
        "Node",
        &[
            ("op", Type::Int),
            ("value", Type::Int),
            ("left", Type::Ref),
            ("right", Type::Ref),
        ],
    );
    let f_op = m.field(node, "op").unwrap();
    let f_val = m.field(node, "value").unwrap();
    let f_left = m.field(node, "left").unwrap();
    let f_right = m.field(node, "right").unwrap();

    // eval(root, stack, passes) -> folded sum
    let eval = {
        let mut b = FuncBuilder::new("eval", &[Type::Ref, Type::Ref, Type::Int], Type::Int);
        let root = b.param(0);
        let stack = b.param(1);
        let passes = b.param(2);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, passes, 1, |b, p| {
            let sp = b.var(Type::Int);
            b.assign(sp, zero);
            b.array_store(stack, sp, root, Type::Ref);
            let one = b.iconst(1);
            b.binop_into(sp, Op::Add, sp, one);
            let walk = b.new_block();
            let body = b.new_block();
            let done = b.new_block();
            b.goto(walk);
            b.switch_to(walk);
            b.br_if(Cond::Gt, sp, zero, body, done);
            b.switch_to(body);
            {
                b.binop_into(sp, Op::Sub, sp, one);
                let nd = b.array_load(stack, sp, Type::Ref);
                let v = b.get_field(nd, f_val);
                let op = b.get_field(nd, f_op);
                let t = b.add(v, op);
                b.binop_into(acc, Op::Add, acc, t);
                let mask = b.iconst(0x0fff_ffff);
                b.binop_into(acc, Op::And, acc, mask);
                let l = b.get_field_typed(nd, f_left, Type::Ref);
                let push_l = b.new_block();
                let try_r = b.new_block();
                b.br_ifnull(l, try_r, push_l);
                b.switch_to(push_l);
                b.array_store(stack, sp, l, Type::Ref);
                b.binop_into(sp, Op::Add, sp, one);
                b.goto(try_r);
                b.switch_to(try_r);
                let r = b.get_field_typed(nd, f_right, Type::Ref);
                let push_r = b.new_block();
                let cont = b.new_block();
                b.br_ifnull(r, cont, push_r);
                b.switch_to(push_r);
                b.array_store(stack, sp, r, Type::Ref);
                b.binop_into(sp, Op::Add, sp, one);
                b.goto(cont);
                b.switch_to(cont);
            }
            b.goto(walk);
            b.switch_to(done);
            let _ = p;
        });
        b.ret(Some(acc));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let zero = b.iconst(0);
    let nn = b.iconst(127);
    let nodes = b.new_array(Type::Ref, nn);
    let state = b.var(Type::Int);
    let seed = b.iconst(101_010);
    b.assign(state, seed);
    b.for_loop(zero, nn, 1, |b, i| {
        let nd = b.new_object(node);
        lcg_step(b, state);
        let two = b.iconst(2);
        let opm = b.binop(Op::And, state, two);
        b.put_field(nd, f_op, opm);
        let vm = b.iconst(0xff);
        let v = b.binop(Op::And, state, vm);
        b.put_field(nd, f_val, v);
        b.array_store(nodes, i, nd, Type::Ref);
    });
    let inner = b.iconst(63);
    b.for_loop(zero, inner, 1, |b, i| {
        let nd = b.array_load(nodes, i, Type::Ref);
        let one = b.iconst(1);
        let two = b.iconst(2);
        let li = b.mul(i, two);
        let li = b.add(li, one);
        let ri = b.add(li, one);
        let l = b.array_load(nodes, li, Type::Ref);
        let r = b.array_load(nodes, ri, Type::Ref);
        b.put_field(nd, f_left, l);
        b.put_field(nd, f_right, r);
    });
    let passes = b.iconst(25);
    let stack = b.new_array(Type::Ref, nn);
    let root = b.array_load(nodes, zero, Type::Ref);
    let acc = b
        .call_static(eval, &[root, stack, passes], Some(Type::Int))
        .unwrap();
    b.observe(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::verify_module;

    #[test]
    fn every_program_verifies() {
        for (name, m) in [
            ("mtrt", mtrt()),
            ("jess", jess()),
            ("compress", compress()),
            ("db", db()),
            ("mpegaudio", mpegaudio()),
            ("jack", jack()),
            ("javac", javac()),
        ] {
            verify_module(&m).unwrap_or_else(|e| {
                panic!(
                    "{name}: {}",
                    e.first().map(|x| x.to_string()).unwrap_or_default()
                )
            });
        }
    }

    #[test]
    fn mtrt_is_accessor_heavy() {
        let m = mtrt();
        assert!(m.function_by_name("getX").is_some());
        assert!(m.function_by_name("dot").is_some());
        let trace = m.function(m.function_by_name("trace").unwrap());
        let vcalls = trace
            .blocks()
            .iter()
            .flat_map(|bb| &bb.insts)
            .filter(|i| {
                matches!(
                    i,
                    njc_ir::Inst::Call {
                        target: njc_ir::CallTarget::Virtual { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(vcalls >= 2, "got {vcalls}");
    }

    #[test]
    fn jack_has_a_try_region() {
        let m = jack();
        let scan = m.function(m.function_by_name("scan").unwrap());
        assert_eq!(scan.try_regions().len(), 1);
        assert!(scan.blocks().iter().any(|b| b.try_region.is_some()));
    }

    #[test]
    fn jess_walks_ref_chains() {
        let m = jess();
        let f = m.function(m.function_by_name("run_rounds").unwrap());
        let has_ifnull = f
            .blocks()
            .iter()
            .any(|b| matches!(b.term, njc_ir::Terminator::IfNull { .. }));
        assert!(has_ifnull);
    }

    #[test]
    fn workers_take_ref_params() {
        for (m, worker) in [
            (mtrt(), "trace"),
            (jess(), "run_rounds"),
            (compress(), "compress"),
            (db(), "run_queries"),
            (mpegaudio(), "filter"),
            (jack(), "scan"),
            (javac(), "eval"),
        ] {
            let f = m.function(m.function_by_name(worker).unwrap());
            assert!(f.params().contains(&Type::Ref), "{worker}");
        }
    }
}
