//! Batched, prioritized, coalescing recompile queue.
//!
//! The service's compile demand arrives as per-tenant requests but is
//! served as per-*artifact* work: every request names a [`CacheKey`]
//! (pristine body × config × trap model × override set), and requests for
//! the same key **coalesce** into one pending compile with many waiters —
//! the artifact is compiled once and installed into every waiting tenant.
//! Coalesced arrivals are the service's *dedup hits*.
//!
//! Ordering is by **priority** — the modeled cycles at stake, hotness ×
//! trap cost, as computed by the submitting controller — with FIFO
//! tie-breaking. Two service properties temper the strict priority order:
//!
//! * **Backpressure**: the queue is bounded. A submit beyond capacity is
//!   rejected, not buffered; the controller simply re-submits on a later
//!   poll if the site is still hot. Demand collapses onto fresh profile
//!   data instead of queueing stale work.
//! * **Starvation-free aging**: every batch pop bumps the age of the
//!   requests left behind, and age feeds the effective priority. A
//!   low-priority request cannot wait forever behind a steady stream of
//!   hot ones.
//!
//! Workers pull work in **batches** (up to [`QueueConfig::batch_max`] at
//! a time) so one wake services several pending compiles — the
//! lock/notify overhead amortizes the way a real JIT compile queue's
//! does.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use njc_core::ExplicitOverride;

use crate::cache::CacheKey;

/// Queue shape knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueueConfig {
    /// Maximum pending compiles before submits are rejected (clamped ≥ 1).
    pub capacity: usize,
    /// Maximum compiles handed to a worker per pop (clamped ≥ 1).
    pub batch_max: usize,
    /// Effective-priority boost per batch survived in the queue, in the
    /// same modeled-cycle units as request priorities. Zero disables
    /// aging.
    pub aging_boost: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            capacity: 64,
            batch_max: 4,
            aging_boost: 1_000,
        }
    }
}

/// One tenant waiting on a pending compile: where to install the
/// artifact once it exists.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Waiter {
    /// Tenant index in the service's registry.
    pub tenant: usize,
    /// The function index *within that tenant's module* to install into.
    pub function_index: usize,
}

/// A compile request from one tenant's controller.
#[derive(Clone, Debug)]
pub struct RecompileRequest {
    /// Full artifact identity; the coalescing key.
    pub key: CacheKey,
    /// Who wants it, and where it goes.
    pub waiter: Waiter,
    /// Override set to compile with (already encoded in `key`; carried
    /// separately so workers need not decode it).
    pub overrides: ExplicitOverride,
    /// Modeled cycles at stake: hotness × trap cost. Higher pops first.
    pub priority: u64,
}

/// Outcome of a submit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Submitted {
    /// New pending compile enqueued.
    Enqueued,
    /// Joined an existing pending compile for the same key (a dedup hit).
    Coalesced,
    /// Queue full; ask again on a later profile poll.
    Rejected,
}

/// A pending compile: one artifact, every tenant waiting on it.
#[derive(Clone, Debug)]
pub struct PendingCompile {
    /// Artifact identity.
    pub key: CacheKey,
    /// Override set to compile with.
    pub overrides: ExplicitOverride,
    /// Everyone to install into, in arrival order (first is the
    /// original requester).
    pub waiters: Vec<Waiter>,
    /// Max priority over all coalesced requests.
    pub priority: u64,
    /// Batches survived while pending.
    pub age: u64,
    /// FIFO tie-break.
    seq: u64,
    /// For queue-latency accounting.
    enqueued_at: Instant,
}

impl PendingCompile {
    /// Priority after aging: base + age × boost.
    fn effective(&self, boost: u64) -> u64 {
        self.priority.saturating_add(self.age.saturating_mul(boost))
    }
}

/// Queue counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueueStats {
    /// Requests that enqueued a new pending compile.
    pub submitted: u64,
    /// Requests coalesced into an existing pending compile (dedup hits
    /// counted at the queue).
    pub coalesced: u64,
    /// Requests rejected by backpressure.
    pub rejected: u64,
    /// Batches handed to workers.
    pub batches: u64,
    /// Compiles completed (artifact installed to all waiters).
    pub completed: u64,
    /// High-water mark of pending compiles.
    pub max_pending: u64,
    /// Popped entries that outranked a higher-base-priority survivor only
    /// thanks to aging — the starvation-freedom mechanism firing.
    pub aged_promotions: u64,
}

#[derive(Debug, Default)]
struct Inner {
    pending: BTreeMap<CacheKey, PendingCompile>,
    stats: QueueStats,
    latencies_us: Vec<u64>,
    next_seq: u64,
    closed: bool,
}

/// The shared recompile queue. Controllers [`submit`], workers
/// [`pop_batch`] (blocking) and [`complete`].
///
/// [`submit`]: RecompileQueue::submit
/// [`pop_batch`]: RecompileQueue::pop_batch
/// [`complete`]: RecompileQueue::complete
#[derive(Debug)]
pub struct RecompileQueue {
    config: QueueConfig,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl RecompileQueue {
    /// An empty queue with `config` (capacity and batch size clamped ≥ 1).
    pub fn new(config: QueueConfig) -> Self {
        RecompileQueue {
            config: QueueConfig {
                capacity: config.capacity.max(1),
                batch_max: config.batch_max.max(1),
                aging_boost: config.aging_boost,
            },
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
        }
    }

    /// Submits one request, coalescing on key. See [`Submitted`].
    pub fn submit(&self, req: RecompileRequest) -> Submitted {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return Submitted::Rejected;
        }
        if let Some(pending) = inner.pending.get_mut(&req.key) {
            if !pending.waiters.contains(&req.waiter) {
                pending.waiters.push(req.waiter);
            }
            pending.priority = pending.priority.max(req.priority);
            inner.stats.coalesced += 1;
            return Submitted::Coalesced;
        }
        if inner.pending.len() >= self.config.capacity {
            inner.stats.rejected += 1;
            return Submitted::Rejected;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.pending.insert(
            req.key.clone(),
            PendingCompile {
                key: req.key,
                overrides: req.overrides,
                waiters: vec![req.waiter],
                priority: req.priority,
                age: 0,
                seq,
                enqueued_at: Instant::now(),
            },
        );
        inner.stats.submitted += 1;
        inner.stats.max_pending = inner.stats.max_pending.max(inner.pending.len() as u64);
        self.ready.notify_one();
        Submitted::Enqueued
    }

    /// Blocks until work or close; returns up to `batch_max` pending
    /// compiles in effective-priority order, or `None` once the queue is
    /// closed and drained.
    pub fn pop_batch(&self) -> Option<Vec<PendingCompile>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !inner.pending.is_empty() {
                return Some(Self::take_batch(&mut inner, &self.config));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking [`pop_batch`]: `None` when nothing is pending.
    ///
    /// [`pop_batch`]: RecompileQueue::pop_batch
    pub fn try_pop_batch(&self) -> Option<Vec<PendingCompile>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.pending.is_empty() {
            return None;
        }
        Some(Self::take_batch(&mut inner, &self.config))
    }

    fn take_batch(inner: &mut Inner, config: &QueueConfig) -> Vec<PendingCompile> {
        // Effective priority desc, then FIFO.
        let mut order: Vec<(u64, u64, CacheKey)> = inner
            .pending
            .values()
            .map(|p| (p.effective(config.aging_boost), p.seq, p.key.clone()))
            .collect();
        order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let top_base = inner
            .pending
            .values()
            .map(|p| p.priority)
            .max()
            .unwrap_or(0);
        let mut batch = Vec::new();
        for (_, _, key) in order.into_iter().take(config.batch_max) {
            let p = inner.pending.remove(&key).expect("key pending");
            if p.age > 0 && p.priority < top_base {
                inner.stats.aged_promotions += 1;
            }
            batch.push(p);
        }
        for p in inner.pending.values_mut() {
            p.age += 1;
        }
        inner.stats.batches += 1;
        batch
    }

    /// Records a finished compile (installed into all its waiters) and
    /// its queue-to-done latency.
    pub fn complete(&self, job: &PendingCompile) {
        let us = job.enqueued_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.stats.completed += 1;
        inner.latencies_us.push(us);
    }

    /// Closes the queue: pending work still drains, new submits reject,
    /// and blocked workers wake (getting `None` once drained).
    pub fn close(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.ready.notify_all();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats
    }

    /// Completed-compile latencies in microseconds, submission order.
    pub fn latencies_us(&self) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .latencies_us
            .clone()
    }

    /// Pending compiles right now.
    pub fn pending_len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::TrapModel;
    use njc_ir::parse_function;
    use njc_opt::ConfigKind;

    fn key(i: usize, overrides: &ExplicitOverride) -> CacheKey {
        let f = parse_function(&format!(
            "func f{i}(v0: int) -> int {{\nbb0:\n  return v0\n}}"
        ))
        .unwrap();
        CacheKey::new(&f, ConfigKind::Full, TrapModel::windows_ia32(), overrides)
    }

    fn req(i: usize, tenant: usize, priority: u64) -> RecompileRequest {
        let overrides = ExplicitOverride::new();
        RecompileRequest {
            key: key(i, &overrides),
            waiter: Waiter {
                tenant,
                function_index: i,
            },
            overrides,
            priority,
        }
    }

    #[test]
    fn coalesces_same_key_and_collects_waiters() {
        let q = RecompileQueue::new(QueueConfig::default());
        assert_eq!(q.submit(req(7, 0, 10)), Submitted::Enqueued);
        assert_eq!(q.submit(req(7, 1, 500)), Submitted::Coalesced);
        assert_eq!(q.submit(req(7, 1, 500)), Submitted::Coalesced, "idempotent");
        let batch = q.try_pop_batch().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].waiters.len(), 2, "one compile, two installs");
        assert_eq!(batch[0].priority, 500, "max over coalesced requests");
        let s = q.stats();
        assert_eq!((s.submitted, s.coalesced), (1, 3 - 1));
    }

    #[test]
    fn pops_by_priority_with_fifo_ties_and_bounded_batches() {
        let q = RecompileQueue::new(QueueConfig {
            capacity: 16,
            batch_max: 2,
            aging_boost: 0,
        });
        q.submit(req(0, 0, 5));
        q.submit(req(1, 0, 50));
        q.submit(req(2, 0, 50));
        q.submit(req(3, 0, 500));
        let batch = q.try_pop_batch().unwrap();
        let prios: Vec<u64> = batch.iter().map(|p| p.priority).collect();
        assert_eq!(prios, vec![500, 50], "priority desc, batch capped at 2");
        assert_eq!(
            batch[1].waiters[0].function_index, 1,
            "FIFO among equal priorities"
        );
    }

    #[test]
    fn backpressure_rejects_when_full() {
        let q = RecompileQueue::new(QueueConfig {
            capacity: 2,
            batch_max: 4,
            aging_boost: 0,
        });
        assert_eq!(q.submit(req(0, 0, 1)), Submitted::Enqueued);
        assert_eq!(q.submit(req(1, 0, 1)), Submitted::Enqueued);
        assert_eq!(q.submit(req(2, 0, 1)), Submitted::Rejected);
        // Coalescing still works at capacity: no new entry is created.
        assert_eq!(q.submit(req(0, 1, 9)), Submitted::Coalesced);
        assert_eq!(q.stats().rejected, 1);
    }

    #[test]
    fn aging_promotes_starved_low_priority_work() {
        let q = RecompileQueue::new(QueueConfig {
            capacity: 16,
            batch_max: 1,
            aging_boost: 100,
        });
        q.submit(req(0, 0, 10)); // the starvation candidate
        for round in 0..4 {
            q.submit(req(100 + round, 0, 1_000)); // hot stream
            let batch = q.try_pop_batch().unwrap();
            if batch[0].waiters[0].function_index == 0 {
                // Aged past the hot stream: 10 + age*100 > 1000 once
                // age > 9 — but the hot entry also ages, so promotion
                // happens as soon as the candidate's head start wins.
                assert!(batch[0].age > 0);
                assert!(q.stats().aged_promotions > 0);
                return;
            }
        }
        // Four rounds of a 1000-vs-10 stream with boost 100: by round 4
        // the candidate's effective priority is 10 + 4*100 = 410 < 1000,
        // so not yet promoted — keep starving it and it must surface.
        for round in 0..16 {
            q.submit(req(200 + round, 0, 1_000));
            let batch = q.try_pop_batch().unwrap();
            if batch[0].waiters[0].function_index == 0 {
                assert!(q.stats().aged_promotions > 0);
                return;
            }
        }
        panic!("low-priority request starved despite aging");
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = std::sync::Arc::new(RecompileQueue::new(QueueConfig::default()));
        q.submit(req(0, 0, 1));
        q.close();
        assert_eq!(q.submit(req(1, 0, 1)), Submitted::Rejected);
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = 0;
                while let Some(batch) = q.pop_batch() {
                    for job in &batch {
                        q.complete(job);
                    }
                    seen += batch.len();
                }
                seen
            })
        };
        assert_eq!(worker.join().unwrap(), 1, "pending work drains past close");
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.latencies_us().len(), 1);
    }
}
