//! Workloads the adaptive runtime and the compilation service are
//! measured on.
//!
//! The original single-point workload: `main(iters, maybe)` runs a loop
//! calling `hot(box, maybe)` once per iteration. `hot` reads four fields
//! of `box` (never null — under the optimizing tier those checks are
//! eliminated or become free implicit sites) and then one field of
//! `maybe`. The benchmark passes `maybe = null`, so that one site traps
//! on *every* call: the paper's worst case for implicit checks (a
//! ~1200-cycle trap each iteration on IA32), and the best case for the
//! profile-driven [`ExplicitOverride`] — once the runtime notices, an
//! explicit 2-cycle check replaces the trap.
//!
//! The service suite adds shapes a single point cannot show:
//!
//! * [`phase_shift_workload`] — the null rate changes *phase* mid-run
//!   (always-null bursts, clean stretches, alternation), exercising
//!   tier-down as well as tier-up;
//! * [`many_hot_workload`] — many distinct hot bodies contending for a
//!   small code cache;
//! * [`deep_chain_workload`] — a deep out-of-line call chain whose NPE
//!   unwinds through every frame;
//! * [`write_hot_workload`] — the trapping access is a field *write*,
//!   the only kind the AIX/PowerPC model traps.
//!
//! Every hot function is deliberately padded past the inliner's
//! 24-instruction budget: the call boundary must survive into both
//! tiers, because calls are the safe points where a mid-run code swap
//! can land.
//!
//! [`ExplicitOverride`]: njc_core::ExplicitOverride

use njc_ir::{parse_function, Module, Type};

/// Source of `hot` (function index 0).
const HOT_SRC: &str = "func hot(v0: ref, v1: ref) -> int {
  locals v2: int v3: int v4: int v5: int v6: int
bb0:
  nullcheck v0
  v2 = getfield v0, field0
  nullcheck v0
  v3 = getfield v0, field1
  nullcheck v0
  v4 = getfield v0, field2
  nullcheck v0
  v5 = getfield v0, field3
  v2 = add.int v2, v3
  v4 = add.int v4, v5
  v2 = add.int v2, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v5 = add.int v4, v3
  v2 = add.int v5, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v5 = add.int v4, v3
  v2 = add.int v5, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v2 = add.int v4, v3
  nullcheck v1
  v6 = getfield v1, field4
  v2 = add.int v2, v6
  return v2
}";

/// Source of `main` (function index 1). `v0` is the iteration count and
/// `v1` the reference handed to `hot` — the benchmark passes null. The
/// call block sits alone in a try region whose handler folds the NPE code
/// into the accumulator and rejoins the loop latch, so a trapping
/// iteration continues instead of unwinding.
const MAIN_SRC: &str = "func main(v0: int, v1: ref) -> int {
  locals v2: ref v3: int v4: int v5: int v6: int v7: int
  try0: handler bb4 catch npe -> v7
bb0:
  v2 = new class0
  v3 = const 11
  nullcheck v2
  putfield v2, field0, v3
  v3 = const 22
  nullcheck v2
  putfield v2, field1, v3
  v3 = const 33
  nullcheck v2
  putfield v2, field2, v3
  v3 = const 44
  nullcheck v2
  putfield v2, field3, v3
  v3 = const 55
  nullcheck v2
  putfield v2, field4, v3
  v4 = const 0
  v5 = const 0
  v6 = const 1
  goto bb1
bb1:
  if lt v4, v0 then bb2 else bb5
bb2: [try0]
  v3 = call fn0(v2, v1)
  v5 = add.int v5, v3
  goto bb3
bb3:
  observe v4
  v4 = add.int v4, v6
  goto bb1
bb4:
  v5 = add.int v5, v7
  goto bb3
bb5:
  observe v5
  return v5
}";

/// Builds the workload module. `hot` is function 0, `main` function 1;
/// run `main` with `[Value::Int(iters), Value::Ref(0)]` for the
/// null-seeded configuration.
pub fn hot_field_workload() -> Module {
    let mut m = Module::new("hot_field");
    m.add_class(
        "Box",
        &[
            ("f0", Type::Int),
            ("f1", Type::Int),
            ("f2", Type::Int),
            ("f3", Type::Int),
            ("f4", Type::Int),
        ],
    );
    m.add_function(parse_function(HOT_SRC).expect("hot parses"));
    m.add_function(parse_function(MAIN_SRC).expect("main parses"));
    m
}

/// Adds the standard 5-int-field `Box` class to `m`.
fn add_box_class(m: &mut Module) {
    m.add_class(
        "Box",
        &[
            ("f0", Type::Int),
            ("f1", Type::Int),
            ("f2", Type::Int),
            ("f3", Type::Int),
            ("f4", Type::Int),
        ],
    );
}

/// The box-initialization prologue shared by the generated mains:
/// allocates `class0` into `v3` and fills all five fields via `v7`.
fn box_setup() -> String {
    let mut s = String::from("  v3 = new class0\n  v7 = const 7\n");
    for f in 0..5 {
        s.push_str(&format!("  nullcheck v3\n  putfield v3, field{f}, v7\n"));
    }
    s
}

/// Source of one padded hot function: reads four never-null fields of
/// `v0`, does `pad` extra ALU rounds (so different `pad` values produce
/// different body hashes — distinct cache keys), then touches `field4`
/// of `v1` — a read, or a write when `write_site` is set.
fn hot_src(name: &str, pad: usize, write_site: bool) -> String {
    let mut s = format!("func {name}(v0: ref, v1: ref) -> int {{\n");
    s.push_str("  locals v2: int v3: int v4: int v5: int v6: int\nbb0:\n");
    for f in 0..4 {
        s.push_str(&format!(
            "  nullcheck v0\n  v{} = getfield v0, field{f}\n",
            f + 2
        ));
    }
    // 14 base ALU rounds keep even `pad == 0` past the inline budget.
    for i in 0..(14 + pad) {
        let (d, a, b) = match i % 3 {
            0 => (2, 3, 4),
            1 => (3, 4, 5),
            _ => (4, 5, 2),
        };
        s.push_str(&format!("  v{d} = add.int v{a}, v{b}\n"));
    }
    if write_site {
        s.push_str("  nullcheck v1\n  putfield v1, field4, v2\n");
    } else {
        s.push_str("  nullcheck v1\n  v6 = getfield v1, field4\n  v2 = add.int v2, v6\n");
    }
    s.push_str("  return v2\n}");
    s
}

/// Phase-shift mode: always null.
pub const PHASE_NULL: i64 = 1;
/// Phase-shift mode: alternate null / clean phases, null first.
pub const PHASE_ALTERNATE: i64 = 0;
/// Phase-shift mode: never null.
pub const PHASE_CLEAN: i64 = 2;

/// A workload whose null rate changes in *phases*: `main(iters, nullref,
/// mode)` calls `hot(box, maybe)` per iteration, where `maybe` is null
/// or the box depending on the current phase of length `phase_len`.
///
/// * `mode == PHASE_ALTERNATE` (0): phases alternate null → clean → …
/// * `mode == PHASE_NULL` (1): one null phase, then clean forever — the
///   tier-down scenario (a site traps hard early, then quiesces).
/// * `mode == PHASE_CLEAN` (2): never null — the pure baseline phase.
///
/// `hot` is function 0, `main` function 1.
pub fn phase_shift_workload(phase_len: i64) -> Module {
    let phase_len = phase_len.max(1);
    let main_src = format!(
        "func main(v0: int, v1: ref, v2: int) -> int {{
  locals v3: ref v4: int v5: int v6: int v7: int v8: int v9: int v10: int v11: int v12: int v13: int
  try0: handler bb12 catch npe -> v9
bb0:
{setup}  v4 = const 0
  v5 = const 0
  v6 = const 0
  v8 = const 1
  v10 = const {phase_len}
  v12 = const 0
  v13 = const 2
  if lt v2, v13 then bb1 else bb2
bb1:
  v11 = const 0
  goto bb3
bb2:
  v11 = const 1
  goto bb3
bb3:
  if lt v4, v0 then bb4 else bb10
bb4:
  if eq v11, v12 then bb5 else bb6
bb5: [try0]
  v7 = call fn0(v3, v1)
  v5 = add.int v5, v7
  goto bb7
bb6: [try0]
  v7 = call fn0(v3, v3)
  v5 = add.int v5, v7
  goto bb7
bb7:
  observe v4
  v4 = add.int v4, v8
  v6 = add.int v6, v8
  if lt v6, v10 then bb3 else bb8
bb8:
  v6 = const 0
  if eq v2, v12 then bb9 else bb11
bb9:
  v11 = sub.int v8, v11
  goto bb3
bb10:
  observe v5
  return v5
bb11:
  v11 = const 1
  goto bb3
bb12:
  v5 = add.int v5, v9
  goto bb7
}}",
        setup = box_setup(),
    );
    let mut m = Module::new("phase_shift");
    add_box_class(&mut m);
    m.add_function(parse_function(&hot_src("hot", 0, false)).expect("hot parses"));
    m.add_function(parse_function(&main_src).expect("main parses"));
    m
}

/// `k` *distinct* hot functions (different padding → different body
/// hashes → different cache keys) contending for the code cache.
/// `main(iters, nullref)` calls every one per iteration; even-indexed
/// hots get the null, odd-indexed the box, so half the bodies need an
/// override and half do not. `hot0..hot{k-1}` are functions `0..k`,
/// `main` is function `k`.
pub fn many_hot_workload(k: usize) -> Module {
    let k = k.max(1);
    let mut m = Module::new("many_hot");
    add_box_class(&mut m);
    for j in 0..k {
        m.add_function(parse_function(&hot_src(&format!("hot{j}"), j, false)).expect("hot parses"));
    }
    // Vars: v0 iters, v1 nullref, v3 box, v4 i, v5 acc, v6 call result,
    // v7 npe code, v8 one. Blocks: bb0 setup, bb1 head, bb2..bb{k+1} one
    // call each (block j+2 in try region j), bb{k+2} latch, bb{k+3}
    // exit, bb{k+4}.. handlers (handler j resumes at the block after its
    // call).
    let mut src = String::from("func main(v0: int, v1: ref) -> int {\n");
    src.push_str("  locals v3: ref v4: int v5: int v6: int v7: int v8: int\n");
    for j in 0..k {
        src.push_str(&format!(
            "  try{j}: handler bb{} catch npe -> v7\n",
            k + 4 + j
        ));
    }
    src.push_str("bb0:\n");
    src.push_str(&box_setup().replace("v7", "v6"));
    src.push_str("  v4 = const 0\n  v5 = const 0\n  v8 = const 1\n  goto bb1\nbb1:\n");
    src.push_str(&format!("  if lt v4, v0 then bb2 else bb{}\n", k + 3));
    for j in 0..k {
        let arg = if j % 2 == 0 { "v1" } else { "v3" };
        let next = j + 3; // next call block, or the latch after the last
        src.push_str(&format!(
            "bb{}: [try{j}]\n  v6 = call fn{j}(v3, {arg})\n  v5 = add.int v5, v6\n  goto bb{next}\n",
            j + 2
        ));
    }
    src.push_str(&format!(
        "bb{}:\n  observe v4\n  v4 = add.int v4, v8\n  goto bb1\n",
        k + 2
    ));
    src.push_str(&format!("bb{}:\n  observe v5\n  return v5\n", k + 3));
    for j in 0..k {
        src.push_str(&format!(
            "bb{}:\n  v5 = add.int v5, v7\n  goto bb{}\n",
            k + 4 + j,
            j + 3
        ));
    }
    src.push('}');
    m.add_function(parse_function(&src).expect("main parses"));
    m
}

/// A `depth`-deep out-of-line call chain: `f0 → f1 → … → f{depth-1}`,
/// where only the last frame touches `maybe` — its NPE unwinds through
/// every frame back to `main`'s handler. Functions `0..depth` are the
/// chain, `main` is function `depth`; run with `(iters, nullref)`.
pub fn deep_chain_workload(depth: usize) -> Module {
    let depth = depth.max(1);
    let mut m = Module::new("deep_chain");
    add_box_class(&mut m);
    for j in 0..depth {
        if j + 1 == depth {
            // The leaf is a plain hot body (reads maybe.field4).
            m.add_function(
                parse_function(&hot_src(&format!("chain{j}"), 1, false)).expect("leaf parses"),
            );
        } else {
            // Interior frame: padded, then forwards down the chain.
            let mut s = format!("func chain{j}(v0: ref, v1: ref) -> int {{\n");
            s.push_str("  locals v2: int v3: int v4: int v5: int\nbb0:\n");
            for f in 0..4 {
                s.push_str(&format!(
                    "  nullcheck v0\n  v{} = getfield v0, field{f}\n",
                    f + 2
                ));
            }
            for i in 0..14 {
                let (d, a, b) = match i % 3 {
                    0 => (2, 3, 4),
                    1 => (3, 4, 5),
                    _ => (4, 5, 2),
                };
                s.push_str(&format!("  v{d} = add.int v{a}, v{b}\n"));
            }
            s.push_str(&format!("  v3 = call fn{}(v0, v1)\n", j + 1));
            s.push_str("  v2 = add.int v2, v3\n  return v2\n}");
            m.add_function(parse_function(&s).expect("interior parses"));
        }
    }
    let main_src = format!(
        "func main(v0: int, v1: ref) -> int {{
  locals v2: ref v3: int v4: int v5: int v6: int v7: int
  try0: handler bb4 catch npe -> v7
bb0:
{setup}  v4 = const 0
  v5 = const 0
  v6 = const 1
  goto bb1
bb1:
  if lt v4, v0 then bb2 else bb5
bb2: [try0]
  v3 = call fn0(v2, v1)
  v5 = add.int v5, v3
  goto bb3
bb3:
  observe v4
  v4 = add.int v4, v6
  goto bb1
bb4:
  v5 = add.int v5, v7
  goto bb3
bb5:
  observe v5
  return v5
}}",
        setup = box_setup().replace("v3", "v2").replace("v7", "v3"),
    );
    m.add_function(parse_function(&main_src).expect("main parses"));
    m
}

/// The write-trapping twin of [`hot_field_workload`]: the maybe-site is
/// a `putfield`. On AIX/PowerPC — which traps *writes only* — this is
/// the workload that actually exercises the adaptive path; the read
/// workload's nulls are silently missed there. `hot` is function 0,
/// `main` function 1; run with `(iters, nullref)`.
pub fn write_hot_workload() -> Module {
    let mut m = Module::new("write_hot");
    add_box_class(&mut m);
    m.add_function(parse_function(&hot_src("hot", 2, true)).expect("hot parses"));
    m.add_function(parse_function(MAIN_SRC).expect("main parses"));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::Platform;
    use njc_vm::{run_module, Value};

    #[test]
    fn hot_defeats_the_inliner() {
        let m = hot_field_workload();
        let hot = m.function(njc_ir::FunctionId::new(0));
        assert!(
            hot.num_insts() > njc_opt::InlineConfig::default().max_callee_insts,
            "hot must stay an out-of-line call ({} insts)",
            hot.num_insts()
        );
    }

    #[test]
    fn null_seeded_run_throws_and_recovers_every_iteration() {
        let m = hot_field_workload();
        let out = run_module(
            &m,
            Platform::windows_ia32(),
            "main",
            &[Value::Int(10), Value::Ref(0)],
        )
        .unwrap();
        assert_eq!(out.exception, None, "every NPE is caught in the loop");
        assert_eq!(out.events.len(), 10, "one NPE origin per iteration");
        assert_eq!(out.trace.len(), 11, "latch observe per iteration + final");
    }

    #[test]
    fn non_null_run_reads_the_field_instead() {
        let m = hot_field_workload();
        // Passing the iteration count only; with a real box for `maybe` the
        // program needs one — reuse null iterations = 0 as the trivial case.
        let out = run_module(
            &m,
            Platform::windows_ia32(),
            "main",
            &[Value::Int(0), Value::Ref(0)],
        )
        .unwrap();
        assert_eq!(out.result, Some(Value::Int(0)));
        assert_eq!(out.stats.exceptions_thrown, 0);
    }
}
