//! The null-seeded hot-loop workload the adaptive runtime is measured on.
//!
//! `main(iters, maybe)` runs a loop calling `hot(box, maybe)` once per
//! iteration. `hot` reads four fields of `box` (never null — under the
//! optimizing tier those checks are eliminated or become free implicit
//! sites) and then one field of `maybe`. The benchmark passes `maybe =
//! null`, so that one site traps on *every* call: the paper's worst case
//! for implicit checks (a ~1200-cycle trap each iteration on IA32), and
//! the best case for the profile-driven [`ExplicitOverride`] — once the
//! runtime notices, an explicit 2-cycle check replaces the trap.
//!
//! `hot` is deliberately padded past the inliner's 24-instruction budget:
//! the call boundary must survive into both tiers, because calls are the
//! safe points where a mid-run code swap can land.
//!
//! [`ExplicitOverride`]: njc_core::ExplicitOverride

use njc_ir::{parse_function, Module, Type};

/// Source of `hot` (function index 0).
const HOT_SRC: &str = "func hot(v0: ref, v1: ref) -> int {
  locals v2: int v3: int v4: int v5: int v6: int
bb0:
  nullcheck v0
  v2 = getfield v0, field0
  nullcheck v0
  v3 = getfield v0, field1
  nullcheck v0
  v4 = getfield v0, field2
  nullcheck v0
  v5 = getfield v0, field3
  v2 = add.int v2, v3
  v4 = add.int v4, v5
  v2 = add.int v2, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v5 = add.int v4, v3
  v2 = add.int v5, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v5 = add.int v4, v3
  v2 = add.int v5, v4
  v3 = add.int v2, v5
  v4 = add.int v3, v2
  v2 = add.int v4, v3
  nullcheck v1
  v6 = getfield v1, field4
  v2 = add.int v2, v6
  return v2
}";

/// Source of `main` (function index 1). `v0` is the iteration count and
/// `v1` the reference handed to `hot` — the benchmark passes null. The
/// call block sits alone in a try region whose handler folds the NPE code
/// into the accumulator and rejoins the loop latch, so a trapping
/// iteration continues instead of unwinding.
const MAIN_SRC: &str = "func main(v0: int, v1: ref) -> int {
  locals v2: ref v3: int v4: int v5: int v6: int v7: int
  try0: handler bb4 catch npe -> v7
bb0:
  v2 = new class0
  v3 = const 11
  nullcheck v2
  putfield v2, field0, v3
  v3 = const 22
  nullcheck v2
  putfield v2, field1, v3
  v3 = const 33
  nullcheck v2
  putfield v2, field2, v3
  v3 = const 44
  nullcheck v2
  putfield v2, field3, v3
  v3 = const 55
  nullcheck v2
  putfield v2, field4, v3
  v4 = const 0
  v5 = const 0
  v6 = const 1
  goto bb1
bb1:
  if lt v4, v0 then bb2 else bb5
bb2: [try0]
  v3 = call fn0(v2, v1)
  v5 = add.int v5, v3
  goto bb3
bb3:
  observe v4
  v4 = add.int v4, v6
  goto bb1
bb4:
  v5 = add.int v5, v7
  goto bb3
bb5:
  observe v5
  return v5
}";

/// Builds the workload module. `hot` is function 0, `main` function 1;
/// run `main` with `[Value::Int(iters), Value::Ref(0)]` for the
/// null-seeded configuration.
pub fn hot_field_workload() -> Module {
    let mut m = Module::new("hot_field");
    m.add_class(
        "Box",
        &[
            ("f0", Type::Int),
            ("f1", Type::Int),
            ("f2", Type::Int),
            ("f3", Type::Int),
            ("f4", Type::Int),
        ],
    );
    m.add_function(parse_function(HOT_SRC).expect("hot parses"));
    m.add_function(parse_function(MAIN_SRC).expect("main parses"));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::Platform;
    use njc_vm::{run_module, Value};

    #[test]
    fn hot_defeats_the_inliner() {
        let m = hot_field_workload();
        let hot = m.function(njc_ir::FunctionId::new(0));
        assert!(
            hot.num_insts() > njc_opt::InlineConfig::default().max_callee_insts,
            "hot must stay an out-of-line call ({} insts)",
            hot.num_insts()
        );
    }

    #[test]
    fn null_seeded_run_throws_and_recovers_every_iteration() {
        let m = hot_field_workload();
        let out = run_module(
            &m,
            Platform::windows_ia32(),
            "main",
            &[Value::Int(10), Value::Ref(0)],
        )
        .unwrap();
        assert_eq!(out.exception, None, "every NPE is caught in the loop");
        assert_eq!(out.events.len(), 10, "one NPE origin per iteration");
        assert_eq!(out.trace.len(), 11, "latch observe per iteration + final");
    }

    #[test]
    fn non_null_run_reads_the_field_instead() {
        let m = hot_field_workload();
        // Passing the iteration count only; with a real box for `maybe` the
        // program needs one — reuse null iterations = 0 as the trivial case.
        let out = run_module(
            &m,
            Platform::windows_ia32(),
            "main",
            &[Value::Int(0), Value::Ref(0)],
        )
        .unwrap();
        assert_eq!(out.result, Some(Value::Int(0)));
        assert_eq!(out.stats.exceptions_thrown, 0);
    }
}
