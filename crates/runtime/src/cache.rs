//! Content-addressed code cache for tier-1 recompiles.
//!
//! An artifact is fully determined by *what was compiled* and *how*: the
//! pristine function body (via [`Function::body_hash`]), the configuration
//! preset, the trap model the compiler assumed, and the per-site explicit
//! override set. Two recompiles with identical keys are byte-identical
//! (the pipeline is deterministic), so the cache may hand out the stored
//! artifact instead — `hit vs recompile` equality is a test invariant, not
//! a hope.

use std::collections::BTreeMap;
use std::sync::Arc;

use njc_arch::TrapModel;
use njc_core::ExplicitOverride;
use njc_ir::{AccessKind, Function};
use njc_observe::FunctionTrace;
use njc_opt::ConfigKind;

/// The identity of a compiled artifact: everything that can change the
/// produced code, and nothing that cannot.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CacheKey {
    /// FNV-1a over the function's canonical text form.
    body_hash: u64,
    /// Configuration preset, as a stable small integer.
    config: u8,
    /// The compiler-assumed trap model: protected bytes, reads trap,
    /// writes trap.
    trap: (u64, bool, bool),
    /// Sorted override slot keys, access kind encoded as a small integer.
    overrides: Vec<(u64, u8)>,
}

fn config_rank(kind: ConfigKind) -> u8 {
    match kind {
        ConfigKind::NoNullOptNoTrap => 0,
        ConfigKind::NoNullOptTrap => 1,
        ConfigKind::OldNullCheck => 2,
        ConfigKind::Phase1Only => 3,
        ConfigKind::Full => 4,
        ConfigKind::RefJit => 5,
        ConfigKind::AixSpeculation => 6,
        ConfigKind::AixNoSpeculation => 7,
        ConfigKind::AixNoNullOpt => 8,
        ConfigKind::AixIllegalImplicit => 9,
    }
}

fn access_rank(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

impl CacheKey {
    /// Keys `func` (its *pristine*, pre-optimization body) compiled under
    /// `kind` against `trap` with `overrides`.
    pub fn new(
        func: &Function,
        kind: ConfigKind,
        trap: TrapModel,
        overrides: &ExplicitOverride,
    ) -> Self {
        CacheKey {
            body_hash: func.body_hash(),
            config: config_rank(kind),
            trap: (
                trap.trap_area_bytes,
                trap.traps_on_read,
                trap.traps_on_write,
            ),
            overrides: overrides
                .keys()
                .map(|(off, kind)| (off, access_rank(kind)))
                .collect(),
        }
    }

    /// The pristine-body hash component of the key. The sharded cache
    /// routes on it, so equal bodies land in the same shard regardless of
    /// config, trap model, or override set.
    pub fn body_hash(&self) -> u64 {
        self.body_hash
    }
}

/// A finished tier-1 compile: the optimized body plus its provenance
/// trace (check ids, site records, ledger) for tiered reconciliation.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledArtifact {
    /// The optimized function body, ready to install via
    /// [`njc_vm::RuntimeHooks::install`].
    pub body: Arc<Function>,
    /// The provenance trace of the recompile.
    pub trace: FunctionTrace,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts evicted to respect the capacity.
    pub evictions: u64,
    /// Artifacts inserted.
    pub inserts: u64,
}

/// An LRU-evicting, content-addressed artifact cache.
///
/// Entries live in a `BTreeMap` so iteration order (and therefore
/// eviction tie-breaking) is deterministic; recency is a monotone tick
/// stamped on every touch. Eviction scans for the minimum tick — `O(n)`,
/// which is fine at code-cache capacities (tens of entries).
#[derive(Debug)]
pub struct CodeCache {
    capacity: usize,
    tick: u64,
    entries: BTreeMap<CacheKey, (u64, Arc<CompiledArtifact>)>,
    stats: CacheStats,
}

impl CodeCache {
    /// A cache holding at most `capacity` artifacts (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        CodeCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<CompiledArtifact>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((last_use, artifact)) => {
                *last_use = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(artifact))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `artifact` under `key`, evicting least-recently-used entries
    /// while over capacity. Re-inserting an existing key refreshes it.
    pub fn insert(&mut self, key: CacheKey, artifact: Arc<CompiledArtifact>) {
        self.tick += 1;
        if self.entries.insert(key, (self.tick, artifact)).is_none() {
            self.stats.inserts += 1;
        }
        while self.entries.len() > self.capacity {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
                .expect("non-empty while over capacity");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }

    /// Whether `key` is resident, without touching recency or stats.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The key the next eviction would remove (the least-recently-used
    /// entry), without touching recency or stats. `None` when empty.
    /// Admission policies compare a candidate against this victim.
    pub fn peek_lru(&self) -> Option<&CacheKey> {
        self.entries
            .iter()
            .min_by_key(|(_, (t, _))| *t)
            .map(|(k, _)| k)
    }

    /// Resident artifact count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::parse_function;

    fn func(body: &str) -> Function {
        parse_function(body).unwrap()
    }

    fn artifact(f: &Function) -> Arc<CompiledArtifact> {
        Arc::new(CompiledArtifact {
            body: Arc::new(f.clone()),
            trace: FunctionTrace::default(),
        })
    }

    fn key(f: &Function) -> CacheKey {
        CacheKey::new(
            f,
            ConfigKind::Full,
            TrapModel::windows_ia32(),
            &ExplicitOverride::new(),
        )
    }

    #[test]
    fn key_distinguishes_every_component() {
        let f = func("func f(v0: int) -> int {\nbb0:\n  return v0\n}");
        let g = func("func g(v0: int) -> int {\nbb0:\n  return v0\n}");
        let base = key(&f);
        assert_ne!(base, key(&g), "different body");
        assert_ne!(
            base,
            CacheKey::new(
                &f,
                ConfigKind::OldNullCheck,
                TrapModel::windows_ia32(),
                &ExplicitOverride::new()
            ),
            "different config"
        );
        assert_ne!(
            base,
            CacheKey::new(
                &f,
                ConfigKind::Full,
                TrapModel::aix_ppc(),
                &ExplicitOverride::new()
            ),
            "different trap model"
        );
        let mut ov = ExplicitOverride::new();
        ov.insert(8, AccessKind::Read);
        assert_ne!(
            base,
            CacheKey::new(&f, ConfigKind::Full, TrapModel::windows_ia32(), &ov),
            "different override set"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used_under_tiny_capacity() {
        let bodies: Vec<Function> = (0..3)
            .map(|i| {
                func(&format!(
                    "func f{i}(v0: int) -> int {{\nbb0:\n  return v0\n}}"
                ))
            })
            .collect();
        let mut cache = CodeCache::new(2);
        cache.insert(key(&bodies[0]), artifact(&bodies[0]));
        cache.insert(key(&bodies[1]), artifact(&bodies[1]));
        // Touch body 0 so body 1 is now the LRU.
        assert!(cache.get(&key(&bodies[0])).is_some());
        cache.insert(key(&bodies[2]), artifact(&bodies[2]));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&key(&bodies[0])), "recently used stays");
        assert!(!cache.contains(&key(&bodies[1])), "LRU evicted");
        assert!(cache.contains(&key(&bodies[2])));
        let s = cache.stats();
        assert_eq!((s.inserts, s.evictions, s.hits, s.misses), (3, 1, 1, 0));
    }
}
