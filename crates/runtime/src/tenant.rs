//! Compilation as a service: many VM tenants, one compile pipeline.
//!
//! A *tenant* is an independent VM instance — its own module, entry
//! point, arguments, heap, and profile — but compilation is a shared
//! service: every tenant's recompile demand flows through one
//! [`RecompileQueue`] into one [`ShardedCodeCache`]. Because the cache is
//! content-addressed (pristine body hash × tier config × trap model ×
//! override set), tenants running the same code at the same tiering
//! decision share a single compile:
//!
//! * requests for the same key still pending **coalesce** in the queue —
//!   one compile, fan-out install into every waiting tenant;
//! * requests arriving after the artifact landed are **cache hits** —
//!   no compile at all.
//!
//! Both are *dedup*: installs served without fresh compile work. The
//! service's economic claim — total compile work strictly below the sum
//! of per-tenant isolated compiles — is measured by
//! [`ServiceOutcome::compiles_performed`] vs
//! [`ServiceOutcome::isolated_compiles`].
//!
//! The thread topology is three fixed pools inside one scope:
//!
//! * **carriers** run tenant VMs to completion, pulling the next
//!   unstarted tenant off a shared index — hundreds of tenants multiplex
//!   onto a handful of OS threads;
//! * one **controller** round-robin polls every live tenant's profile,
//!   plans per-function override sets exactly like the single-tenant
//!   tiered loop (tier-up *and* windowed tier-down), and submits
//!   prioritized requests — priority is the modeled cycles at stake
//!   (traps × trap cost + peak executions × explicit-check cost).
//!   Rejected submits (backpressure) are simply retried on a later poll
//!   against fresher profile data;
//! * **workers** pop priority batches, compile through the shared cache,
//!   and install into every waiter.
//!
//! After every VM finishes, each tenant independently runs the same
//! post-run fixpoint as the single-tenant runtime
//! ([`finalize_tiers`]) and a deterministic steady-state measurement
//! run. Per-tenant observable behavior is *identical* to running that
//! tenant alone — the shared pipeline changes only who pays for
//! compilation, never what the program computes.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use njc_arch::Platform;
use njc_core::ExplicitOverride;
use njc_ir::{Function, FunctionId, Module};
use njc_observe::{ModuleTrace, RecompileEvent};
use njc_opt::{optimize_module_traced, prepare_module, OptConfig};
use njc_recover::{RecoveryCounts, RecoveryPolicy};
use njc_vm::{Fault, RuntimeHooks, Value, Vm, VmConfig};

use crate::cache::{CacheKey, CacheStats};
use crate::queue::{QueueConfig, QueueStats, RecompileQueue, RecompileRequest, Submitted, Waiter};
use crate::shard::{ShardStats, ShardedCodeCache};
use crate::tiered::{
    finalize_tiers, FinalizeInput, Finalized, Install, RuntimeConfig, RuntimeOutcome, TierCompiler,
};

/// Shape of the compilation service.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ServiceConfig {
    /// Code cache shards (clamped ≥ 1). Keys route by pristine-body hash,
    /// so every variant of one body lands in one shard.
    pub shards: usize,
    /// Artifact capacity *per shard* (clamped ≥ 1).
    pub shard_capacity: usize,
    /// Recompile queue knobs (capacity, batch size, aging).
    pub queue: QueueConfig,
    /// Compile worker threads (clamped ≥ 1).
    pub workers: usize,
    /// Carrier threads executing tenant VMs (clamped ≥ 1). Tenants beyond
    /// this count wait for a free carrier.
    pub carriers: usize,
    /// Per-tenant tiering knobs — policy, tiers, snapshot interval, and
    /// the fault-injection delays. `cache_capacity` and `threads` are
    /// ignored; the service's own cache and pools rule.
    pub runtime: RuntimeConfig,
}

impl ServiceConfig {
    /// Service defaults on `platform`'s cost model: 8 shards × 16
    /// artifacts, default queue, 2 workers, 4 carriers.
    pub fn for_platform(platform: &Platform) -> Self {
        ServiceConfig {
            shards: 8,
            shard_capacity: 16,
            queue: QueueConfig::default(),
            workers: 2,
            carriers: 4,
            runtime: RuntimeConfig::for_platform(platform),
        }
    }
}

/// One tenant: an independent program the service runs and compiles for.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (tenant outcomes report under it).
    pub name: String,
    /// The tenant's module, compiled at tier 0 on admission.
    pub module: Module,
    /// Entry function name.
    pub entry: String,
    /// Entry arguments.
    pub args: Vec<Value>,
    /// Per-tenant trap-recovery policy, dispatched at registered
    /// implicit sites that trap in this tenant's VM (adaptive and steady
    /// runs both). [`RecoveryPolicy::abort`] reproduces the pre-recovery
    /// behavior; tenants with different policies coexist on one service
    /// because the policy shapes execution, never compiled artifacts —
    /// cache keys are unaffected.
    pub recovery: RecoveryPolicy,
}

/// One tenant's result: the full single-tenant outcome plus its isolated
/// compile demand.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// The tenant's name.
    pub name: String,
    /// Exactly what [`TieredRuntime::run`] would report — adaptive run,
    /// steady run, recompiles, overrides, provenance. `outcome.cache` is
    /// cache-*wide* (the shared cache serves every tenant).
    ///
    /// [`TieredRuntime::run`]: crate::TieredRuntime::run
    pub outcome: RuntimeOutcome,
    /// Distinct artifact keys this tenant requested over its lifetime —
    /// the compiles it would have performed with a private cache.
    pub distinct_keys: usize,
}

/// What one service run produced.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Per-tenant outcomes, in submission order.
    pub tenants: Vec<TenantOutcome>,
    /// Shared-cache counters after the run.
    pub cache: CacheStats,
    /// Per-shard counters (occupancy, hits, admission rejects).
    pub shards: Vec<ShardStats>,
    /// Queue counters (coalesced, rejected, batches, aged promotions).
    pub queue: QueueStats,
    /// Queue-to-install latencies, microseconds, completion order.
    pub latencies_us: Vec<u64>,
    /// Fresh compiles actually performed (adaptive workers + fixpoint).
    pub compiles_performed: u64,
    /// Σ over tenants of [`TenantOutcome::distinct_keys`] — the compile
    /// bill under per-tenant isolation. The service wins when
    /// `compiles_performed < isolated_compiles`.
    pub isolated_compiles: u64,
    /// Installs and settlements served without a fresh compile: queue
    /// coalescing fan-outs plus shared-cache hits, adaptive and fixpoint
    /// phases both. Counted as recompile events with `cache_hit` set.
    pub dedup_hits: u64,
    /// `std::thread::available_parallelism()` of the host, for context
    /// next to throughput numbers.
    pub host_parallelism: usize,
    /// Compile jobs that panicked mid-compile and were survived —
    /// service workers and per-tenant fixpoint passes combined. The
    /// fleet keeps running; the affected functions stay at their last
    /// installed tier.
    pub compile_panics: u64,
    /// Traps recovered per strategy, summed over every tenant (each
    /// tenant's own split lives in its `outcome.recoveries`).
    pub recoveries: RecoveryCounts,
}

impl ServiceOutcome {
    /// Reconciles and convergence-checks every tenant. Each tenant must
    /// satisfy exactly the single-tenant obligations: every trap and
    /// explicit check explained by some installed tier's provenance, and
    /// every final override slot explicit in the final body.
    ///
    /// # Errors
    /// One line per violation, prefixed with the tenant name.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut failures = Vec::new();
        for t in &self.tenants {
            if let Err(errs) = t.outcome.reconcile() {
                failures.extend(errs.into_iter().map(|e| format!("{}: {e}", t.name)));
            }
            if let Err(errs) = t.outcome.verify_convergence() {
                failures.extend(errs.into_iter().map(|e| format!("{}: {e}", t.name)));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }
}

/// Per-tenant state shared between carriers, controller, and workers.
struct TenantState {
    spec: TenantSpec,
    tier0: Module,
    tier0_trace: ModuleTrace,
    tier1_base: Module,
    cfg1: OptConfig,
    hooks: RuntimeHooks,
    installs: Mutex<Vec<Install>>,
    /// The adaptive VM outcome, set by the carrier that ran it.
    result: Mutex<Option<Result<njc_vm::Outcome, Fault>>>,
    /// Every distinct artifact key this tenant asked for.
    keys: Mutex<BTreeSet<CacheKey>>,
}

/// The multi-tenant compilation service. One shared sharded cache and one
/// recompile queue serve every tenant; each tenant's observable behavior
/// matches a private [`TieredRuntime`](crate::TieredRuntime).
#[derive(Debug)]
pub struct ServiceRuntime {
    platform: Platform,
    config: ServiceConfig,
    cache: Arc<ShardedCodeCache>,
}

impl ServiceRuntime {
    /// A service on `platform` with [`ServiceConfig::for_platform`] knobs.
    pub fn new(platform: Platform) -> Self {
        let config = ServiceConfig::for_platform(&platform);
        Self::with_config(platform, config)
    }

    /// A service with explicit knobs.
    pub fn with_config(platform: Platform, config: ServiceConfig) -> Self {
        let cache = Arc::new(ShardedCodeCache::new(config.shards, config.shard_capacity));
        ServiceRuntime {
            platform,
            config,
            cache,
        }
    }

    /// The shared cache (persists across [`run`](Self::run) calls, so a
    /// second fleet of tenants starts warm).
    pub fn cache(&self) -> &Arc<ShardedCodeCache> {
        &self.cache
    }

    fn tier_config(&self, kind: njc_opt::ConfigKind) -> OptConfig {
        OptConfig {
            threads: 1, // workers are already the parallelism
            interproc: self.config.runtime.interproc,
            gvn: self.config.runtime.gvn,
            ..kind.to_config(&self.platform)
        }
    }

    /// Runs every tenant to completion through the shared compile
    /// pipeline, then fixpoints and steady-measures each one.
    ///
    /// # Errors
    /// The first VM [`Fault`] any tenant hit (adaptive or steady run).
    pub fn run(&self, specs: &[TenantSpec]) -> Result<ServiceOutcome, Fault> {
        let platform = self.platform;
        let rt = self.config.runtime;
        let kind1 = rt.tier1;
        let cfg0 = {
            let mut c = rt.tier0.to_config(&platform);
            c.threads = 1;
            c.interproc = rt.interproc;
            c.gvn = rt.gvn;
            c
        };

        // Admission: tier-0 compile every tenant, prepare its tier-1 base.
        let state: Vec<TenantState> = specs
            .iter()
            .map(|spec| {
                let mut tier0 = spec.module.clone();
                let (_s, tier0_trace) = optimize_module_traced(&mut tier0, &platform, &cfg0);
                let mut tier1_base = spec.module.clone();
                let cfg1 = self.tier_config(kind1);
                prepare_module(&mut tier1_base, &platform, &cfg1);
                TenantState {
                    spec: spec.clone(),
                    tier0,
                    tier0_trace,
                    tier1_base,
                    cfg1,
                    hooks: RuntimeHooks::new(rt.snapshot_interval),
                    installs: Mutex::new(Vec::new()),
                    result: Mutex::new(None),
                    keys: Mutex::new(BTreeSet::new()),
                }
            })
            .collect();

        let queue = RecompileQueue::new(self.config.queue);
        let vm_config = VmConfig {
            count_sites: true,
            ..rt.vm
        };
        let next_tenant = AtomicUsize::new(0);
        // Serializes same-key compiles across workers and fixpoint
        // threads (double-checked in `TierCompiler::compile`), so two
        // tenants deciding identically at the same instant share one
        // compile deterministically.
        let compile_lock = Mutex::new(());

        let state_ref = &state;
        let queue_ref = &queue;
        let worker_panics = AtomicU64::new(0);
        let cache_ref: &ShardedCodeCache = &self.cache;
        let lock_ref = &compile_lock;
        let install_delay = rt.install_delay_micros;

        std::thread::scope(|scope| {
            // Carriers: run tenant VMs, pulling the next unstarted tenant.
            for _ in 0..self.config.carriers.max(1) {
                let next = &next_tenant;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(t) = state_ref.get(i) else { break };
                    let out = Vm::new(&t.tier0, platform)
                        .with_config(vm_config)
                        .with_hooks(&t.hooks)
                        .with_recovery(&t.spec.recovery)
                        .run(&t.spec.entry, &t.spec.args);
                    *t.result.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                });
            }

            // Workers: pop priority batches, compile once, install into
            // every waiter. Each job runs under `catch_unwind`: a
            // panicking compile (a buggy optimizer pass) must not take
            // the worker — or the fleet — down with it. The job was
            // already popped from the queue, so nothing stays pending;
            // every waiting tenant simply keeps its last installed tier.
            for _ in 0..self.config.workers.max(1) {
                let panics = &worker_panics;
                scope.spawn(move || {
                    while let Some(batch) = queue_ref.pop_batch() {
                        for job in batch {
                            let survived =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let first = job.waiters[0];
                                    let ft = &state_ref[first.tenant];
                                    let compiler = TierCompiler {
                                        tier1_base: &ft.tier1_base,
                                        cfg1: &ft.cfg1,
                                        kind: kind1,
                                        platform: &platform,
                                        cache: cache_ref,
                                        compile_lock: Some(lock_ref),
                                        panic_injection: rt.panic_on_compile_of,
                                    };
                                    let (artifact, cache_hit) =
                                        compiler.compile(first.function_index, &job.overrides);
                                    if install_delay > 0 {
                                        // Fault injection: artifact done,
                                        // install channel stalls.
                                        std::thread::sleep(Duration::from_micros(install_delay));
                                    }
                                    for (wi, w) in job.waiters.iter().enumerate() {
                                        let t = &state_ref[w.tenant];
                                        let snap = t.hooks.snapshot();
                                        t.hooks.install(
                                            w.function_index as u32,
                                            Arc::clone(&artifact.body),
                                        );
                                        let event = RecompileEvent {
                                            function: t
                                                .tier1_base
                                                .function(FunctionId::new(w.function_index))
                                                .name()
                                                .to_string(),
                                            to_config: t.cfg1.name.to_string(),
                                            overrides: job.overrides.len(),
                                            // Only the first waiter of a
                                            // fresh compile paid for it.
                                            cache_hit: cache_hit || wi > 0,
                                            mid_run: !t.hooks.is_finished(),
                                            at_calls: snap.calls,
                                        };
                                        t.installs
                                            .lock()
                                            .unwrap_or_else(PoisonError::into_inner)
                                            .push(Install {
                                                index: w.function_index,
                                                overrides: job.overrides.clone(),
                                                artifact: Arc::clone(&artifact),
                                                event,
                                                baseline: snap.counters,
                                            });
                                    }
                                    queue_ref.complete(&job);
                                }));
                            if survived.is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }

            // The controller: one thread polls every live tenant, plans,
            // submits. Mirrors the single-tenant tiered controller with
            // the dispatch channel swapped for the shared queue.
            let mut requested: Vec<HashMap<usize, ExplicitOverride>> =
                vec![HashMap::new(); state.len()];
            let live = |t: &TenantState| {
                !t.hooks.is_finished()
                    && t.result
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .is_none()
            };
            while state.iter().any(live) {
                for (ti, t) in state.iter().enumerate() {
                    if !live(t) {
                        continue;
                    }
                    let snap = t.hooks.snapshot();
                    let installed = t.installs.lock().unwrap_or_else(PoisonError::into_inner);
                    for fi in 0..t.tier0.num_functions() {
                        let latest = installed.iter().rev().find(|i| i.index == fi);
                        let body: &Function = latest
                            .map(|i| &*i.artifact.body)
                            .unwrap_or_else(|| t.tier0.function(FunctionId::new(fi)));
                        let offset = |f| t.spec.module.field_offset(f);
                        let plan = rt.policy.assess(
                            fi,
                            body,
                            &offset,
                            &snap.counters,
                            latest.map(|i| &i.baseline),
                        );
                        if !plan.hot {
                            continue;
                        }
                        let mut want = match latest {
                            Some(inst) if rt.tier_down => rt.policy.assess_tier_down(
                                fi,
                                body,
                                &offset,
                                &inst.overrides,
                                &snap.counters,
                                Some(&inst.baseline),
                            ),
                            Some(inst) => inst.overrides.clone(),
                            None => requested[ti].get(&fi).cloned().unwrap_or_default(),
                        };
                        for (off, kind) in plan.overrides.keys() {
                            want.insert(off, kind);
                        }
                        if requested[ti].get(&fi) == Some(&want) {
                            continue;
                        }
                        // Priority: modeled cycles at stake for this
                        // function — trap bill plus execution weight.
                        let fu = fi as u32;
                        let traps: u64 = snap
                            .counters
                            .traps
                            .iter()
                            .filter(|((f, _, _), _)| *f == fu)
                            .map(|(_, c)| *c)
                            .sum();
                        let execs: u64 = snap
                            .counters
                            .blocks
                            .iter()
                            .filter(|((f, _), _)| *f == fu)
                            .map(|(_, c)| *c)
                            .max()
                            .unwrap_or(0);
                        let priority = traps
                            .saturating_mul(platform.cost.trap_taken)
                            .saturating_add(
                                execs.saturating_mul(platform.cost.explicit_null_check),
                            );
                        let key = CacheKey::new(
                            t.tier1_base.function(FunctionId::new(fi)),
                            kind1,
                            t.cfg1.compiler_trap,
                            &want,
                        );
                        let sub = queue_ref.submit(RecompileRequest {
                            key: key.clone(),
                            waiter: Waiter {
                                tenant: ti,
                                function_index: fi,
                            },
                            overrides: want.clone(),
                            priority,
                        });
                        if sub != Submitted::Rejected {
                            requested[ti].insert(fi, want);
                            t.keys
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(key);
                        }
                        // Rejected: backpressure — retry on a later poll
                        // if the profile still says so.
                    }
                }
                std::thread::sleep(Duration::from_micros(rt.controller_poll_micros.max(1)));
            }
            queue.close(); // workers drain what is pending, then exit
        });

        // Fixpoint + steady measurement, per tenant, in parallel — each
        // tenant is independent; the shared cache only dedups byte-
        // identical artifacts, so order cannot change any final body.
        let fixpoint: Vec<Mutex<Option<Result<TenantOutcome, Fault>>>> =
            state.iter().map(|_| Mutex::new(None)).collect();
        let next_fix = AtomicUsize::new(0);
        let fixpoint_ref = &fixpoint;
        std::thread::scope(|scope| {
            for _ in 0..self.config.carriers.max(1) {
                let next = &next_fix;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(t) = state_ref.get(i) else { break };
                    let r = finalize_tenant(t, platform, &rt, kind1, cache_ref, lock_ref);
                    *fixpoint_ref[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner) = Some(r);
                });
            }
        });

        let mut tenants = Vec::with_capacity(state.len());
        for (i, cell) in fixpoint.iter().enumerate() {
            let r = cell
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .unwrap_or_else(|| panic!("tenant {i} fixpoint missing"));
            tenants.push(r?);
        }

        // Every recompile event is one install/settlement; the ones with
        // `cache_hit` were served without compile work — dedup. (Fan-out
        // installs of one fresh compile record `cache_hit` for every
        // waiter past the first, so fresh work is counted exactly once.)
        let (mut compiles_performed, mut dedup_hits) = (0u64, 0u64);
        for r in tenants.iter().flat_map(|t| &t.outcome.recompiles) {
            if r.cache_hit {
                dedup_hits += 1;
            } else {
                compiles_performed += 1;
            }
        }
        let isolated_compiles = tenants.iter().map(|t| t.distinct_keys as u64).sum();
        let compile_panics = worker_panics.load(Ordering::Relaxed)
            + tenants
                .iter()
                .map(|t| t.outcome.compile_panics)
                .sum::<u64>();
        let mut recoveries = RecoveryCounts::default();
        for t in &tenants {
            recoveries.absorb(&t.outcome.recoveries);
        }
        Ok(ServiceOutcome {
            cache: self.cache.stats(),
            shards: self.cache.shard_stats(),
            queue: queue.stats(),
            latencies_us: queue.latencies_us(),
            compiles_performed,
            isolated_compiles,
            dedup_hits,
            host_parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            compile_panics,
            recoveries,
            tenants,
        })
    }
}

/// One tenant's post-run pass: fixpoint the tiers against the complete
/// counters (through the shared cache — identical keys dedup across
/// tenants here too) and run the deterministic steady measurement.
fn finalize_tenant(
    t: &TenantState,
    platform: Platform,
    rt: &RuntimeConfig,
    kind1: njc_opt::ConfigKind,
    cache: &ShardedCodeCache,
    compile_lock: &Mutex<()>,
) -> Result<TenantOutcome, Fault> {
    let adaptive = t
        .result
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("carrier stored the adaptive result")?;
    let installs = std::mem::take(&mut *t.installs.lock().unwrap_or_else(PoisonError::into_inner));
    let final_snap = t.hooks.snapshot();
    let compiler = TierCompiler {
        tier1_base: &t.tier1_base,
        cfg1: &t.cfg1,
        kind: kind1,
        platform: &platform,
        cache,
        compile_lock: Some(compile_lock),
        panic_injection: rt.panic_on_compile_of,
    };
    let Finalized {
        final_module,
        overrides,
        tier_traces,
        recompiles,
        compile_panics,
    } = finalize_tiers(FinalizeInput {
        tier0: &t.tier0,
        tier0_trace: &t.tier0_trace,
        compiler: &compiler,
        policy: &rt.policy,
        tier_down: rt.tier_down,
        field_offset: &|f| t.spec.module.field_offset(f),
        installs,
        final_counters: &final_snap.counters,
        final_calls: final_snap.calls,
    });

    // The fixpoint's settled artifacts also count toward the tenant's
    // isolated compile bill.
    {
        let mut keys = t.keys.lock().unwrap_or_else(PoisonError::into_inner);
        for (name, ov) in &overrides {
            if let Some(fid) = t.tier1_base.function_by_name(name) {
                keys.insert(CacheKey::new(
                    t.tier1_base.function(fid),
                    kind1,
                    t.cfg1.compiler_trap,
                    ov,
                ));
            }
        }
    }

    let steady = Vm::new(&final_module, platform)
        .with_config(rt.vm)
        .with_recovery(&t.spec.recovery)
        .run(&t.spec.entry, &t.spec.args)?;
    let distinct_keys = t.keys.lock().unwrap_or_else(PoisonError::into_inner).len();
    let mut recoveries = adaptive.stats.recoveries;
    recoveries.absorb(&steady.stats.recoveries);
    Ok(TenantOutcome {
        name: t.spec.name.clone(),
        outcome: RuntimeOutcome {
            adaptive,
            steady,
            recompiles,
            cache: cache.stats(),
            overrides,
            mid_run_swaps: t.hooks.swapped_calls(),
            final_module,
            tier0_trace: t.tier0_trace.clone(),
            tier_traces,
            compile_panics,
            recoveries,
        },
        distinct_keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::hot_field_workload;
    use crate::TieredRuntime;

    fn spec(name: &str, iters: i64) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            module: hot_field_workload(),
            entry: "main".to_string(),
            args: vec![Value::Int(iters), Value::Ref(0)],
            recovery: RecoveryPolicy::abort(),
        }
    }

    #[test]
    fn two_identical_tenants_share_compiles_and_match_single_tenant() {
        let platform = Platform::windows_ia32();
        let service = ServiceRuntime::new(platform);
        let out = service.run(&[spec("a", 3000), spec("b", 3000)]).unwrap();
        out.verify().unwrap();

        let single = TieredRuntime::new(hot_field_workload(), platform)
            .run("main", &[Value::Int(3000), Value::Ref(0)])
            .unwrap();
        for t in &out.tenants {
            assert_eq!(
                t.outcome.final_module, single.final_module,
                "{}: service must settle on the single-tenant bodies",
                t.name
            );
            assert_eq!(t.outcome.steady.stats, single.steady.stats);
            assert_eq!(t.outcome.overrides, single.overrides);
            single.steady.assert_equivalent(&t.outcome.steady).unwrap();
        }
        assert!(
            out.compiles_performed < out.isolated_compiles,
            "shared cache must beat isolation: {} !< {}",
            out.compiles_performed,
            out.isolated_compiles
        );
    }

    #[test]
    fn fleet_survives_panicking_compile_jobs() {
        // Fault injection: every tier-1 compile of "hot" panics inside a
        // shared service worker, while holding the cross-tenant compile
        // lock. Before poison recovery, that one panic poisoned the lock
        // and every subsequent compile — for *every* tenant — panicked on
        // lock().unwrap(): one buggy job took down the whole fleet. Now
        // workers catch the unwind, poisoned locks are re-entered, and
        // every tenant completes with unchanged observable behavior
        // ("hot" simply stays at tier 0).
        let platform = Platform::windows_ia32();
        let mut config = ServiceConfig::for_platform(&platform);
        config.runtime.panic_on_compile_of = Some("hot");
        let service = ServiceRuntime::with_config(platform, config);
        let specs: Vec<TenantSpec> = (0..4).map(|i| spec(&format!("t{i}"), 3000)).collect();
        let out = service.run(&specs).unwrap();
        assert_eq!(out.tenants.len(), 4, "every tenant completed");
        assert!(out.compile_panics > 0, "the injected panic must fire");
        out.verify().unwrap();

        let clean = TieredRuntime::new(hot_field_workload(), platform)
            .run("main", &[Value::Int(3000), Value::Ref(0)])
            .unwrap();
        for t in &out.tenants {
            assert!(
                !t.outcome.overrides.contains_key("hot"),
                "{}: no tier-1 install for the panicking function",
                t.name
            );
            clean.steady.assert_equivalent(&t.outcome.steady).unwrap();
            clean
                .adaptive
                .assert_equivalent(&t.outcome.adaptive)
                .unwrap();
        }
    }

    #[test]
    fn service_reports_shard_and_queue_traffic() {
        let platform = Platform::windows_ia32();
        let mut config = ServiceConfig::for_platform(&platform);
        config.shards = 4;
        let service = ServiceRuntime::with_config(platform, config);
        let specs: Vec<TenantSpec> = (0..6).map(|i| spec(&format!("t{i}"), 2500)).collect();
        let out = service.run(&specs).unwrap();
        assert_eq!(out.tenants.len(), 6);
        assert_eq!(out.shards.len(), 4);
        assert!(out.cache.inserts > 0, "artifacts landed in the cache");
        let occupied: usize = out.shards.iter().map(|s| s.occupancy).sum();
        assert_eq!(
            occupied,
            out.cache.inserts as usize - out.cache.evictions as usize
        );
        assert!(out.host_parallelism >= 1);
        assert!(
            out.dedup_hits > 0,
            "six identical tenants must share artifacts: {:?}",
            out.queue
        );
    }
}
