//! # njc-runtime — tiered adaptive execution with profile-driven overrides
//!
//! The paper's null check placement is a *static* bet: implicit checks are
//! free until a null actually arrives, at which point each one costs a
//! ~1200-cycle hardware trap (IA32). This crate closes the loop the paper
//! leaves open — what to do when the bet loses at run time:
//!
//! 1. **Tier 0** compiles everything at the cheap baseline ("Old Null
//!    Check") and runs it with per-site counters on.
//! 2. A **profile policy** watches the counters through the VM's
//!    [`RuntimeHooks`] channel. A site whose traps-per-execution ratio
//!    exceeds the cost-model break-even (`explicit_null_check /
//!    trap_taken`) is hot-*trapping*; its function is recompiled at the
//!    optimizing tier with that slot in an [`ExplicitOverride`] set, so
//!    phase 2 keeps the check explicit instead of implicit.
//! 3. Recompiles run on a **background worker pool** and land in a
//!    content-addressed [`CodeCache`] (keyed on body hash, configuration,
//!    trap model, and override set, with LRU eviction), then swap in at
//!    the next call entry — heap and observation trace carry through.
//! 4. A site that *stops* trapping is **tiered back down**: its override
//!    is dropped and the implicit (free) form recompiled in, windowed
//!    mid-run and cumulatively at the post-run fixpoint.
//! 5. After the adaptive run, a deterministic **steady-state** run over
//!    the final bodies provides the reproducible measurement.
//!
//! ## Compilation as a service
//!
//! The same machinery scales to many VM instances: [`ServiceRuntime`]
//! runs hundreds of tenants against one [`ShardedCodeCache`] (sharded by
//! body hash, per-shard LRU + frequency-based admission) fed by a
//! [`RecompileQueue`] — priorities are modeled cycles at stake, requests
//! for the same artifact coalesce into one compile installed into every
//! waiting tenant (dedup), the queue is bounded (backpressure) and ages
//! survivors (starvation freedom).
//!
//! ```
//! use njc_arch::Platform;
//! use njc_runtime::{hot_field_workload, TieredRuntime};
//! use njc_vm::Value;
//!
//! let rt = TieredRuntime::new(hot_field_workload(), Platform::windows_ia32());
//! let out = rt.run("main", &[Value::Int(2000), Value::Ref(0)]).unwrap();
//! assert!(out.overrides["hot"].len() == 1, "the trapping slot was overridden");
//! out.reconcile().unwrap();
//! out.verify_convergence().unwrap();
//! ```
//!
//! [`ExplicitOverride`]: njc_core::ExplicitOverride

pub mod cache;
pub mod policy;
pub mod queue;
pub mod shard;
pub mod tenant;
pub mod tiered;
pub mod workload;

pub use cache::{CacheKey, CacheStats, CodeCache, CompiledArtifact};
pub use njc_recover::{RecoveryCounts, RecoveryPolicy, RecoveryStrategy};
pub use njc_vm::{ProfileSnapshot, RuntimeHooks};
pub use policy::{FunctionPlan, ProfilePolicy};
pub use queue::{
    PendingCompile, QueueConfig, QueueStats, RecompileQueue, RecompileRequest, Submitted, Waiter,
};
pub use shard::{ShardStats, ShardedCodeCache};
pub use tenant::{ServiceConfig, ServiceOutcome, ServiceRuntime, TenantOutcome, TenantSpec};
pub use tiered::{RuntimeConfig, RuntimeOutcome, TieredRuntime};
pub use workload::{
    deep_chain_workload, hot_field_workload, many_hot_workload, phase_shift_workload,
    write_hot_workload, PHASE_ALTERNATE, PHASE_CLEAN, PHASE_NULL,
};

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::Platform;
    use njc_ir::AccessKind;
    use njc_vm::Value;

    fn run_adaptive(iters: i64) -> RuntimeOutcome {
        let rt = TieredRuntime::new(hot_field_workload(), Platform::windows_ia32());
        rt.run("main", &[Value::Int(iters), Value::Ref(0)]).unwrap()
    }

    #[test]
    fn adaptive_run_overrides_exactly_the_trapping_slot() {
        let out = run_adaptive(3000);
        let ov = &out.overrides["hot"];
        assert_eq!(ov.len(), 1, "exactly the trapping slot: {ov:?}");
        let m = hot_field_workload();
        let f4 = m.field_offset(m.field(njc_ir::ClassId::new(0), "f4").unwrap());
        assert!(ov.contains(f4, AccessKind::Read));
        out.verify_convergence().unwrap();
        out.reconcile().unwrap();
        // The loop functions both tiered up.
        assert!(out.overrides.contains_key("main"), "hot loop recompiled");
        assert!(
            out.overrides["main"].is_empty(),
            "main has no trapping site"
        );
    }

    #[test]
    fn steady_state_beats_both_static_extremes() {
        use njc_opt::ConfigKind;
        let iters = 3000;
        let out = run_adaptive(iters);
        let p = Platform::windows_ia32();
        let compile_and_run = |kind: ConfigKind| {
            let mut m = hot_field_workload();
            njc_opt::optimize_module(&mut m, &p, &kind.to_config(&p));
            njc_vm::run_module(&m, p, "main", &[Value::Int(iters), Value::Ref(0)]).unwrap()
        };
        let implicit = compile_and_run(ConfigKind::Full);
        let explicit = compile_and_run(ConfigKind::NoNullOptNoTrap);
        // All three agree observationally.
        implicit.assert_equivalent(&out.steady).unwrap();
        explicit.assert_equivalent(&out.steady).unwrap();
        implicit.assert_equivalent(&out.adaptive).unwrap();
        assert!(
            out.steady.stats.cycles < implicit.stats.cycles,
            "adaptive {} !< always-implicit {} (traps should be gone)",
            out.steady.stats.cycles,
            implicit.stats.cycles
        );
        assert!(
            out.steady.stats.cycles < explicit.stats.cycles,
            "adaptive {} !< always-explicit {}",
            out.steady.stats.cycles,
            explicit.stats.cycles
        );
        assert_eq!(out.steady.stats.traps_taken, 0, "no steady-state traps");
    }

    #[test]
    fn rerun_hits_the_code_cache_with_identical_artifacts() {
        let rt = TieredRuntime::new(hot_field_workload(), Platform::windows_ia32());
        let args = [Value::Int(2000), Value::Ref(0)];
        let first = rt.run("main", &args).unwrap();
        let second = rt.run("main", &args).unwrap();
        assert!(first.recompiles.iter().any(|r| !r.cache_hit));
        assert!(
            second.recompiles.iter().all(|r| r.cache_hit),
            "second run must be served from cache: {:?}",
            second.recompiles
        );
        assert!(second.cache.hits > 0);
        // Cache hit and fresh recompile produce byte-identical bodies.
        assert_eq!(first.final_module, second.final_module);
        assert_eq!(first.steady.stats.cycles, second.steady.stats.cycles);
        assert_eq!(first.overrides, second.overrides);
    }

    #[test]
    fn steady_state_is_deterministic_across_runtimes() {
        let a = run_adaptive(2000);
        let b = run_adaptive(2000);
        assert_eq!(a.final_module, b.final_module);
        assert_eq!(a.steady.stats, b.steady.stats);
        assert_eq!(a.steady.trace, b.steady.trace);
        assert_eq!(a.steady.heap_digest, b.steady.heap_digest);
        assert_eq!(a.overrides, b.overrides);
    }

    #[test]
    fn panicking_compile_job_does_not_wedge_the_runtime() {
        // Fault injection: every tier-1 compile of "hot" panics mid-job,
        // as a buggy optimizer pass would. Before the workers recovered
        // poisoned locks, one such panic wedged the whole runtime (the
        // installs mutex stayed poisoned and every later lock().unwrap()
        // cascaded). Now the job's unwind is caught, the function stays
        // at tier 0, and the run completes with identical observable
        // behavior.
        let platform = Platform::windows_ia32();
        let mut config = RuntimeConfig::for_platform(&platform);
        config.panic_on_compile_of = Some("hot");
        let rt = TieredRuntime::with_config(hot_field_workload(), platform, config);
        let args = [Value::Int(3000), Value::Ref(0)];
        let out = rt.run("main", &args).unwrap();
        assert!(out.compile_panics > 0, "the injected panic must fire");
        assert!(
            !out.overrides.contains_key("hot"),
            "no tier-1 install for the panicking function"
        );
        out.reconcile().unwrap();
        out.verify_convergence().unwrap();

        let clean = run_adaptive(3000);
        assert_eq!(clean.compile_panics, 0);
        clean.steady.assert_equivalent(&out.steady).unwrap();
        clean.adaptive.assert_equivalent(&out.adaptive).unwrap();
    }

    #[test]
    fn long_run_swaps_mid_flight() {
        // Enough iterations that detection + recompile + install complete
        // while the loop is still turning. (The smoke gate in runtime_bench
        // retries with larger workloads; here one generous size suffices.)
        let out = run_adaptive(200_000);
        assert!(
            out.mid_run_swaps > 0,
            "expected the tier-1 body to land mid-run"
        );
        assert!(out.recompiles.iter().any(|r| r.mid_run));
        out.reconcile().unwrap();
        out.verify_convergence().unwrap();
    }
}
