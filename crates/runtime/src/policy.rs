//! The profile policy: which functions deserve a tier-1 recompile, and
//! which implicit sites should come back explicit.
//!
//! The decision rule is the paper's trap-cost model inverted. An implicit
//! null check is free until it fires; once a site's observed trap rate
//! exceeds `explicit_null_check / trap_taken` (on IA32, 2/1200 — i.e. a
//! trap every ~600 executions), paying the explicit compare-and-branch on
//! every execution is cheaper than the occasional trap, and the site goes
//! into the function's [`ExplicitOverride`] set for phase 2.

use njc_arch::{CostModel, TrapModel};
use njc_core::ExplicitOverride;
use njc_ir::{AccessKind, FieldId, Function};
use njc_vm::SiteCounters;

/// Tunable thresholds for the tiering decisions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ProfilePolicy {
    /// Traps-per-execution ratio above which an implicit site is judged
    /// hot-trapping. The break-even default is
    /// `cost.explicit_null_check / cost.trap_taken`.
    pub trap_ratio: f64,
    /// Minimum executions of a site's block before judging its trap rate
    /// (avoids promoting on one unlucky early trap).
    pub min_site_executions: u64,
    /// Minimum peak block-execution count for a function to be considered
    /// hot (and recompiled at the optimizing tier even with no trapping
    /// sites). Peak rather than entry count so a function entered once but
    /// looping forever still tiers up.
    pub hot_function_calls: u64,
    /// Minimum executions *since the current body was installed* before an
    /// overridden site may be judged quiesced and tiered back down. A
    /// short calm window is not evidence; a long one is.
    pub quiesce_executions: u64,
}

impl ProfilePolicy {
    /// Break-even thresholds for `cost` (paper §2.1's trap-cost model).
    pub fn from_cost(cost: &CostModel) -> Self {
        ProfilePolicy {
            trap_ratio: cost.explicit_null_check as f64 / cost.trap_taken as f64,
            min_site_executions: 16,
            hot_function_calls: 64,
            quiesce_executions: 256,
        }
    }
}

/// One function's verdict for a single profile poll.
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionPlan {
    /// Function index in the module.
    pub index: usize,
    /// Whether the function earned a tier-1 recompile.
    pub hot: bool,
    /// Slot keys whose implicit checks should be forced explicit.
    pub overrides: ExplicitOverride,
}

fn delta<K: Ord + Copy>(
    current: &std::collections::BTreeMap<K, u64>,
    baseline: Option<&std::collections::BTreeMap<K, u64>>,
    key: K,
) -> u64 {
    let cur = current.get(&key).copied().unwrap_or(0);
    let base = baseline.and_then(|b| b.get(&key)).copied().unwrap_or(0);
    cur.saturating_sub(base)
}

impl ProfilePolicy {
    /// Judges one function against the profile.
    ///
    /// `body` must be the body the counters were collected against (the
    /// currently installed tier); `baseline` is the counter snapshot taken
    /// when that body was installed, so only the *delta* — traps the
    /// current tier actually took — drives the decision. Counter keys that
    /// no longer resolve in `body` (stale, from an earlier tier) are
    /// ignored.
    pub fn assess(
        &self,
        index: usize,
        body: &Function,
        field_offset: &dyn Fn(FieldId) -> u64,
        current: &SiteCounters,
        baseline: Option<&SiteCounters>,
    ) -> FunctionPlan {
        let fi = index as u32;
        let executions = current
            .blocks
            .keys()
            .filter(|(f, _)| *f == fi)
            .map(|&k| delta(&current.blocks, baseline.map(|b| &b.blocks), k))
            .max()
            .unwrap_or(0);
        let mut overrides = ExplicitOverride::new();
        for &(f, b, i) in current.traps.keys() {
            if f != fi {
                continue;
            }
            let traps = delta(&current.traps, baseline.map(|s| &s.traps), (f, b, i));
            if traps == 0 {
                continue;
            }
            let block_execs = delta(&current.blocks, baseline.map(|s| &s.blocks), (f, b));
            if block_execs < self.min_site_executions {
                continue;
            }
            if (traps as f64) / (block_execs as f64) <= self.trap_ratio {
                continue;
            }
            // Resolve the trapping instruction to its slot key, skipping
            // indices stale against the current body.
            let Some(block) = body.blocks().get(b as usize) else {
                continue;
            };
            let Some(inst) = block.insts.get(i as usize) else {
                continue;
            };
            let Some(sa) = inst.slot_access(field_offset) else {
                continue;
            };
            if let Some(off) = sa.offset {
                overrides.insert(off, sa.kind);
            }
        }
        FunctionPlan {
            index,
            hot: executions >= self.hot_function_calls || !overrides.is_empty(),
            overrides,
        }
    }

    /// Maps each explicit check id in `body` to the slot key of the first
    /// access it guards. Intra-block only: a check is associated with the
    /// first subsequent slot access of its variable in the same block,
    /// which is the access whose implicit form would have trapped. Checks
    /// that guard nothing resolvable are absent (their caught nulls are
    /// then simply not attributed — a conservative loss).
    pub fn check_slot_map(
        body: &Function,
        field_offset: &dyn Fn(FieldId) -> u64,
    ) -> std::collections::BTreeMap<u32, (u64, AccessKind)> {
        let mut map = std::collections::BTreeMap::new();
        for block in body.blocks() {
            // Last pending explicit check per variable, not yet attributed.
            let mut pending: std::collections::BTreeMap<u32, u32> = Default::default();
            for inst in &block.insts {
                if let njc_ir::Inst::NullCheck {
                    var,
                    kind: njc_ir::NullCheckKind::Explicit,
                    id,
                } = inst
                {
                    pending.insert(var.index() as u32, id.0);
                    continue;
                }
                if let Some(sa) = inst.slot_access(field_offset) {
                    if let (Some(off), Some(cid)) =
                        (sa.offset, pending.remove(&(sa.base.index() as u32)))
                    {
                        map.entry(cid).or_insert((off, sa.kind));
                    }
                }
            }
        }
        map
    }

    /// Tier-down judgment for one already-overridden function: which of
    /// `installed`'s override slots still earn their explicit check?
    ///
    /// Evidence of continued null arrivals in the window since install is
    /// the sum of nulls *caught* by the slot's explicit check
    /// ([`SiteCounters::check_nulls`], resolved through `body`'s
    /// check→slot map) and hardware traps attributed to the slot
    /// ([`SiteCounters::trap_slots`]). A slot whose window arrival rate
    /// has fallen to or below the break-even ratio is dropped — its
    /// implicit form is cheaper again. Until the window holds at least
    /// [`quiesce_executions`](ProfilePolicy::quiesce_executions)
    /// executions, everything is retained: silence over a short window
    /// proves nothing.
    pub fn assess_tier_down(
        &self,
        index: usize,
        body: &Function,
        field_offset: &dyn Fn(FieldId) -> u64,
        installed: &ExplicitOverride,
        current: &SiteCounters,
        baseline: Option<&SiteCounters>,
    ) -> ExplicitOverride {
        let fi = index as u32;
        let executions = current
            .blocks
            .keys()
            .filter(|(f, _)| *f == fi)
            .map(|&k| delta(&current.blocks, baseline.map(|b| &b.blocks), k))
            .max()
            .unwrap_or(0);
        if executions < self.quiesce_executions {
            return installed.clone();
        }
        let check_slots = Self::check_slot_map(body, field_offset);
        let mut nulls: std::collections::BTreeMap<(u64, AccessKind), u64> = Default::default();
        for &(f, cid) in current.check_nulls.keys() {
            if f != fi {
                continue;
            }
            let caught = delta(
                &current.check_nulls,
                baseline.map(|b| &b.check_nulls),
                (f, cid),
            );
            if let Some(&slot) = check_slots.get(&cid) {
                *nulls.entry(slot).or_insert(0) += caught;
            }
        }
        for &(f, off, kind) in current.trap_slots.keys() {
            if f != fi {
                continue;
            }
            let traps = delta(
                &current.trap_slots,
                baseline.map(|b| &b.trap_slots),
                (f, off, kind),
            );
            *nulls.entry((off, kind)).or_insert(0) += traps;
        }
        let mut retained = ExplicitOverride::new();
        for (off, kind) in installed.keys() {
            let arrivals = nulls.get(&(off, kind)).copied().unwrap_or(0);
            if (arrivals as f64) / (executions as f64) > self.trap_ratio {
                retained.insert(off, kind);
            }
        }
        retained
    }

    /// Whole-run judgment from *cumulative* counters, for the post-run
    /// fixpoint: the override set the run's total null-arrival history
    /// justifies, independent of when (or whether) any mid-run swap
    /// landed.
    ///
    /// The timing trap this dodges: once a site is compiled explicit it
    /// stops trapping, so cumulative *traps* alone under-count null
    /// arrivals by however long the override was installed. Arrivals here
    /// are traps by slot key ([`SiteCounters::trap_slots`], stable across
    /// every tier's body coordinates) **plus** nulls caught by explicit
    /// checks ([`SiteCounters::check_nulls`], resolved through the
    /// check→slot maps of the final and tier-0 bodies, final first).
    /// Their sum is the run's total null-arrival count for the slot —
    /// the same number no matter which bodies were installed when.
    ///
    /// The denominator is the function's peak cumulative block count — an
    /// over-estimate of any one site's executions, hence biased *against*
    /// overriding: a slot must clear break-even against the hottest block
    /// to stay explicit. That conservatism is deliberate; the paper's bet
    /// defaults to implicit.
    ///
    /// Only slots `trap` can actually make implicit are eligible: on a
    /// writes-only model (AIX), a read slot's checks stay explicit by
    /// phase-2 legality no matter what, so recording an override for one
    /// would claim credit the override machinery never earns.
    pub fn assess_cumulative(
        &self,
        index: usize,
        tier0_body: &Function,
        final_body: &Function,
        field_offset: &dyn Fn(FieldId) -> u64,
        trap: &TrapModel,
        counters: &SiteCounters,
    ) -> FunctionPlan {
        let fi = index as u32;
        let executions = counters
            .blocks
            .iter()
            .filter(|((f, _), _)| *f == fi)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0);
        let final_map = Self::check_slot_map(final_body, field_offset);
        let tier0_map = Self::check_slot_map(tier0_body, field_offset);
        let mut arrivals: std::collections::BTreeMap<(u64, AccessKind), u64> = Default::default();
        for (&(f, cid), &caught) in &counters.check_nulls {
            if f != fi {
                continue;
            }
            if let Some(&slot) = final_map.get(&cid).or_else(|| tier0_map.get(&cid)) {
                *arrivals.entry(slot).or_insert(0) += caught;
            }
        }
        for (&(f, off, kind), &traps) in &counters.trap_slots {
            if f != fi {
                continue;
            }
            *arrivals.entry((off, kind)).or_insert(0) += traps;
        }
        let mut overrides = ExplicitOverride::new();
        if executions >= self.min_site_executions {
            for (&(off, kind), &n) in &arrivals {
                if trap.access_traps(kind, Some(off))
                    && (n as f64) / (executions as f64) > self.trap_ratio
                {
                    overrides.insert(off, kind);
                }
            }
        }
        FunctionPlan {
            index,
            hot: executions >= self.hot_function_calls || !overrides.is_empty(),
            overrides,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::Platform;
    use njc_ir::parse_function;

    fn body() -> Function {
        parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
        )
        .unwrap()
    }

    fn policy() -> ProfilePolicy {
        ProfilePolicy::from_cost(&Platform::windows_ia32().cost)
    }

    #[test]
    fn break_even_ratio_comes_from_the_cost_model() {
        let cost = Platform::windows_ia32().cost;
        let p = policy();
        assert!(
            (p.trap_ratio - cost.explicit_null_check as f64 / cost.trap_taken as f64).abs() < 1e-12
        );
        assert!(p.trap_ratio < 0.01, "traps are three orders costlier");
    }

    #[test]
    fn hot_trapping_site_is_promoted_and_cold_one_is_not() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 1000);
        counters.traps.insert((0, 0, 0), 500);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.hot);
        assert!(plan.overrides.contains(0, njc_ir::AccessKind::Read));

        // One trap in a thousand executions sits below 2/1200.
        counters.traps.insert((0, 0, 0), 1);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.overrides.is_empty(), "below break-even stays implicit");
    }

    #[test]
    fn baseline_subtraction_ignores_previous_tier_history() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 2000);
        counters.traps.insert((0, 0, 0), 500);
        // Baseline equal to current: the new tier has seen nothing yet.
        let plan = policy().assess(0, &f, &offset, &counters, Some(&counters));
        assert!(plan.overrides.is_empty());
        assert!(!plan.hot);
    }

    #[test]
    fn too_few_executions_withhold_judgment() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 4);
        counters.traps.insert((0, 0, 0), 4);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.overrides.is_empty(), "sample too small");
    }

    /// A body with an explicit check guarding the field access, as a
    /// tier-1 compile with an override would produce.
    fn checked_body() -> Function {
        parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  nullcheck v0\n  v1 = getfield v0, field0\n  return v1\n}",
        )
        .unwrap()
    }

    #[test]
    fn check_slot_map_attributes_first_guarded_access() {
        let f = checked_body();
        let offset = |_: FieldId| 8u64;
        let map = ProfilePolicy::check_slot_map(&f, &offset);
        assert_eq!(map.len(), 1);
        let (&_cid, &slot) = map.iter().next().unwrap();
        assert_eq!(slot, (8, AccessKind::Read));
    }

    #[test]
    fn quiesced_override_is_dropped_and_active_one_retained() {
        let f = checked_body();
        let offset = |_: FieldId| 0u64;
        let p = policy();
        let cid = *ProfilePolicy::check_slot_map(&f, &offset)
            .keys()
            .next()
            .unwrap();
        let mut installed = ExplicitOverride::new();
        installed.insert(0, AccessKind::Read);

        // Long calm window: the slot caught nothing since install.
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 10_000);
        let retained = p.assess_tier_down(0, &f, &offset, &installed, &counters, None);
        assert!(retained.is_empty(), "quiesced site tiers down");

        // Same window but the explicit check is still catching nulls well
        // above break-even: retained.
        counters.check_nulls.insert((0, cid), 5_000);
        let retained = p.assess_tier_down(0, &f, &offset, &installed, &counters, None);
        assert!(retained.contains(0, AccessKind::Read));

        // Short window: silence proves nothing, retain.
        let mut short = SiteCounters::default();
        short.blocks.insert((0, 0), p.quiesce_executions - 1);
        let retained = p.assess_tier_down(0, &f, &offset, &installed, &short, None);
        assert!(retained.contains(0, AccessKind::Read), "window too short");
    }

    #[test]
    fn cumulative_assessment_sums_traps_and_caught_nulls() {
        // Half the arrivals trapped (pre-swap, implicit body), half were
        // caught by the installed explicit check — the cumulative verdict
        // must see their sum, not either part.
        let tier0 = body();
        let tier1 = checked_body();
        let offset = |_: FieldId| 0u64;
        let p = policy();
        let cid = *ProfilePolicy::check_slot_map(&tier1, &offset)
            .keys()
            .next()
            .unwrap();
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 1_000);
        counters.trap_slots.insert((0, 0, AccessKind::Read), 250);
        counters.check_nulls.insert((0, cid), 250);
        let plan = p.assess_cumulative(
            0,
            &tier0,
            &tier1,
            &offset,
            &TrapModel::windows_ia32(),
            &counters,
        );
        assert!(plan.overrides.contains(0, AccessKind::Read));

        // Either half alone is still above break-even here, so shrink to
        // a rate where only the *sum* clears the ratio: 2 + 2 arrivals
        // in 1000 executions vs break-even 1.67/1000.
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 1_000);
        counters.trap_slots.insert((0, 0, AccessKind::Read), 1);
        counters.check_nulls.insert((0, cid), 1);
        let plan = p.assess_cumulative(
            0,
            &tier0,
            &tier1,
            &offset,
            &TrapModel::windows_ia32(),
            &counters,
        );
        assert!(
            plan.overrides.contains(0, AccessKind::Read),
            "1+1 arrivals per 1000 execs beats 2/1200 only summed"
        );

        // Fully quiesced history: no override, plain hotness only.
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 1_000);
        let plan = p.assess_cumulative(
            0,
            &tier0,
            &tier1,
            &offset,
            &TrapModel::windows_ia32(),
            &counters,
        );
        assert!(plan.overrides.is_empty());
        assert!(plan.hot, "still hot by execution count");
    }
}
