//! The profile policy: which functions deserve a tier-1 recompile, and
//! which implicit sites should come back explicit.
//!
//! The decision rule is the paper's trap-cost model inverted. An implicit
//! null check is free until it fires; once a site's observed trap rate
//! exceeds `explicit_null_check / trap_taken` (on IA32, 2/1200 — i.e. a
//! trap every ~600 executions), paying the explicit compare-and-branch on
//! every execution is cheaper than the occasional trap, and the site goes
//! into the function's [`ExplicitOverride`] set for phase 2.

use njc_arch::CostModel;
use njc_core::ExplicitOverride;
use njc_ir::{FieldId, Function};
use njc_vm::SiteCounters;

/// Tunable thresholds for the tiering decisions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ProfilePolicy {
    /// Traps-per-execution ratio above which an implicit site is judged
    /// hot-trapping. The break-even default is
    /// `cost.explicit_null_check / cost.trap_taken`.
    pub trap_ratio: f64,
    /// Minimum executions of a site's block before judging its trap rate
    /// (avoids promoting on one unlucky early trap).
    pub min_site_executions: u64,
    /// Minimum peak block-execution count for a function to be considered
    /// hot (and recompiled at the optimizing tier even with no trapping
    /// sites). Peak rather than entry count so a function entered once but
    /// looping forever still tiers up.
    pub hot_function_calls: u64,
}

impl ProfilePolicy {
    /// Break-even thresholds for `cost` (paper §2.1's trap-cost model).
    pub fn from_cost(cost: &CostModel) -> Self {
        ProfilePolicy {
            trap_ratio: cost.explicit_null_check as f64 / cost.trap_taken as f64,
            min_site_executions: 16,
            hot_function_calls: 64,
        }
    }
}

/// One function's verdict for a single profile poll.
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionPlan {
    /// Function index in the module.
    pub index: usize,
    /// Whether the function earned a tier-1 recompile.
    pub hot: bool,
    /// Slot keys whose implicit checks should be forced explicit.
    pub overrides: ExplicitOverride,
}

fn delta<K: Ord + Copy>(
    current: &std::collections::BTreeMap<K, u64>,
    baseline: Option<&std::collections::BTreeMap<K, u64>>,
    key: K,
) -> u64 {
    let cur = current.get(&key).copied().unwrap_or(0);
    let base = baseline.and_then(|b| b.get(&key)).copied().unwrap_or(0);
    cur.saturating_sub(base)
}

impl ProfilePolicy {
    /// Judges one function against the profile.
    ///
    /// `body` must be the body the counters were collected against (the
    /// currently installed tier); `baseline` is the counter snapshot taken
    /// when that body was installed, so only the *delta* — traps the
    /// current tier actually took — drives the decision. Counter keys that
    /// no longer resolve in `body` (stale, from an earlier tier) are
    /// ignored.
    pub fn assess(
        &self,
        index: usize,
        body: &Function,
        field_offset: &dyn Fn(FieldId) -> u64,
        current: &SiteCounters,
        baseline: Option<&SiteCounters>,
    ) -> FunctionPlan {
        let fi = index as u32;
        let executions = current
            .blocks
            .keys()
            .filter(|(f, _)| *f == fi)
            .map(|&k| delta(&current.blocks, baseline.map(|b| &b.blocks), k))
            .max()
            .unwrap_or(0);
        let mut overrides = ExplicitOverride::new();
        for &(f, b, i) in current.traps.keys() {
            if f != fi {
                continue;
            }
            let traps = delta(&current.traps, baseline.map(|s| &s.traps), (f, b, i));
            if traps == 0 {
                continue;
            }
            let block_execs = delta(&current.blocks, baseline.map(|s| &s.blocks), (f, b));
            if block_execs < self.min_site_executions {
                continue;
            }
            if (traps as f64) / (block_execs as f64) <= self.trap_ratio {
                continue;
            }
            // Resolve the trapping instruction to its slot key, skipping
            // indices stale against the current body.
            let Some(block) = body.blocks().get(b as usize) else {
                continue;
            };
            let Some(inst) = block.insts.get(i as usize) else {
                continue;
            };
            let Some(sa) = inst.slot_access(field_offset) else {
                continue;
            };
            if let Some(off) = sa.offset {
                overrides.insert(off, sa.kind);
            }
        }
        FunctionPlan {
            index,
            hot: executions >= self.hot_function_calls || !overrides.is_empty(),
            overrides,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::Platform;
    use njc_ir::parse_function;

    fn body() -> Function {
        parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
        )
        .unwrap()
    }

    fn policy() -> ProfilePolicy {
        ProfilePolicy::from_cost(&Platform::windows_ia32().cost)
    }

    #[test]
    fn break_even_ratio_comes_from_the_cost_model() {
        let cost = Platform::windows_ia32().cost;
        let p = policy();
        assert!(
            (p.trap_ratio - cost.explicit_null_check as f64 / cost.trap_taken as f64).abs() < 1e-12
        );
        assert!(p.trap_ratio < 0.01, "traps are three orders costlier");
    }

    #[test]
    fn hot_trapping_site_is_promoted_and_cold_one_is_not() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 1000);
        counters.traps.insert((0, 0, 0), 500);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.hot);
        assert!(plan.overrides.contains(0, njc_ir::AccessKind::Read));

        // One trap in a thousand executions sits below 2/1200.
        counters.traps.insert((0, 0, 0), 1);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.overrides.is_empty(), "below break-even stays implicit");
    }

    #[test]
    fn baseline_subtraction_ignores_previous_tier_history() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 2000);
        counters.traps.insert((0, 0, 0), 500);
        // Baseline equal to current: the new tier has seen nothing yet.
        let plan = policy().assess(0, &f, &offset, &counters, Some(&counters));
        assert!(plan.overrides.is_empty());
        assert!(!plan.hot);
    }

    #[test]
    fn too_few_executions_withhold_judgment() {
        let f = body();
        let offset = |_: FieldId| 0u64;
        let mut counters = SiteCounters::default();
        counters.blocks.insert((0, 0), 4);
        counters.traps.insert((0, 0, 0), 4);
        let plan = policy().assess(0, &f, &offset, &counters, None);
        assert!(plan.overrides.is_empty(), "sample too small");
    }
}
