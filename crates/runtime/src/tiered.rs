//! The tiered execution manager: profile → recompile → swap, mid-run.
//!
//! Tier 0 compiles the whole module at a cheap baseline configuration
//! (Whaley elimination + trivial trap conversion, the paper's "Old Null
//! Check") with site counters on, and starts the VM with a
//! [`RuntimeHooks`] control surface attached. A controller thread polls
//! the published profile; when the [`ProfilePolicy`] finds a hot function
//! — or, the interesting case, a hot *trapping* implicit site — the
//! function is recompiled at the optimizing tier with the trapping slots
//! forced explicit via [`ExplicitOverride`], on a background worker pool.
//! The finished body is installed into the swap table and takes effect at
//! the next call entry, heap and observation trace carrying straight
//! through.
//!
//! After the adaptive run, any outstanding policy verdict is compiled
//! synchronously (so the tiering always reaches its fixpoint), and a
//! second, *measurement* run executes the final bodies with no adaptation
//! — that run is fully deterministic, which is what the steady-state
//! benchmark reports.

use std::collections::{BTreeMap, HashMap};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use njc_arch::Platform;
use njc_core::ExplicitOverride;
use njc_ir::{BlockId, CheckId, Function, FunctionId, Module};
use njc_observe::{reconcile_tiered, FunctionTrace, ModuleTrace, RecompileEvent};
use njc_opt::{
    optimize_function_overridden, optimize_module_traced, prepare_module, ConfigKind, OptConfig,
};
use njc_vm::{Fault, Outcome, RuntimeHooks, SiteCounters, Value, Vm, VmConfig};

use crate::cache::{CacheKey, CacheStats, CodeCache, CompiledArtifact};
use crate::policy::ProfilePolicy;

/// Knobs of the tiered loop.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RuntimeConfig {
    /// The profile policy (thresholds from the platform's cost model).
    pub policy: ProfilePolicy,
    /// Safe points between profile publications ([`RuntimeHooks::new`]).
    pub snapshot_interval: u64,
    /// Code cache capacity, in artifacts.
    pub cache_capacity: usize,
    /// Worker threads for background recompilation; also threaded into
    /// the tier compiles' [`OptConfig::threads`].
    pub threads: usize,
    /// The baseline tier every function starts in.
    pub tier0: ConfigKind,
    /// The optimizing tier hot functions are recompiled at.
    pub tier1: ConfigKind,
    /// Run the interprocedural non-nullness inference (`njc-interproc`) in
    /// every tier compile. Mid-run recompiles re-infer over the prepared
    /// module, so swapped-in bodies carry the same entry assumptions the
    /// single-shot compile would.
    pub interproc: bool,
    /// VM limits for both the adaptive and the measurement run.
    pub vm: VmConfig,
}

impl RuntimeConfig {
    /// Defaults for `platform`: break-even thresholds from its cost model,
    /// Old Null Check as tier 0, the full pipeline as tier 1.
    pub fn for_platform(platform: &Platform) -> Self {
        RuntimeConfig {
            policy: ProfilePolicy::from_cost(&platform.cost),
            snapshot_interval: 32,
            cache_capacity: 32,
            threads: 2,
            tier0: ConfigKind::OldNullCheck,
            tier1: ConfigKind::Full,
            interproc: false,
            vm: VmConfig::default(),
        }
    }
}

/// What one tiered run produced.
#[derive(Clone, Debug)]
pub struct RuntimeOutcome {
    /// The adaptive run: tier 0 with counters, swaps landing mid-run.
    /// Timing-dependent (when a swap lands shifts the cycle total) — use
    /// [`RuntimeOutcome::steady`] for reproducible measurements.
    pub adaptive: Outcome,
    /// The deterministic steady-state run over the final bodies.
    pub steady: Outcome,
    /// Every recompile, in completion order (mid-run installs first, then
    /// the post-run fixpoint pass).
    pub recompiles: Vec<RecompileEvent>,
    /// Code cache counters after the run.
    pub cache: CacheStats,
    /// Final override set per recompiled function name.
    pub overrides: BTreeMap<String, ExplicitOverride>,
    /// Calls that entered a swapped body during the adaptive run.
    pub mid_run_swaps: u64,
    /// The module the steady run executed: tier-0 bodies with every
    /// recompiled function replaced by its final tier-1 body.
    pub final_module: Module,
    /// Tier-0 provenance for the whole module.
    pub tier0_trace: ModuleTrace,
    /// Every tier's provenance per function, install order (tier 0
    /// first). Input to tiered reconciliation.
    pub tier_traces: BTreeMap<String, Vec<FunctionTrace>>,
}

impl RuntimeOutcome {
    /// Tiered reconciliation of the *adaptive* run: every hardware trap
    /// and every executed explicit check must resolve to a provenance
    /// record in some installed tier of its function.
    ///
    /// # Errors
    /// One line per unexplained observation.
    pub fn reconcile(&self) -> Result<(), Vec<String>> {
        let mut failures = Vec::new();
        for fi in 0..self.final_module.num_functions() {
            let name = self.final_module.function(FunctionId::new(fi)).name();
            let Some(tiers) = self.tier_traces.get(name) else {
                failures.push(format!("{name}: no tier traces"));
                continue;
            };
            let refs: Vec<&FunctionTrace> = tiers.iter().collect();
            let traps: Vec<(BlockId, usize)> = self
                .adaptive
                .site_counts
                .traps
                .keys()
                .filter(|(f, _, _)| *f as usize == fi)
                .map(|&(_, b, i)| (BlockId::new(b as usize), i as usize))
                .collect();
            let checks: Vec<CheckId> = self
                .adaptive
                .site_counts
                .explicit_checks
                .keys()
                .filter(|(f, _)| *f as usize == fi)
                .map(|&(_, id)| CheckId(id))
                .collect();
            if let Err(mut missing) = reconcile_tiered(&refs, &traps, &checks) {
                failures.append(&mut missing);
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }

    /// Verifies the tiering converged: in every overridden function's
    /// final body, each override slot still has its access, *none* of
    /// those accesses is a marked implicit site, and the tier's provenance
    /// records the override-caused explicit checks.
    ///
    /// # Errors
    /// One line per violated condition.
    pub fn verify_convergence(&self) -> Result<(), Vec<String>> {
        use njc_observe::{CheckEvent, ExplicitCause};
        let mut failures = Vec::new();
        for (name, ov) in &self.overrides {
            if ov.is_empty() {
                continue;
            }
            let Some(fid) = self.final_module.function_by_name(name) else {
                failures.push(format!("{name}: overridden function missing"));
                continue;
            };
            let body = self.final_module.function(fid);
            let offset = |f| self.final_module.field_offset(f);
            let mut seen = ExplicitOverride::new();
            for block in body.blocks() {
                for inst in &block.insts {
                    let Some(sa) = inst.slot_access(offset) else {
                        continue;
                    };
                    let Some(off) = sa.offset else { continue };
                    if !ov.contains(off, sa.kind) {
                        continue;
                    }
                    seen.insert(off, sa.kind);
                    if inst.is_exception_site() {
                        failures.push(format!(
                            "{name}: override slot (+{off}, {:?}) still carries an implicit site",
                            sa.kind
                        ));
                    }
                }
            }
            for (off, kind) in ov.keys() {
                if !seen.contains(off, kind) {
                    failures.push(format!(
                        "{name}: override slot (+{off}, {kind:?}) has no access in the final body"
                    ));
                }
            }
            let override_events = self
                .tier_traces
                .get(name)
                .and_then(|tiers| tiers.last())
                .map(|t| {
                    t.events
                        .iter()
                        .filter(|e| {
                            matches!(
                                e,
                                CheckEvent::Phase2Explicit {
                                    cause: ExplicitCause::Override,
                                    ..
                                }
                            )
                        })
                        .count()
                })
                .unwrap_or(0);
            if override_events == 0 {
                failures.push(format!(
                    "{name}: no override-caused explicit check in the final tier's provenance"
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }
}

/// A recompile request from the controller to the worker pool.
struct Job {
    index: usize,
    overrides: ExplicitOverride,
}

/// A completed install, recorded by the worker that performed it.
struct Install {
    index: usize,
    overrides: ExplicitOverride,
    artifact: Arc<CompiledArtifact>,
    event: RecompileEvent,
    /// Counter snapshot at install time — the baseline the policy
    /// subtracts so only the *new* tier's behaviour is judged.
    baseline: SiteCounters,
}

/// The tiered execution manager. The code cache persists across runs, so
/// repeating a run hits instead of recompiling.
#[derive(Debug)]
pub struct TieredRuntime {
    module: Module,
    platform: Platform,
    config: RuntimeConfig,
    cache: Mutex<CodeCache>,
}

impl TieredRuntime {
    /// A runtime for `module` with [`RuntimeConfig::for_platform`] knobs.
    pub fn new(module: Module, platform: Platform) -> Self {
        let config = RuntimeConfig::for_platform(&platform);
        Self::with_config(module, platform, config)
    }

    /// A runtime with explicit knobs.
    pub fn with_config(module: Module, platform: Platform, config: RuntimeConfig) -> Self {
        TieredRuntime {
            module,
            platform,
            cache: Mutex::new(CodeCache::new(config.cache_capacity)),
            config,
        }
    }

    /// Code cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap().stats()
    }

    fn tier_config(&self, kind: ConfigKind) -> OptConfig {
        OptConfig {
            threads: self.config.threads.max(1),
            interproc: self.config.interproc,
            ..kind.to_config(&self.platform)
        }
    }

    /// Compiles function `index` of the prepared tier-1 module with
    /// `overrides`, through the code cache. Returns the artifact and
    /// whether it was a cache hit.
    fn compile_function(
        &self,
        tier1_base: &Module,
        cfg1: &OptConfig,
        index: usize,
        overrides: &ExplicitOverride,
    ) -> (Arc<CompiledArtifact>, bool) {
        let fid = FunctionId::new(index);
        let key = CacheKey::new(
            tier1_base.function(fid),
            self.config.tier1,
            cfg1.compiler_trap,
            overrides,
        );
        if let Some(artifact) = self.cache.lock().unwrap().get(&key) {
            return (artifact, true);
        }
        let mut func = tier1_base.function(fid).clone();
        let (_stats, trace) = optimize_function_overridden(
            tier1_base,
            &self.platform,
            cfg1,
            &mut func,
            Some(overrides),
            true,
        );
        let artifact = Arc::new(CompiledArtifact {
            body: Arc::new(func),
            trace: trace.expect("traced compile yields a trace"),
        });
        self.cache
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&artifact));
        (artifact, false)
    }

    /// Runs `entry(args)` through the profile → recompile → swap loop,
    /// then once more (steady state) on the final bodies.
    ///
    /// # Errors
    /// Propagates VM [`Fault`]s from either run.
    pub fn run(&self, entry: &str, args: &[Value]) -> Result<RuntimeOutcome, Fault> {
        let platform = self.platform;
        let cfg0 = self.tier_config(self.config.tier0);
        let cfg1 = self.tier_config(self.config.tier1);

        let mut tier0 = self.module.clone();
        let (_s0, tier0_trace) = optimize_module_traced(&mut tier0, &platform, &cfg0);
        // The recompile base: module-level preparation (intrinsics,
        // inlining) applied once; per-function optimization happens per
        // recompile, byte-identical to a whole-module tier-1 compile.
        let mut tier1_base = self.module.clone();
        prepare_module(&mut tier1_base, &platform, &cfg1);

        let hooks = RuntimeHooks::new(self.config.snapshot_interval);
        let vm_config = VmConfig {
            count_sites: true,
            ..self.config.vm
        };

        let installs: Mutex<Vec<Install>> = Mutex::new(Vec::new());
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Mutex::new(job_rx);
        let mut requested: HashMap<usize, ExplicitOverride> = HashMap::new();

        let tier0_ref = &tier0;
        let tier1_ref = &tier1_base;
        let cfg1_ref = &cfg1;
        let hooks_ref = &hooks;
        let installs_ref = &installs;
        let job_rx_ref = &job_rx;

        let adaptive = std::thread::scope(|scope| -> Result<Outcome, Fault> {
            let vm_handle = scope.spawn(move || {
                Vm::new(tier0_ref, platform)
                    .with_config(vm_config)
                    .with_hooks(hooks_ref)
                    .run(entry, args)
            });
            let workers: Vec<_> = (0..self.config.threads.max(1))
                .map(|_| {
                    scope.spawn(move || {
                        loop {
                            // Holding the lock across recv serializes job
                            // pickup; recompiles are rare enough that this
                            // is simpler than a shared deque.
                            let job = job_rx_ref.lock().unwrap().recv();
                            let Ok(job) = job else { break };
                            let (artifact, cache_hit) = self.compile_function(
                                tier1_ref,
                                cfg1_ref,
                                job.index,
                                &job.overrides,
                            );
                            let snap = hooks_ref.snapshot();
                            hooks_ref.install(job.index as u32, Arc::clone(&artifact.body));
                            let event = RecompileEvent {
                                function: tier1_ref
                                    .function(FunctionId::new(job.index))
                                    .name()
                                    .to_string(),
                                to_config: cfg1_ref.name.to_string(),
                                overrides: job.overrides.len(),
                                cache_hit,
                                mid_run: !hooks_ref.is_finished(),
                                at_calls: snap.calls,
                            };
                            installs_ref.lock().unwrap().push(Install {
                                index: job.index,
                                overrides: job.overrides,
                                artifact,
                                event,
                                baseline: snap.counters,
                            });
                        }
                    })
                })
                .collect();

            // Controller: poll the profile, plan, dispatch. The second
            // condition covers a panicking VM thread, whose hooks would
            // otherwise never be marked finished.
            while !hooks.is_finished() && !vm_handle.is_finished() {
                let snap = hooks.snapshot();
                let installed = installs.lock().unwrap();
                for fi in 0..tier0.num_functions() {
                    let latest = installed.iter().rev().find(|i| i.index == fi);
                    let body: &Function = latest
                        .map(|i| &*i.artifact.body)
                        .unwrap_or_else(|| tier0.function(FunctionId::new(fi)));
                    let plan = self.config.policy.assess(
                        fi,
                        body,
                        &|f| self.module.field_offset(f),
                        &snap.counters,
                        latest.map(|i| &i.baseline),
                    );
                    if !plan.hot {
                        continue;
                    }
                    let mut want = requested.get(&fi).cloned().unwrap_or_default();
                    let mut grew = false;
                    for (off, kind) in plan.overrides.keys() {
                        grew |= want.insert(off, kind);
                    }
                    if grew || !requested.contains_key(&fi) {
                        requested.insert(fi, want.clone());
                        let _ = job_tx.send(Job {
                            index: fi,
                            overrides: want,
                        });
                    }
                }
                drop(installed);
                std::thread::sleep(Duration::from_micros(200));
            }
            drop(job_tx); // close the channel: workers drain, then exit
            let out = vm_handle
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
            for w in workers {
                w.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
            out
        })?;

        let mid_run_swaps = hooks.swapped_calls();
        let installs = installs.into_inner().unwrap();

        // Per-function running state: final body, overrides, tier traces.
        struct FuncState {
            body: Option<Arc<Function>>,
            overrides: ExplicitOverride,
            baseline: Option<SiteCounters>,
            traces: Vec<FunctionTrace>,
        }
        let mut state: Vec<FuncState> = (0..tier0.num_functions())
            .map(|fi| {
                let name = tier0.function(FunctionId::new(fi)).name();
                FuncState {
                    body: None,
                    overrides: ExplicitOverride::new(),
                    baseline: None,
                    traces: tier0_trace.function(name).cloned().into_iter().collect(),
                }
            })
            .collect();
        let mut recompiles = Vec::new();
        for install in installs {
            let st = &mut state[install.index];
            st.body = Some(Arc::clone(&install.artifact.body));
            st.overrides = install.overrides;
            st.baseline = Some(install.baseline);
            st.traces.push(install.artifact.trace.clone());
            recompiles.push(install.event);
        }

        // Fixpoint pass: the run may have ended before the controller saw
        // the final profile. Assess once more against the complete
        // counters and compile anything outstanding (synchronously — no VM
        // left to swap into, so these are recorded with `mid_run: false`).
        let final_snap = hooks.snapshot();
        for (fi, st) in state.iter_mut().enumerate() {
            let body: &Function = st
                .body
                .as_deref()
                .unwrap_or_else(|| tier0.function(FunctionId::new(fi)));
            let plan = self.config.policy.assess(
                fi,
                body,
                &|f| self.module.field_offset(f),
                &final_snap.counters,
                st.baseline.as_ref(),
            );
            if !plan.hot {
                continue;
            }
            let mut want = st.overrides.clone();
            let mut grew = false;
            for (off, kind) in plan.overrides.keys() {
                grew |= want.insert(off, kind);
            }
            if !grew && st.body.is_some() {
                continue; // already at the fixpoint
            }
            let (artifact, cache_hit) = self.compile_function(&tier1_base, &cfg1, fi, &want);
            recompiles.push(RecompileEvent {
                function: tier1_base.function(FunctionId::new(fi)).name().to_string(),
                to_config: cfg1.name.to_string(),
                overrides: want.len(),
                cache_hit,
                mid_run: false,
                at_calls: final_snap.calls,
            });
            st.body = Some(Arc::clone(&artifact.body));
            st.overrides = want;
            st.traces.push(artifact.trace.clone());
        }

        // Final bodies → the steady-state module.
        let mut final_module = tier0.clone();
        let mut overrides = BTreeMap::new();
        let mut tier_traces = BTreeMap::new();
        for (fi, st) in state.into_iter().enumerate() {
            let fid = FunctionId::new(fi);
            let name = final_module.function(fid).name().to_string();
            if let Some(body) = &st.body {
                *final_module.function_mut(fid) = (**body).clone();
                overrides.insert(name.clone(), st.overrides);
            }
            tier_traces.insert(name, st.traces);
        }

        // The measurement run: final bodies, no adaptation, fully
        // deterministic.
        let steady = Vm::new(&final_module, platform)
            .with_config(self.config.vm)
            .run(entry, args)?;

        Ok(RuntimeOutcome {
            adaptive,
            steady,
            recompiles,
            cache: self.cache.lock().unwrap().stats(),
            overrides,
            mid_run_swaps,
            final_module,
            tier0_trace,
            tier_traces,
        })
    }
}
