//! The tiered execution manager: profile → recompile → swap, mid-run.
//!
//! Tier 0 compiles the whole module at a cheap baseline configuration
//! (Whaley elimination + trivial trap conversion, the paper's "Old Null
//! Check") with site counters on, and starts the VM with a
//! [`RuntimeHooks`] control surface attached. A controller thread polls
//! the published profile; when the [`ProfilePolicy`] finds a hot function
//! — or, the interesting case, a hot *trapping* implicit site — the
//! function is recompiled at the optimizing tier with the trapping slots
//! forced explicit via [`ExplicitOverride`], on a background worker pool.
//! The finished body is installed into the swap table and takes effect at
//! the next call entry, heap and observation trace carrying straight
//! through.
//!
//! After the adaptive run, any outstanding policy verdict is compiled
//! synchronously (so the tiering always reaches its fixpoint), and a
//! second, *measurement* run executes the final bodies with no adaptation
//! — that run is fully deterministic, which is what the steady-state
//! benchmark reports.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use njc_arch::Platform;
use njc_core::ExplicitOverride;
use njc_ir::{BlockId, CheckId, Function, FunctionId, Module};
use njc_observe::{
    reconcile_recovered_tiered, reconcile_tiered, FunctionTrace, ModuleTrace, RecompileEvent,
};
use njc_opt::{
    optimize_function_overridden, optimize_module_traced, prepare_module, ConfigKind, OptConfig,
};
use njc_recover::{RecoveryCounts, RecoveryPolicy};
use njc_vm::{Fault, Outcome, RuntimeHooks, SiteCounters, Value, Vm, VmConfig};

use crate::cache::{CacheKey, CacheStats, CompiledArtifact};
use crate::policy::ProfilePolicy;
use crate::shard::ShardedCodeCache;

/// Knobs of the tiered loop.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RuntimeConfig {
    /// The profile policy (thresholds from the platform's cost model).
    pub policy: ProfilePolicy,
    /// Safe points between profile publications ([`RuntimeHooks::new`]).
    pub snapshot_interval: u64,
    /// Code cache capacity, in artifacts.
    pub cache_capacity: usize,
    /// Worker threads for background recompilation; also threaded into
    /// the tier compiles' [`OptConfig::threads`].
    pub threads: usize,
    /// The baseline tier every function starts in.
    pub tier0: ConfigKind,
    /// The optimizing tier hot functions are recompiled at.
    pub tier1: ConfigKind,
    /// Run the interprocedural non-nullness inference (`njc-interproc`) in
    /// every tier compile. Mid-run recompiles re-infer over the prepared
    /// module, so swapped-in bodies carry the same entry assumptions the
    /// single-shot compile would.
    pub interproc: bool,
    /// Run the value-numbered forward non-nullness (`OptConfig::gvn`) in
    /// every tier compile, so copies, phi merges, and re-loaded fields
    /// keep their facts across recompiles too.
    pub gvn: bool,
    /// Tier *down* as well as up: drop overrides whose sites have
    /// quiesced (windowed mid-run via
    /// [`ProfilePolicy::assess_tier_down`], cumulative at the fixpoint
    /// via [`ProfilePolicy::assess_cumulative`]). Off reproduces the
    /// grow-only behavior.
    pub tier_down: bool,
    /// Controller sleep between profile polls, in microseconds. Large
    /// values fault-inject a *starved controller*: the profile goes stale
    /// between polls and recompiles land late or not at all — observable
    /// behavior must not change.
    pub controller_poll_micros: u64,
    /// Artificial delay inserted by workers between finishing a compile
    /// and installing it, in microseconds. Fault-injects a *delayed
    /// install channel* — observable behavior must not change.
    pub install_delay_micros: u64,
    /// Fault injection: every tier-1 compile of the named function
    /// panics mid-compile, as a buggy optimizer pass would. The runtime
    /// must survive — workers catch the unwind, poisoned locks are
    /// re-entered, the function simply stays at its last installed tier,
    /// and observable behavior must not change.
    pub panic_on_compile_of: Option<&'static str>,
    /// VM limits for both the adaptive and the measurement run.
    pub vm: VmConfig,
}

impl RuntimeConfig {
    /// Defaults for `platform`: break-even thresholds from its cost model,
    /// Old Null Check as tier 0, the full pipeline as tier 1.
    pub fn for_platform(platform: &Platform) -> Self {
        RuntimeConfig {
            policy: ProfilePolicy::from_cost(&platform.cost),
            snapshot_interval: 32,
            cache_capacity: 32,
            threads: 2,
            tier0: ConfigKind::OldNullCheck,
            tier1: ConfigKind::Full,
            interproc: false,
            gvn: false,
            tier_down: true,
            controller_poll_micros: 200,
            install_delay_micros: 0,
            panic_on_compile_of: None,
            vm: VmConfig::default(),
        }
    }
}

/// What one tiered run produced.
#[derive(Clone, Debug)]
pub struct RuntimeOutcome {
    /// The adaptive run: tier 0 with counters, swaps landing mid-run.
    /// Timing-dependent (when a swap lands shifts the cycle total) — use
    /// [`RuntimeOutcome::steady`] for reproducible measurements.
    pub adaptive: Outcome,
    /// The deterministic steady-state run over the final bodies.
    pub steady: Outcome,
    /// Every recompile, in completion order (mid-run installs first, then
    /// the post-run fixpoint pass).
    pub recompiles: Vec<RecompileEvent>,
    /// Code cache counters after the run.
    pub cache: CacheStats,
    /// Final override set per recompiled function name.
    pub overrides: BTreeMap<String, ExplicitOverride>,
    /// Calls that entered a swapped body during the adaptive run.
    pub mid_run_swaps: u64,
    /// The module the steady run executed: tier-0 bodies with every
    /// recompiled function replaced by its final tier-1 body.
    pub final_module: Module,
    /// Tier-0 provenance for the whole module.
    pub tier0_trace: ModuleTrace,
    /// Every tier's provenance per function, install order (tier 0
    /// first). Input to tiered reconciliation.
    pub tier_traces: BTreeMap<String, Vec<FunctionTrace>>,
    /// Compile jobs that panicked mid-compile and were survived: the
    /// worker caught the unwind, any poisoned lock was re-entered, and
    /// the function stayed at its last installed tier.
    pub compile_panics: u64,
    /// Hardware traps recovered per strategy across the adaptive *and*
    /// steady runs (both execute under the runtime's
    /// [`RecoveryPolicy`]). Recovered traps still count in
    /// `traps_taken`; this splits off the ones the policy kept alive.
    pub recoveries: RecoveryCounts,
}

impl RuntimeOutcome {
    /// Tiered reconciliation of the *adaptive* run: every hardware trap
    /// and every executed explicit check must resolve to a provenance
    /// record in some installed tier of its function.
    ///
    /// # Errors
    /// One line per unexplained observation.
    pub fn reconcile(&self) -> Result<(), Vec<String>> {
        let mut failures = Vec::new();
        for fi in 0..self.final_module.num_functions() {
            let name = self.final_module.function(FunctionId::new(fi)).name();
            let Some(tiers) = self.tier_traces.get(name) else {
                failures.push(format!("{name}: no tier traces"));
                continue;
            };
            let refs: Vec<&FunctionTrace> = tiers.iter().collect();
            let traps: Vec<(BlockId, usize)> = self
                .adaptive
                .site_counts
                .traps
                .keys()
                .filter(|(f, _, _)| *f as usize == fi)
                .map(|&(_, b, i)| (BlockId::new(b as usize), i as usize))
                .collect();
            let checks: Vec<CheckId> = self
                .adaptive
                .site_counts
                .explicit_checks
                .keys()
                .filter(|(f, _)| *f as usize == fi)
                .map(|&(_, id)| CheckId(id))
                .collect();
            if let Err(mut missing) = reconcile_tiered(&refs, &traps, &checks) {
                failures.append(&mut missing);
            }
            // The recovered-trap conservation law: every recovered trap
            // resolves to site provenance in some tier, and no site
            // recovers more traps than it took.
            let recovered: Vec<(BlockId, usize, u64)> = self
                .adaptive
                .site_counts
                .recoveries
                .iter()
                .filter(|((f, _, _), _)| *f as usize == fi)
                .map(|(&(_, b, i), &n)| (BlockId::new(b as usize), i as usize, n))
                .collect();
            let trap_counts: Vec<(BlockId, usize, u64)> = self
                .adaptive
                .site_counts
                .traps
                .iter()
                .filter(|((f, _, _), _)| *f as usize == fi)
                .map(|(&(_, b, i), &n)| (BlockId::new(b as usize), i as usize, n))
                .collect();
            if let Err(mut missing) = reconcile_recovered_tiered(&refs, &recovered, &trap_counts) {
                failures.append(&mut missing);
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }

    /// Verifies the tiering converged: in every overridden function's
    /// final body, each override slot still has its access, *none* of
    /// those accesses is a marked implicit site, and the tier's provenance
    /// records the override-caused explicit checks.
    ///
    /// # Errors
    /// One line per violated condition.
    pub fn verify_convergence(&self) -> Result<(), Vec<String>> {
        use njc_observe::{CheckEvent, ExplicitCause};
        let mut failures = Vec::new();
        for (name, ov) in &self.overrides {
            if ov.is_empty() {
                continue;
            }
            let Some(fid) = self.final_module.function_by_name(name) else {
                failures.push(format!("{name}: overridden function missing"));
                continue;
            };
            let body = self.final_module.function(fid);
            let offset = |f| self.final_module.field_offset(f);
            let mut seen = ExplicitOverride::new();
            for block in body.blocks() {
                for inst in &block.insts {
                    let Some(sa) = inst.slot_access(offset) else {
                        continue;
                    };
                    let Some(off) = sa.offset else { continue };
                    if !ov.contains(off, sa.kind) {
                        continue;
                    }
                    seen.insert(off, sa.kind);
                    if inst.is_exception_site() {
                        failures.push(format!(
                            "{name}: override slot (+{off}, {:?}) still carries an implicit site",
                            sa.kind
                        ));
                    }
                }
            }
            for (off, kind) in ov.keys() {
                if !seen.contains(off, kind) {
                    failures.push(format!(
                        "{name}: override slot (+{off}, {kind:?}) has no access in the final body"
                    ));
                }
            }
            let override_events = self
                .tier_traces
                .get(name)
                .and_then(|tiers| tiers.last())
                .map(|t| {
                    t.events
                        .iter()
                        .filter(|e| {
                            matches!(
                                e,
                                CheckEvent::Phase2Explicit {
                                    cause: ExplicitCause::Override,
                                    ..
                                }
                            )
                        })
                        .count()
                })
                .unwrap_or(0);
            if override_events == 0 {
                failures.push(format!(
                    "{name}: no override-caused explicit check in the final tier's provenance"
                ));
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }
}

/// A recompile request from the controller to the worker pool.
struct Job {
    index: usize,
    overrides: ExplicitOverride,
}

/// A completed install, recorded by the worker that performed it.
pub(crate) struct Install {
    pub(crate) index: usize,
    pub(crate) overrides: ExplicitOverride,
    pub(crate) artifact: Arc<CompiledArtifact>,
    pub(crate) event: RecompileEvent,
    /// Counter snapshot at install time — the baseline the policy
    /// subtracts so only the *new* tier's behaviour is judged.
    pub(crate) baseline: SiteCounters,
}

/// The tier-1 compile path, factored out of [`TieredRuntime`] so the
/// multi-tenant service's workers can compile any tenant's function
/// through the same shared sharded cache.
pub(crate) struct TierCompiler<'a> {
    /// The prepared (intrinsics + inlining) tier-1 base module.
    pub(crate) tier1_base: &'a Module,
    /// The tier-1 `OptConfig`.
    pub(crate) cfg1: &'a OptConfig,
    /// The tier-1 preset, for cache keying.
    pub(crate) kind: ConfigKind,
    pub(crate) platform: &'a Platform,
    pub(crate) cache: &'a ShardedCodeCache,
    /// When set, cache misses compile under this lock (double-checked):
    /// concurrent requests for the same key — different tenants reaching
    /// the same tiering decision at once — collapse into one compile plus
    /// hits instead of duplicate work. `None` for the single-tenant
    /// runtime, whose worker jobs never share a key.
    pub(crate) compile_lock: Option<&'a Mutex<()>>,
    /// [`RuntimeConfig::panic_on_compile_of`], threaded through so the
    /// injected unwind happens exactly where a real optimizer bug would:
    /// inside a compile job, past the cache lookup.
    pub(crate) panic_injection: Option<&'static str>,
}

impl TierCompiler<'_> {
    /// Compiles function `index` of the prepared tier-1 module with
    /// `overrides`, through the shared cache. Returns the artifact and
    /// whether it was a cache hit.
    pub(crate) fn compile(
        &self,
        index: usize,
        overrides: &ExplicitOverride,
    ) -> (Arc<CompiledArtifact>, bool) {
        let fid = FunctionId::new(index);
        let key = CacheKey::new(
            self.tier1_base.function(fid),
            self.kind,
            self.cfg1.compiler_trap,
            overrides,
        );
        if let Some(artifact) = self.cache.get(&key) {
            return (artifact, true);
        }
        let _serialized = self
            .compile_lock
            .map(|l| l.lock().unwrap_or_else(PoisonError::into_inner));
        if self.compile_lock.is_some() {
            // Double-check: another holder may have landed this key while
            // we waited on the lock.
            if let Some(artifact) = self.cache.get(&key) {
                return (artifact, true);
            }
        }
        if self.panic_injection == Some(self.tier1_base.function(fid).name()) {
            panic!("injected compile-job panic");
        }
        let mut func = self.tier1_base.function(fid).clone();
        let (_stats, trace) = optimize_function_overridden(
            self.tier1_base,
            self.platform,
            self.cfg1,
            &mut func,
            Some(overrides),
            true,
        );
        let artifact = Arc::new(CompiledArtifact {
            body: Arc::new(func),
            trace: trace.expect("traced compile yields a trace"),
        });
        // An admission-policy bounce is fine: the artifact still goes to
        // its requester, it just is not retained for the next asker.
        let _ = self.cache.insert(key, Arc::clone(&artifact));
        (artifact, false)
    }
}

/// The tiered execution manager. The code cache persists across runs, so
/// repeating a run hits instead of recompiling; it may also be *shared*
/// between runtimes ([`TieredRuntime::with_shared_cache`]) — the
/// compilation service runs hundreds of tenants against one sharded
/// cache.
#[derive(Debug)]
pub struct TieredRuntime {
    module: Module,
    platform: Platform,
    config: RuntimeConfig,
    cache: Arc<ShardedCodeCache>,
    recovery: RecoveryPolicy,
}

impl TieredRuntime {
    /// A runtime for `module` with [`RuntimeConfig::for_platform`] knobs.
    pub fn new(module: Module, platform: Platform) -> Self {
        let config = RuntimeConfig::for_platform(&platform);
        Self::with_config(module, platform, config)
    }

    /// A runtime with explicit knobs and a private single-shard cache.
    pub fn with_config(module: Module, platform: Platform, config: RuntimeConfig) -> Self {
        let cache = Arc::new(ShardedCodeCache::new(1, config.cache_capacity));
        Self::with_shared_cache(module, platform, config, cache)
    }

    /// A runtime borrowing a shared (possibly multi-tenant) code cache.
    /// `config.cache_capacity` is ignored; the cache's own shape rules.
    pub fn with_shared_cache(
        module: Module,
        platform: Platform,
        config: RuntimeConfig,
        cache: Arc<ShardedCodeCache>,
    ) -> Self {
        TieredRuntime {
            module,
            platform,
            cache,
            config,
            recovery: RecoveryPolicy::abort(),
        }
    }

    /// Attaches a trap-recovery policy: both the adaptive and the steady
    /// run dispatch it at registered implicit sites that trap. The
    /// default ([`RecoveryPolicy::abort`]) reproduces the pre-recovery
    /// behavior exactly.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Code cache counters (cache-wide: a shared cache reports traffic
    /// from every runtime using it).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn tier_config(&self, kind: ConfigKind) -> OptConfig {
        OptConfig {
            threads: self.config.threads.max(1),
            interproc: self.config.interproc,
            gvn: self.config.gvn,
            ..kind.to_config(&self.platform)
        }
    }

    /// Runs `entry(args)` through the profile → recompile → swap loop,
    /// then once more (steady state) on the final bodies.
    ///
    /// # Errors
    /// Propagates VM [`Fault`]s from either run.
    pub fn run(&self, entry: &str, args: &[Value]) -> Result<RuntimeOutcome, Fault> {
        let platform = self.platform;
        let cfg0 = self.tier_config(self.config.tier0);
        let cfg1 = self.tier_config(self.config.tier1);

        let mut tier0 = self.module.clone();
        let (_s0, tier0_trace) = optimize_module_traced(&mut tier0, &platform, &cfg0);
        // The recompile base: module-level preparation (intrinsics,
        // inlining) applied once; per-function optimization happens per
        // recompile, byte-identical to a whole-module tier-1 compile.
        let mut tier1_base = self.module.clone();
        prepare_module(&mut tier1_base, &platform, &cfg1);

        let hooks = RuntimeHooks::new(self.config.snapshot_interval);
        let vm_config = VmConfig {
            count_sites: true,
            ..self.config.vm
        };

        let compiler = TierCompiler {
            tier1_base: &tier1_base,
            cfg1: &cfg1,
            kind: self.config.tier1,
            platform: &self.platform,
            cache: &self.cache,
            compile_lock: None,
            panic_injection: self.config.panic_on_compile_of,
        };

        let compile_panics = AtomicU64::new(0);
        let installs: Mutex<Vec<Install>> = Mutex::new(Vec::new());
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Mutex::new(job_rx);
        let mut requested: HashMap<usize, ExplicitOverride> = HashMap::new();

        let tier0_ref = &tier0;
        let recovery_ref = &self.recovery;
        let compiler_ref = &compiler;
        let hooks_ref = &hooks;
        let installs_ref = &installs;
        let job_rx_ref = &job_rx;
        let panics_ref = &compile_panics;
        let install_delay = self.config.install_delay_micros;

        let adaptive = std::thread::scope(|scope| -> Result<Outcome, Fault> {
            let vm_handle = scope.spawn(move || {
                Vm::new(tier0_ref, platform)
                    .with_config(vm_config)
                    .with_hooks(hooks_ref)
                    .with_recovery(recovery_ref)
                    .run(entry, args)
            });
            let workers: Vec<_> = (0..self.config.threads.max(1))
                .map(|_| {
                    scope.spawn(move || {
                        loop {
                            // Holding the lock across recv serializes job
                            // pickup; recompiles are rare enough that this
                            // is simpler than a shared deque.
                            let job = job_rx_ref
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .recv();
                            let Ok(job) = job else { break };
                            // A panicking compile job (a buggy optimizer
                            // pass) must kill neither this worker nor —
                            // via a poisoned mutex — the whole runtime:
                            // catch the unwind, count it, move on. The
                            // function stays at its current tier.
                            let survived =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let (artifact, cache_hit) =
                                        compiler_ref.compile(job.index, &job.overrides);
                                    if install_delay > 0 {
                                        // Fault injection: the install channel sits
                                        // on a finished artifact before publishing.
                                        std::thread::sleep(Duration::from_micros(install_delay));
                                    }
                                    let snap = hooks_ref.snapshot();
                                    hooks_ref.install(job.index as u32, Arc::clone(&artifact.body));
                                    let event = RecompileEvent {
                                        function: compiler_ref
                                            .tier1_base
                                            .function(FunctionId::new(job.index))
                                            .name()
                                            .to_string(),
                                        to_config: compiler_ref.cfg1.name.to_string(),
                                        overrides: job.overrides.len(),
                                        cache_hit,
                                        mid_run: !hooks_ref.is_finished(),
                                        at_calls: snap.calls,
                                    };
                                    installs_ref
                                        .lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .push(Install {
                                            index: job.index,
                                            overrides: job.overrides,
                                            artifact,
                                            event,
                                            baseline: snap.counters,
                                        });
                                }));
                            if survived.is_err() {
                                panics_ref.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();

            // Controller: poll the profile, plan, dispatch. The second
            // condition covers a panicking VM thread, whose hooks would
            // otherwise never be marked finished.
            while !hooks.is_finished() && !vm_handle.is_finished() {
                let snap = hooks.snapshot();
                let installed = installs.lock().unwrap_or_else(PoisonError::into_inner);
                for fi in 0..tier0.num_functions() {
                    let latest = installed.iter().rev().find(|i| i.index == fi);
                    let body: &Function = latest
                        .map(|i| &*i.artifact.body)
                        .unwrap_or_else(|| tier0.function(FunctionId::new(fi)));
                    let plan = self.config.policy.assess(
                        fi,
                        body,
                        &|f| self.module.field_offset(f),
                        &snap.counters,
                        latest.map(|i| &i.baseline),
                    );
                    if !plan.hot {
                        continue;
                    }
                    // Desired set = what the installed body's window still
                    // justifies (tier-down drops quiesced slots), plus any
                    // newly hot-trapping slots from this poll.
                    let mut want = match latest {
                        Some(inst) if self.config.tier_down => self.config.policy.assess_tier_down(
                            fi,
                            body,
                            &|f| self.module.field_offset(f),
                            &inst.overrides,
                            &snap.counters,
                            Some(&inst.baseline),
                        ),
                        Some(inst) => inst.overrides.clone(),
                        None => requested.get(&fi).cloned().unwrap_or_default(),
                    };
                    for (off, kind) in plan.overrides.keys() {
                        want.insert(off, kind);
                    }
                    if requested.get(&fi) != Some(&want) {
                        requested.insert(fi, want.clone());
                        let _ = job_tx.send(Job {
                            index: fi,
                            overrides: want,
                        });
                    }
                }
                drop(installed);
                std::thread::sleep(Duration::from_micros(
                    self.config.controller_poll_micros.max(1),
                ));
            }
            drop(job_tx); // close the channel: workers drain, then exit
            let out = vm_handle
                .join()
                .unwrap_or_else(|p| std::panic::resume_unwind(p));
            for w in workers {
                w.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            }
            out
        })?;

        let mid_run_swaps = hooks.swapped_calls();
        let installs = installs
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let final_snap = hooks.snapshot();

        let finalized = finalize_tiers(FinalizeInput {
            tier0: &tier0,
            tier0_trace: &tier0_trace,
            compiler: &compiler,
            policy: &self.config.policy,
            tier_down: self.config.tier_down,
            field_offset: &|f| self.module.field_offset(f),
            installs,
            final_counters: &final_snap.counters,
            final_calls: final_snap.calls,
        });
        let Finalized {
            final_module,
            overrides,
            tier_traces,
            recompiles,
            compile_panics: fixpoint_panics,
        } = finalized;

        // The measurement run: final bodies, no adaptation, fully
        // deterministic.
        let steady = Vm::new(&final_module, platform)
            .with_config(self.config.vm)
            .with_recovery(&self.recovery)
            .run(entry, args)?;

        let mut recoveries = adaptive.stats.recoveries;
        recoveries.absorb(&steady.stats.recoveries);
        Ok(RuntimeOutcome {
            adaptive,
            steady,
            recompiles,
            cache: self.cache.stats(),
            overrides,
            mid_run_swaps,
            final_module,
            tier0_trace,
            tier_traces,
            compile_panics: compile_panics.load(Ordering::Relaxed) + fixpoint_panics,
            recoveries,
        })
    }
}

/// Inputs to the post-adaptive fixpoint pass, shared between the
/// single-tenant runtime and the multi-tenant service.
pub(crate) struct FinalizeInput<'a> {
    /// The tier-0 module the adaptive run started from.
    pub(crate) tier0: &'a Module,
    /// Tier-0 provenance for the whole module.
    pub(crate) tier0_trace: &'a ModuleTrace,
    /// The tier-1 compile path (and its shared cache).
    pub(crate) compiler: &'a TierCompiler<'a>,
    pub(crate) policy: &'a ProfilePolicy,
    /// Cumulative (tier-down capable) fixpoint vs grow-only.
    pub(crate) tier_down: bool,
    pub(crate) field_offset: &'a dyn Fn(njc_ir::FieldId) -> u64,
    /// Every mid-run install, completion order.
    pub(crate) installs: Vec<Install>,
    /// The run's complete cumulative counters.
    pub(crate) final_counters: &'a SiteCounters,
    pub(crate) final_calls: u64,
}

/// What the fixpoint pass settles on.
pub(crate) struct Finalized {
    pub(crate) final_module: Module,
    pub(crate) overrides: BTreeMap<String, ExplicitOverride>,
    pub(crate) tier_traces: BTreeMap<String, Vec<FunctionTrace>>,
    pub(crate) recompiles: Vec<RecompileEvent>,
    /// Fixpoint compiles that panicked (and were survived): the function
    /// keeps its last successfully installed body.
    pub(crate) compile_panics: u64,
}

/// The post-run fixpoint pass: the adaptive run may have ended before the
/// controller saw the final profile, and mid-run decisions depend on
/// timing. Assess once more against the *complete* counters and compile
/// anything outstanding (synchronously — no VM left to swap into, so
/// these are recorded with `mid_run: false`).
///
/// With `tier_down` the assessment is cumulative
/// ([`ProfilePolicy::assess_cumulative`]): the final override set is
/// exactly what the run's total null-arrival history justifies, dropping
/// any mid-run override whose site quiesced. Null arrivals are counted by
/// slot key (traps) and check id (caught nulls), both independent of
/// which tier's body was installed when a null arrived — so the settled
/// set is deterministic even though mid-run swap timing is not. Without
/// `tier_down` the set only grows, reproducing the original behavior.
pub(crate) fn finalize_tiers(input: FinalizeInput<'_>) -> Finalized {
    let FinalizeInput {
        tier0,
        tier0_trace,
        compiler,
        policy,
        tier_down,
        field_offset,
        installs,
        final_counters,
        final_calls,
    } = input;

    // Per-function running state: final body, overrides, tier traces.
    struct FuncState {
        body: Option<Arc<Function>>,
        overrides: ExplicitOverride,
        baseline: Option<SiteCounters>,
        traces: Vec<FunctionTrace>,
    }
    let mut state: Vec<FuncState> = (0..tier0.num_functions())
        .map(|fi| {
            let name = tier0.function(FunctionId::new(fi)).name();
            FuncState {
                body: None,
                overrides: ExplicitOverride::new(),
                baseline: None,
                traces: tier0_trace.function(name).cloned().into_iter().collect(),
            }
        })
        .collect();
    let mut recompiles = Vec::new();
    let mut compile_panics = 0u64;
    for install in installs {
        let st = &mut state[install.index];
        st.body = Some(Arc::clone(&install.artifact.body));
        st.overrides = install.overrides;
        st.baseline = Some(install.baseline);
        st.traces.push(install.artifact.trace.clone());
        recompiles.push(install.event);
    }

    for (fi, st) in state.iter_mut().enumerate() {
        let tier0_body = tier0.function(FunctionId::new(fi));
        let body: &Function = st.body.as_deref().unwrap_or(tier0_body);
        let (hot, want) = if tier_down {
            let plan = policy.assess_cumulative(
                fi,
                tier0_body,
                body,
                field_offset,
                &compiler.cfg1.compiler_trap,
                final_counters,
            );
            (plan.hot, plan.overrides)
        } else {
            let plan = policy.assess(fi, body, field_offset, final_counters, st.baseline.as_ref());
            let mut want = st.overrides.clone();
            for (off, kind) in plan.overrides.keys() {
                want.insert(off, kind);
            }
            (plan.hot, want)
        };
        if !hot {
            continue;
        }
        if st.body.is_some() && want == st.overrides {
            continue; // already at the fixpoint
        }
        let compiled =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| compiler.compile(fi, &want)));
        let (artifact, cache_hit) = match compiled {
            Ok(c) => c,
            Err(_) => {
                // The fixpoint compile panicked: keep the last installed
                // body (or tier 0) instead of wedging the whole run.
                compile_panics += 1;
                continue;
            }
        };
        recompiles.push(RecompileEvent {
            function: tier0_body.name().to_string(),
            to_config: compiler.cfg1.name.to_string(),
            overrides: want.len(),
            cache_hit,
            mid_run: false,
            at_calls: final_calls,
        });
        st.body = Some(Arc::clone(&artifact.body));
        st.overrides = want;
        st.traces.push(artifact.trace.clone());
    }

    // Final bodies → the steady-state module.
    let mut final_module = tier0.clone();
    let mut overrides = BTreeMap::new();
    let mut tier_traces = BTreeMap::new();
    for (fi, st) in state.into_iter().enumerate() {
        let fid = FunctionId::new(fi);
        let name = final_module.function(fid).name().to_string();
        if let Some(body) = &st.body {
            *final_module.function_mut(fid) = (**body).clone();
            overrides.insert(name.clone(), st.overrides);
        }
        tier_traces.insert(name, st.traces);
    }

    Finalized {
        final_module,
        overrides,
        tier_traces,
        recompiles,
        compile_panics,
    }
}
