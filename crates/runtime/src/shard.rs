//! Sharded shared code cache for the compilation service.
//!
//! One [`CodeCache`] behind one lock is fine for one tenant; hundreds of
//! tenants hammering the same artifact store need the lock split. The
//! sharded cache routes every key by its *pristine body hash* —
//! `body_hash % shards` — so all compiles of the same source body (any
//! config, trap model, or override set) land in one shard, and distinct
//! bodies spread across shards. Routing on content, not on tenant,
//! is what makes cross-tenant deduplication a plain cache hit.
//!
//! Each shard is an independent LRU [`CodeCache`] plus a small frequency
//! table driving a TinyLFU-style **admission policy**: when a shard is
//! full, a candidate is admitted only if it has been asked for at least
//! as often as the would-be victim. One-shot compiles of cold bodies
//! cannot wash a hot tenant's artifacts out of a contended shard. Ties
//! admit, so with no frequency signal the policy degenerates to exactly
//! the single-tenant LRU behavior.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::cache::{CacheKey, CacheStats, CodeCache, CompiledArtifact};

/// Per-shard counter snapshot, for service observability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Which shard.
    pub index: usize,
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts inserted.
    pub inserts: u64,
    /// Artifacts evicted by the LRU.
    pub evictions: u64,
    /// Inserts the admission policy refused (candidate colder than the
    /// victim it would have evicted).
    pub admission_rejects: u64,
    /// Resident artifacts right now.
    pub occupancy: usize,
    /// Shard capacity.
    pub capacity: usize,
}

/// One shard: an LRU cache plus the admission frequency table.
#[derive(Debug)]
struct Shard {
    cache: CodeCache,
    /// Ask-counts per key (hits, misses, and insert attempts all count as
    /// interest). Periodically halved so stale popularity decays.
    freq: BTreeMap<CacheKey, u64>,
    admission_rejects: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            cache: CodeCache::new(capacity),
            freq: BTreeMap::new(),
            admission_rejects: 0,
        }
    }

    /// Records interest in `key` and returns its new count, aging the
    /// table (halve-and-drop) when it outgrows its budget.
    fn touch(&mut self, key: &CacheKey) -> u64 {
        let budget = 8 * self.cache.capacity().max(1);
        if self.freq.len() >= budget && !self.freq.contains_key(key) {
            self.freq = self
                .freq
                .iter()
                .filter_map(|(k, &c)| {
                    if c >= 2 {
                        Some((k.clone(), c / 2))
                    } else {
                        None
                    }
                })
                .collect();
        }
        let c = self.freq.entry(key.clone()).or_insert(0);
        *c += 1;
        *c
    }
}

/// A fixed-fanout sharded artifact cache, shared by every tenant of the
/// compilation service (and borrowable by a single [`TieredRuntime`]).
///
/// [`TieredRuntime`]: crate::TieredRuntime
#[derive(Debug)]
pub struct ShardedCodeCache {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedCodeCache {
    /// `shards` independent caches (clamped to ≥ 1) of `shard_capacity`
    /// artifacts each (clamped to ≥ 1).
    pub fn new(shards: usize, shard_capacity: usize) -> Self {
        ShardedCodeCache {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(Shard::new(shard_capacity)))
                .collect(),
        }
    }

    /// Shard fanout.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to: `body_hash % shards`. Deterministic and
    /// content-addressed — every compile of the same pristine body, under
    /// any config or override set, contends on (and deduplicates in) the
    /// same shard.
    pub fn shard_of(&self, key: &CacheKey) -> usize {
        (key.body_hash() % self.shards.len() as u64) as usize
    }

    /// Looks up `key` in its shard, refreshing recency and recording
    /// interest for the admission policy.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledArtifact>> {
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.touch(key);
        shard.cache.get(key)
    }

    /// Offers `artifact` to `key`'s shard. Returns whether it is resident
    /// afterwards: a full shard admits the candidate only if it has been
    /// asked for at least as often as the LRU victim it would evict.
    pub fn insert(&self, key: CacheKey, artifact: Arc<CompiledArtifact>) -> bool {
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let candidate_freq = shard.touch(&key);
        let full = shard.cache.len() >= shard.cache.capacity();
        if full && !shard.cache.contains(&key) {
            let victim_freq = shard
                .cache
                .peek_lru()
                .map(|victim| shard.freq.get(victim).copied().unwrap_or(0))
                .unwrap_or(0);
            if candidate_freq < victim_freq {
                shard.admission_rejects += 1;
                return false;
            }
        }
        shard.cache.insert(key, artifact);
        true
    }

    /// Whether `key` is resident, without touching recency, interest, or
    /// stats.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .cache
            .contains(key)
    }

    /// Resident artifacts across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).cache.len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .cache
                .stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.inserts += s.inserts;
        }
        total
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                let s = shard.cache.stats();
                ShardStats {
                    index,
                    hits: s.hits,
                    misses: s.misses,
                    inserts: s.inserts,
                    evictions: s.evictions,
                    admission_rejects: shard.admission_rejects,
                    occupancy: shard.cache.len(),
                    capacity: shard.cache.capacity(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::TrapModel;
    use njc_core::ExplicitOverride;
    use njc_ir::{parse_function, Function};
    use njc_observe::FunctionTrace;
    use njc_opt::ConfigKind;

    fn func(i: usize) -> Function {
        parse_function(&format!(
            "func f{i}(v0: int) -> int {{\nbb0:\n  return v0\n}}"
        ))
        .unwrap()
    }

    fn key(f: &Function) -> CacheKey {
        CacheKey::new(
            f,
            ConfigKind::Full,
            TrapModel::windows_ia32(),
            &ExplicitOverride::new(),
        )
    }

    fn artifact(f: &Function) -> Arc<CompiledArtifact> {
        Arc::new(CompiledArtifact {
            body: Arc::new(f.clone()),
            trace: FunctionTrace::default(),
        })
    }

    #[test]
    fn routing_is_deterministic_and_content_addressed() {
        let cache = ShardedCodeCache::new(8, 2);
        for i in 0..32 {
            let f = func(i);
            let k = key(&f);
            assert_eq!(cache.shard_of(&k), cache.shard_of(&k));
            assert_eq!(
                cache.shard_of(&k),
                (k.body_hash() % 8) as usize,
                "route = body_hash mod shards"
            );
            // Same body under a different config still routes to the same
            // shard: dedup needs all variants of a body co-located.
            let other = CacheKey::new(
                &f,
                ConfigKind::OldNullCheck,
                TrapModel::aix_ppc(),
                &ExplicitOverride::new(),
            );
            assert_eq!(cache.shard_of(&k), cache.shard_of(&other));
        }
    }

    #[test]
    fn cold_candidate_cannot_evict_hot_entry() {
        let cache = ShardedCodeCache::new(1, 1);
        let hot = func(0);
        let cold = func(1);
        cache.insert(key(&hot), artifact(&hot));
        // Make `hot` popular.
        for _ in 0..5 {
            assert!(cache.get(&key(&hot)).is_some());
        }
        // A one-shot cold insert must bounce off the admission policy...
        assert!(!cache.insert(key(&cold), artifact(&cold)));
        assert!(cache.contains(&key(&hot)));
        assert!(!cache.contains(&key(&cold)));
        assert_eq!(cache.shard_stats()[0].admission_rejects, 1);
        // ...but sustained interest in `cold` eventually wins the slot.
        for _ in 0..6 {
            let _ = cache.get(&key(&cold));
        }
        assert!(cache.insert(key(&cold), artifact(&cold)));
        assert!(cache.contains(&key(&cold)));
        assert!(!cache.contains(&key(&hot)));
    }

    #[test]
    fn equal_interest_degenerates_to_lru() {
        // One miss + one insert per key (the single-tenant compile
        // pattern) leaves all frequencies equal, so ties admit and the
        // shard behaves exactly like the plain LRU cache.
        let cache = ShardedCodeCache::new(1, 1);
        for i in 0..3 {
            let f = func(i);
            assert!(cache.get(&key(&f)).is_none());
            assert!(cache.insert(key(&f), artifact(&f)), "tie admits");
        }
        let s = cache.shard_stats()[0];
        assert_eq!((s.evictions, s.admission_rejects, s.occupancy), (2, 0, 1));
    }

    #[test]
    fn aggregate_stats_sum_over_shards() {
        let cache = ShardedCodeCache::new(4, 2);
        for i in 0..8 {
            let f = func(i);
            let _ = cache.get(&key(&f));
            cache.insert(key(&f), artifact(&f));
            let _ = cache.get(&key(&f));
        }
        let total = cache.stats();
        assert_eq!(total.misses, 8);
        assert_eq!(total.hits, 8);
        assert_eq!(total.inserts, 8);
        let per: u64 = cache.shard_stats().iter().map(|s| s.inserts).sum();
        assert_eq!(per, total.inserts);
        assert_eq!(
            cache.len(),
            cache
                .shard_stats()
                .iter()
                .map(|s| s.occupancy)
                .sum::<usize>()
        );
    }
}
