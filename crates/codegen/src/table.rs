//! The machine-level metadata tables: exception sites and handler ranges.
//!
//! This is the machinery the paper's implicit null checks actually rest
//! on in a real JIT: the generated code contains **no instruction** for an
//! implicit check, only an entry in a PC-indexed table. When the hardware
//! delivers a trap, the runtime looks the faulting PC up — a hit means
//! "this was a null check, raise `NullPointerException` here"; a miss
//! means the compiler emitted a wild memory access and the VM aborts.
//! (Paper §3.3.2: *"we must mark such an instruction as an exception
//! site"*.)

use std::collections::BTreeMap;

use njc_ir::{AccessKind, CatchKind, CheckId, Type};

use crate::isa::Reg;

/// What one exception-site entry knows about its access — enough for the
/// runtime to attribute a trap (or a silently-missed NPE) back to the IR
/// check it discharges, and for a binary verifier to prove the access can
/// actually fault on the null page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SiteInfo {
    /// The IR null check this site discharges ([`CheckId::NONE`] for
    /// phase 2 over-marking, which guards accesses no check ever owned).
    pub check: CheckId,
    /// Whether the access reads or writes memory.
    pub kind: AccessKind,
    /// Static byte offset from the base register, when fixed (`None` for
    /// index-scaled element accesses, whose offset is dynamic).
    pub offset: Option<u64>,
}

impl SiteInfo {
    /// An entry with no recorded provenance (tests, stripped tables).
    pub fn anonymous(kind: AccessKind) -> Self {
        SiteInfo {
            check: CheckId::NONE,
            kind,
            offset: None,
        }
    }
}

/// The set of PCs whose memory access doubles as a null check, each with
/// its [`SiteInfo`] provenance. Ordered by PC so iteration (and hence the
/// emitted binary `.njc.exctab` section) is deterministic.
#[derive(Clone, Default, Debug)]
pub struct ExceptionSiteTable {
    sites: BTreeMap<usize, SiteInfo>,
}

impl ExceptionSiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `pc` as an implicit null check site.
    pub fn insert(&mut self, pc: usize, info: SiteInfo) {
        self.sites.insert(pc, info);
    }

    /// Whether a trap at `pc` is a legal null check.
    pub fn contains(&self, pc: usize) -> bool {
        self.sites.contains_key(&pc)
    }

    /// The site entry at `pc`, if registered.
    pub fn get(&self, pc: usize) -> Option<&SiteInfo> {
        self.sites.get(&pc)
    }

    /// All entries in ascending PC order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SiteInfo)> {
        self.sites.iter().map(|(pc, info)| (*pc, info))
    }

    /// The registered site nearest to `pc` (ties break toward the earlier
    /// PC) — the best provenance hint for a trap the table does *not*
    /// cover.
    pub fn nearest(&self, pc: usize) -> Option<(usize, &SiteInfo)> {
        let below = self.sites.range(..=pc).next_back();
        let above = self.sites.range(pc..).next();
        match (below, above) {
            (Some((bp, bi)), Some((ap, ai))) => {
                if pc - bp <= ap - pc {
                    Some((*bp, bi))
                } else {
                    Some((*ap, ai))
                }
            }
            (Some((p, i)), None) | (None, Some((p, i))) => Some((*p, i)),
            (None, None) => None,
        }
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// One handler range: exceptions raised at `start_pc..end_pc` whose kind
/// matches `catch` transfer control to `handler_pc`.
#[derive(Clone, Debug)]
pub struct HandlerEntry {
    /// First covered PC (inclusive).
    pub start_pc: usize,
    /// Last covered PC (exclusive).
    pub end_pc: usize,
    /// Catch filter.
    pub catch: CatchKind,
    /// Handler entry point.
    pub handler_pc: usize,
    /// Register receiving the exception code, if any.
    pub code_reg: Option<Reg>,
}

/// Per-function handler table (searched in order; first match wins).
#[derive(Clone, Default, Debug)]
pub struct HandlerTable {
    /// The entries.
    pub entries: Vec<HandlerEntry>,
}

impl HandlerTable {
    /// Finds the handler covering `pc` for exception `kind`.
    pub fn lookup(&self, pc: usize, kind: njc_ir::ExceptionKind) -> Option<&HandlerEntry> {
        self.entries
            .iter()
            .find(|e| e.start_pc <= pc && pc < e.end_pc && e.catch.catches(kind))
    }
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct MachineFunction {
    /// Function name.
    pub name: String,
    /// Linear code.
    pub code: Vec<crate::isa::MInst>,
    /// Number of registers (parameters occupy `r0..`).
    pub num_regs: usize,
    /// Number of parameters.
    pub num_params: usize,
    /// Return type, if non-void.
    pub ret: Option<Type>,
    /// PC-indexed implicit null check sites.
    pub sites: ExceptionSiteTable,
    /// Exception handler ranges.
    pub handlers: HandlerTable,
}

/// A lowered class: what virtual dispatch and allocation need at run time.
#[derive(Clone, Debug)]
pub struct MachineClass {
    /// Object size in bytes (header included).
    pub size: u64,
    /// Method table: name → function index.
    pub methods: std::collections::HashMap<String, usize>,
}

/// A lowered module.
#[derive(Clone, Debug)]
pub struct MachineModule {
    /// Functions, indexed like the source module's.
    pub functions: Vec<MachineFunction>,
    /// Classes, indexed like the source module's.
    pub classes: Vec<MachineClass>,
}

impl MachineModule {
    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Total machine instruction count (code size).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Total implicit null check sites across all functions.
    pub fn total_sites(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::ExceptionKind;

    #[test]
    fn site_table_membership() {
        let mut t = ExceptionSiteTable::new();
        assert!(t.is_empty());
        t.insert(7, SiteInfo::anonymous(njc_ir::AccessKind::Read));
        t.insert(7, SiteInfo::anonymous(njc_ir::AccessKind::Read));
        assert_eq!(t.len(), 1);
        assert!(t.contains(7));
        assert!(!t.contains(8));
    }

    #[test]
    fn site_table_nearest_prefers_closer_entry() {
        let mut t = ExceptionSiteTable::new();
        assert!(t.nearest(3).is_none());
        let info = |c: u32| SiteInfo {
            check: CheckId(c),
            kind: njc_ir::AccessKind::Read,
            offset: Some(8),
        };
        t.insert(10, info(0));
        t.insert(20, info(1));
        assert_eq!(t.nearest(12).unwrap().0, 10);
        assert_eq!(t.nearest(17).unwrap().0, 20);
        assert_eq!(t.nearest(15).unwrap().0, 10, "tie breaks low");
        assert_eq!(t.nearest(100).unwrap().1.check, CheckId(1));
    }

    #[test]
    fn handler_lookup_respects_range_and_kind() {
        let table = HandlerTable {
            entries: vec![
                HandlerEntry {
                    start_pc: 10,
                    end_pc: 20,
                    catch: CatchKind::Only(ExceptionKind::NullPointer),
                    handler_pc: 100,
                    code_reg: None,
                },
                HandlerEntry {
                    start_pc: 10,
                    end_pc: 20,
                    catch: CatchKind::Any,
                    handler_pc: 200,
                    code_reg: None,
                },
            ],
        };
        assert_eq!(
            table
                .lookup(15, ExceptionKind::NullPointer)
                .unwrap()
                .handler_pc,
            100
        );
        assert_eq!(
            table
                .lookup(15, ExceptionKind::Arithmetic)
                .unwrap()
                .handler_pc,
            200,
            "first matching entry wins"
        );
        assert!(table.lookup(25, ExceptionKind::NullPointer).is_none());
        assert!(table.lookup(9, ExceptionKind::NullPointer).is_none());
    }
}
