//! The machine-level metadata tables: exception sites and handler ranges.
//!
//! This is the machinery the paper's implicit null checks actually rest
//! on in a real JIT: the generated code contains **no instruction** for an
//! implicit check, only an entry in a PC-indexed table. When the hardware
//! delivers a trap, the runtime looks the faulting PC up — a hit means
//! "this was a null check, raise `NullPointerException` here"; a miss
//! means the compiler emitted a wild memory access and the VM aborts.
//! (Paper §3.3.2: *"we must mark such an instruction as an exception
//! site"*.)

use std::collections::HashSet;

use njc_ir::{CatchKind, Type};

use crate::isa::Reg;

/// The set of PCs whose memory access doubles as a null check.
#[derive(Clone, Default, Debug)]
pub struct ExceptionSiteTable {
    sites: HashSet<usize>,
}

impl ExceptionSiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `pc` as an implicit null check site.
    pub fn insert(&mut self, pc: usize) {
        self.sites.insert(pc);
    }

    /// Whether a trap at `pc` is a legal null check.
    pub fn contains(&self, pc: usize) -> bool {
        self.sites.contains(&pc)
    }

    /// Number of registered sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no sites are registered.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// One handler range: exceptions raised at `start_pc..end_pc` whose kind
/// matches `catch` transfer control to `handler_pc`.
#[derive(Clone, Debug)]
pub struct HandlerEntry {
    /// First covered PC (inclusive).
    pub start_pc: usize,
    /// Last covered PC (exclusive).
    pub end_pc: usize,
    /// Catch filter.
    pub catch: CatchKind,
    /// Handler entry point.
    pub handler_pc: usize,
    /// Register receiving the exception code, if any.
    pub code_reg: Option<Reg>,
}

/// Per-function handler table (searched in order; first match wins).
#[derive(Clone, Default, Debug)]
pub struct HandlerTable {
    /// The entries.
    pub entries: Vec<HandlerEntry>,
}

impl HandlerTable {
    /// Finds the handler covering `pc` for exception `kind`.
    pub fn lookup(&self, pc: usize, kind: njc_ir::ExceptionKind) -> Option<&HandlerEntry> {
        self.entries
            .iter()
            .find(|e| e.start_pc <= pc && pc < e.end_pc && e.catch.catches(kind))
    }
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct MachineFunction {
    /// Function name.
    pub name: String,
    /// Linear code.
    pub code: Vec<crate::isa::MInst>,
    /// Number of registers (parameters occupy `r0..`).
    pub num_regs: usize,
    /// Number of parameters.
    pub num_params: usize,
    /// Return type, if non-void.
    pub ret: Option<Type>,
    /// PC-indexed implicit null check sites.
    pub sites: ExceptionSiteTable,
    /// Exception handler ranges.
    pub handlers: HandlerTable,
}

/// A lowered class: what virtual dispatch and allocation need at run time.
#[derive(Clone, Debug)]
pub struct MachineClass {
    /// Object size in bytes (header included).
    pub size: u64,
    /// Method table: name → function index.
    pub methods: std::collections::HashMap<String, usize>,
}

/// A lowered module.
#[derive(Clone, Debug)]
pub struct MachineModule {
    /// Functions, indexed like the source module's.
    pub functions: Vec<MachineFunction>,
    /// Classes, indexed like the source module's.
    pub classes: Vec<MachineClass>,
}

impl MachineModule {
    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Total machine instruction count (code size).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Total implicit null check sites across all functions.
    pub fn total_sites(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::ExceptionKind;

    #[test]
    fn site_table_membership() {
        let mut t = ExceptionSiteTable::new();
        assert!(t.is_empty());
        t.insert(7);
        t.insert(7);
        assert_eq!(t.len(), 1);
        assert!(t.contains(7));
        assert!(!t.contains(8));
    }

    #[test]
    fn handler_lookup_respects_range_and_kind() {
        let table = HandlerTable {
            entries: vec![
                HandlerEntry {
                    start_pc: 10,
                    end_pc: 20,
                    catch: CatchKind::Only(ExceptionKind::NullPointer),
                    handler_pc: 100,
                    code_reg: None,
                },
                HandlerEntry {
                    start_pc: 10,
                    end_pc: 20,
                    catch: CatchKind::Any,
                    handler_pc: 200,
                    code_reg: None,
                },
            ],
        };
        assert_eq!(
            table
                .lookup(15, ExceptionKind::NullPointer)
                .unwrap()
                .handler_pc,
            100
        );
        assert_eq!(
            table
                .lookup(15, ExceptionKind::Arithmetic)
                .unwrap()
                .handler_pc,
            200,
            "first matching entry wins"
        );
        assert!(table.lookup(25, ExceptionKind::NullPointer).is_none());
        assert!(table.lookup(9, ExceptionKind::NullPointer).is_none());
    }
}
