//! # njc-codegen — code generation backend and machine simulator
//!
//! Lowers njc IR to a linear virtual machine code and executes it at the
//! machine level, completing the JIT picture the paper assumes:
//!
//! * explicit null checks become real [`isa::MInst::CheckNull`]
//!   instructions (compare-and-branch on IA32, one-cycle `tw` on PowerPC —
//!   the cost model difference of §3.3.1);
//! * **implicit null checks emit no code at all** — they exist only as PC
//!   entries in the per-function [`table::ExceptionSiteTable`], exactly the
//!   "mark such an instruction as an exception site" of §3.3.2;
//! * try regions become PC-range entries in a [`table::HandlerTable`], the
//!   machine's exception unwinder;
//! * at run time, a hardware trap (from the [`njc_trap`] guarded memory)
//!   is resolved by PC lookup: site hit → `NullPointerException` +
//!   handler-table unwinding; miss → [`machine::MachineFault`] (the crash
//!   a real JIT would suffer from an unsoundly removed check).
//!
//! The machine simulator is differentially tested against the IR
//! interpreter (`njc-vm`): same results, same observation traces, same
//! exceptions, across workloads and optimization configurations.
//!
//! ## Example
//!
//! ```
//! use njc_arch::Platform;
//! use njc_codegen::{lower_module, Machine, MValue};
//! use njc_ir::{parse_function, Module, Type};
//!
//! let mut module = Module::new("demo");
//! module.add_class("C", &[("x", Type::Int)]);
//! module.add_function(parse_function(
//!     "func main() -> int {\n  locals v0: ref v1: int v2: int\nbb0:\n  v0 = new class0\n  v1 = const 21\n  putfield v0, field0, v1\n  v2 = getfield v0, field0 [site]\n  v2 = add.int v2, v2\n  return v2\n}",
//! ).unwrap());
//! let machine_module = lower_module(&module);
//! let out = Machine::new(&machine_module, Platform::windows_ia32())
//!     .run("main")
//!     .unwrap();
//! assert_eq!(out.result, Some(MValue::Int(42)));
//! assert_eq!(out.stats.explicit_null_checks, 0, "the check is a table entry");
//! ```

pub mod isa;
pub mod lower;
pub mod machine;
pub mod table;

pub use isa::{AluOp, FaluOp, MInst, Reg};
pub use lower::{lower_function, lower_module};
pub use machine::{MValue, Machine, MachineFault, MachineOutcome, MachineStats};
pub use table::{
    ExceptionSiteTable, HandlerTable, MachineClass, MachineFunction, MachineModule, SiteInfo,
};
