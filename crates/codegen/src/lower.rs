//! Lowering from njc IR to the virtual machine code.
//!
//! The translation is mostly 1:1, with the null check semantics made
//! physical:
//!
//! * an **explicit** [`njc_ir::Inst::NullCheck`] becomes a real
//!   [`MInst::CheckNull`] instruction;
//! * an **implicit** one becomes *nothing*;
//! * an IR access marked as an exception site contributes the PC of its
//!   lowered load/store to the function's [`ExceptionSiteTable`];
//! * try regions become PC-range entries in the [`HandlerTable`].

use std::collections::HashMap;

use njc_ir::module::ARRAY_ELEMENTS_OFFSET;
use njc_ir::{
    BlockId, CallTarget, ConstValue, Function, Inst, Module, NullCheckKind, Op, Terminator, Type,
};

use njc_ir::{AccessKind, CheckId};

use crate::isa::{AluOp, FaluOp, MInst, Reg};
use crate::table::{
    ExceptionSiteTable, HandlerEntry, HandlerTable, MachineClass, MachineFunction, MachineModule,
    SiteInfo,
};

fn alu_op(op: Op) -> AluOp {
    match op {
        Op::Add => AluOp::Add,
        Op::Sub => AluOp::Sub,
        Op::Mul => AluOp::Mul,
        Op::Div => AluOp::Div,
        Op::Rem => AluOp::Rem,
        Op::And => AluOp::And,
        Op::Or => AluOp::Or,
        Op::Xor => AluOp::Xor,
        Op::Shl => AluOp::Shl,
        Op::Shr => AluOp::Shr,
        Op::Ushr => AluOp::Ushr,
    }
}

fn falu_op(op: Op) -> FaluOp {
    match op {
        Op::Add => FaluOp::Add,
        Op::Sub => FaluOp::Sub,
        Op::Mul => FaluOp::Mul,
        Op::Div => FaluOp::Div,
        Op::Rem => FaluOp::Rem,
        other => panic!("operator {other:?} not defined on floats"),
    }
}

fn const_bits(c: ConstValue) -> u64 {
    match c {
        ConstValue::Int(v) => v as u64,
        ConstValue::Float(f) => f.to_bits(),
        ConstValue::Null => 0,
    }
}

/// Lowers one function.
pub fn lower_function(module: &Module, func: &Function) -> MachineFunction {
    let r = |v: njc_ir::VarId| Reg(v.0);
    let mut code: Vec<MInst> = Vec::with_capacity(func.num_insts() * 2);
    let mut sites = ExceptionSiteTable::new();
    // A dedicated zero register for null comparisons in `ifnull` lowering.
    let zero_reg = Reg(func.num_vars() as u32);
    code.push(MInst::LoadImm {
        dst: zero_reg,
        bits: 0,
    });

    let mut block_pc: Vec<usize> = vec![0; func.num_blocks()];
    // (code index, target block) pairs to patch once layout is known.
    let mut fixups: Vec<(usize, BlockId)> = Vec::new();
    // Per-block PC extents for the handler table.
    let mut block_range: Vec<(usize, usize)> = vec![(0, 0); func.num_blocks()];

    for b in func.blocks() {
        block_pc[b.id.index()] = code.len();
        let start = code.len();
        // Provenance for the next marked access: an implicit NullCheck
        // emits no code, so its CheckId travels to the access that
        // discharges it. Phase 2 over-marked accesses have no pending
        // check and record [`CheckId::NONE`].
        let mut pending_check = CheckId::NONE;
        for inst in &b.insts {
            let site = inst.is_exception_site();
            let at = code.len();
            // Registers the marked access just pushed at `at` and consumes
            // the pending implicit check's identity.
            macro_rules! mark {
                ($kind:expr, $off:expr) => {
                    sites.insert(
                        at,
                        SiteInfo {
                            check: std::mem::replace(&mut pending_check, CheckId::NONE),
                            kind: $kind,
                            offset: $off,
                        },
                    )
                };
            }
            match inst {
                Inst::Const { dst, value } => code.push(MInst::LoadImm {
                    dst: r(*dst),
                    bits: const_bits(*value),
                }),
                Inst::Move { dst, src } => code.push(MInst::Mov {
                    dst: r(*dst),
                    src: r(*src),
                }),
                Inst::BinOp {
                    dst,
                    op,
                    lhs,
                    rhs,
                    ty,
                } => match ty {
                    Type::Float => code.push(MInst::Falu {
                        op: falu_op(*op),
                        dst: r(*dst),
                        a: r(*lhs),
                        b: r(*rhs),
                    }),
                    _ => code.push(MInst::Alu {
                        op: alu_op(*op),
                        dst: r(*dst),
                        a: r(*lhs),
                        b: r(*rhs),
                    }),
                },
                Inst::Neg { dst, src, ty } => code.push(MInst::Neg {
                    dst: r(*dst),
                    a: r(*src),
                    float: *ty == Type::Float,
                }),
                Inst::Convert { dst, src, to } => code.push(MInst::Cvt {
                    dst: r(*dst),
                    src: r(*src),
                    to_int: *to == Type::Int,
                }),
                Inst::FCmp {
                    dst,
                    cond,
                    lhs,
                    rhs,
                } => code.push(MInst::Fcmp {
                    dst: r(*dst),
                    cond: *cond,
                    a: r(*lhs),
                    b: r(*rhs),
                }),
                Inst::NullCheck { var, kind, id } => match kind {
                    NullCheckKind::Explicit => code.push(MInst::CheckNull { reg: r(*var) }),
                    NullCheckKind::Implicit => {
                        // No code: the following marked access carries it,
                        // and inherits this check's provenance identity.
                        pending_check = *id;
                    }
                },
                Inst::BoundCheck { index, length } => code.push(MInst::CheckBounds {
                    index: r(*index),
                    length: r(*length),
                }),
                Inst::GetField {
                    dst, obj, field, ..
                } => {
                    let off = module.field_offset(*field);
                    code.push(MInst::Load {
                        dst: r(*dst),
                        base: r(*obj),
                        index: None,
                        imm: off,
                    });
                    if site {
                        mark!(AccessKind::Read, Some(off));
                    }
                }
                Inst::PutField {
                    obj, field, value, ..
                } => {
                    let off = module.field_offset(*field);
                    code.push(MInst::Store {
                        src: r(*value),
                        base: r(*obj),
                        index: None,
                        imm: off,
                    });
                    if site {
                        mark!(AccessKind::Write, Some(off));
                    }
                }
                Inst::ArrayLength { dst, arr, .. } => {
                    code.push(MInst::Load {
                        dst: r(*dst),
                        base: r(*arr),
                        index: None,
                        imm: 0,
                    });
                    if site {
                        mark!(AccessKind::Read, Some(0));
                    }
                }
                Inst::ArrayLoad {
                    dst, arr, index, ..
                } => {
                    code.push(MInst::Load {
                        dst: r(*dst),
                        base: r(*arr),
                        index: Some(r(*index)),
                        imm: ARRAY_ELEMENTS_OFFSET,
                    });
                    if site {
                        mark!(AccessKind::Read, None);
                    }
                }
                Inst::ArrayStore {
                    arr, index, value, ..
                } => {
                    code.push(MInst::Store {
                        src: r(*value),
                        base: r(*arr),
                        index: Some(r(*index)),
                        imm: ARRAY_ELEMENTS_OFFSET,
                    });
                    if site {
                        mark!(AccessKind::Write, None);
                    }
                }
                Inst::New { dst, class } => code.push(MInst::NewObj {
                    dst: r(*dst),
                    class: *class,
                }),
                Inst::NewArray { dst, elem, len } => code.push(MInst::NewArr {
                    dst: r(*dst),
                    elem: *elem,
                    len: r(*len),
                }),
                Inst::Call {
                    dst,
                    target,
                    receiver,
                    args,
                    ..
                } => {
                    let mut regs: Vec<Reg> = Vec::with_capacity(args.len() + 1);
                    regs.extend(receiver.iter().map(|v| r(*v)));
                    regs.extend(args.iter().map(|v| r(*v)));
                    match target {
                        CallTarget::Static(f) | CallTarget::Direct(f) => code.push(MInst::Call {
                            target: *f,
                            args: regs,
                            dst: dst.map(r),
                        }),
                        CallTarget::Virtual { method, .. } => {
                            code.push(MInst::CallVirtual {
                                method: method.clone(),
                                receiver: r(receiver.expect("virtual receiver")),
                                args: args.iter().map(|v| r(*v)).collect(),
                                dst: dst.map(r),
                            });
                            if site {
                                // The dispatch header load at offset 0.
                                mark!(AccessKind::Read, Some(0));
                            }
                        }
                    }
                }
                Inst::IntrinsicOp {
                    dst,
                    intrinsic,
                    src,
                } => code.push(MInst::Math {
                    op: *intrinsic,
                    dst: r(*dst),
                    src: r(*src),
                }),
                Inst::Observe { var } => code.push(MInst::Observe {
                    src: r(*var),
                    ty: func.var_type(*var),
                }),
            }
        }
        // Terminator.
        match &b.term {
            Terminator::Goto(t) => {
                fixups.push((code.len(), *t));
                code.push(MInst::Jmp { target: 0 });
            }
            Terminator::If {
                cond,
                lhs,
                rhs,
                then_bb,
                else_bb,
            } => {
                fixups.push((code.len(), *then_bb));
                code.push(MInst::Br {
                    cond: *cond,
                    a: r(*lhs),
                    b: r(*rhs),
                    target: 0,
                });
                fixups.push((code.len(), *else_bb));
                code.push(MInst::Jmp { target: 0 });
            }
            Terminator::IfNull {
                var,
                on_null,
                on_nonnull,
            } => {
                fixups.push((code.len(), *on_null));
                code.push(MInst::Br {
                    cond: njc_ir::Cond::Eq,
                    a: r(*var),
                    b: zero_reg,
                    target: 0,
                });
                fixups.push((code.len(), *on_nonnull));
                code.push(MInst::Jmp { target: 0 });
            }
            Terminator::Return(v) => code.push(MInst::Ret { src: v.map(r) }),
            Terminator::Throw(k) => code.push(MInst::Throw { kind: *k }),
        }
        block_range[b.id.index()] = (start, code.len());
    }

    // Patch branch targets.
    for (idx, target) in fixups {
        let pc = block_pc[target.index()];
        match &mut code[idx] {
            MInst::Jmp { target } | MInst::Br { target, .. } => *target = pc,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }

    // Handler table: one range entry per block in each try region.
    let mut handlers = HandlerTable::default();
    for b in func.blocks() {
        if let Some(tr) = b.try_region {
            let region = func.try_region(tr);
            let (start, end) = block_range[b.id.index()];
            handlers.entries.push(HandlerEntry {
                start_pc: start,
                end_pc: end,
                catch: region.catch,
                handler_pc: block_pc[region.handler.index()],
                code_reg: region.exception_code_dst.map(r),
            });
        }
    }

    // Entry must be PC 0's continuation: we emitted the zero-reg constant
    // first, then blocks in arena order — the IR entry is always block 0,
    // laid out first, so execution starting at PC 0 flows into it.
    assert_eq!(func.entry(), BlockId(0), "entry must be the first block");

    MachineFunction {
        name: func.name().to_string(),
        code,
        num_regs: func.num_vars() + 1,
        num_params: func.params().len(),
        ret: func.return_type(),
        sites,
        handlers,
    }
}

/// Lowers a whole module.
pub fn lower_module(module: &Module) -> MachineModule {
    let functions = module
        .functions()
        .iter()
        .map(|f| lower_function(module, f))
        .collect();
    let classes = (0..module.num_classes())
        .map(|ci| {
            let c = module.class(njc_ir::ClassId::new(ci));
            MachineClass {
                size: c.size,
                methods: c
                    .methods
                    .iter()
                    .map(|(name, f)| (name.clone(), f.index()))
                    .collect::<HashMap<_, _>>(),
            }
        })
        .collect();
    MachineModule { functions, classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::parse_function;

    fn test_module() -> Module {
        let mut m = Module::new("t");
        m.add_class("C", &[("x", Type::Int)]);
        m
    }

    #[test]
    fn explicit_check_lowers_to_instruction_implicit_to_table() {
        let m = test_module();
        let f = parse_function(
            "func f(v0: ref) -> int {\nbb0:\n  nullcheck v0\n  v1 = getfield v0, field0\n  v2 = getfield v0, field0 [site]\n  return v1\n}",
        )
        .unwrap();
        let mf = lower_function(&m, &f);
        let checks = mf
            .code
            .iter()
            .filter(|i| matches!(i, MInst::CheckNull { .. }))
            .count();
        assert_eq!(checks, 1, "explicit check became an instruction");
        assert_eq!(mf.sites.len(), 1, "marked access became a table entry");
        // The site PC is the second load.
        let load_pcs: Vec<usize> = mf
            .code
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, MInst::Load { .. }))
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(load_pcs.len(), 2);
        assert!(!mf.sites.contains(load_pcs[0]));
        assert!(mf.sites.contains(load_pcs[1]));
    }

    #[test]
    fn site_entries_carry_check_provenance() {
        let m = test_module();
        let f = parse_function(
            "func f(v0: ref, v1: int) -> int {\n  locals v2: int\nbb0:\n  nullcheck! v0 #3\n  putfield v0, field0, v1 [site]\n  v2 = getfield v0, field0 [site]\n  return v2\n}",
        )
        .unwrap();
        let mf = lower_function(&m, &f);
        let entries: Vec<(usize, SiteInfo)> = mf.sites.iter().map(|(pc, i)| (pc, *i)).collect();
        assert_eq!(entries.len(), 2);
        // The implicit check's identity lands on the first marked access.
        assert_eq!(entries[0].1.check, CheckId(3));
        assert_eq!(entries[0].1.kind, AccessKind::Write);
        assert_eq!(entries[0].1.offset, Some(8), "field0 sits past the header");
        // The second marked access is over-marking: no owning check.
        assert_eq!(entries[1].1.check, CheckId::NONE);
        assert_eq!(entries[1].1.kind, AccessKind::Read);
    }

    #[test]
    fn implicit_check_instruction_emits_no_code() {
        let m = test_module();
        let f = parse_function(
            "func f(v0: ref) -> int {\nbb0:\n  nullcheck! v0\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
        )
        .unwrap();
        let mf = lower_function(&m, &f);
        assert!(mf
            .code
            .iter()
            .all(|i| !matches!(i, MInst::CheckNull { .. })));
    }

    #[test]
    fn branch_targets_are_patched() {
        let m = test_module();
        let f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int\nbb0:\n  if lt v0, v0 then bb1 else bb2\nbb1:\n  v1 = const 1\n  goto bb3\nbb2:\n  v1 = const 2\n  goto bb3\nbb3:\n  return v1\n}",
        )
        .unwrap();
        let mf = lower_function(&m, &f);
        for inst in &mf.code {
            match inst {
                MInst::Jmp { target } | MInst::Br { target, .. } => {
                    assert!(*target < mf.code.len(), "target {target} in range");
                    assert_ne!(*target, 0, "no branch should target the preamble");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn try_region_produces_handler_ranges() {
        let m = test_module();
        let f = parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int v2: int\n  try0: handler bb2 catch npe -> v2\nbb0: [try0]\n  nullcheck v0\n  v1 = getfield v0, field0\n  goto bb1\nbb1: [try0]\n  observe v1\n  return v1\nbb2:\n  return v2\n}",
        )
        .unwrap();
        let mf = lower_function(&m, &f);
        assert_eq!(mf.handlers.entries.len(), 2, "one range per covered block");
        for e in &mf.handlers.entries {
            assert!(e.start_pc < e.end_pc);
            assert_eq!(e.code_reg, Some(Reg(2)));
        }
    }

    #[test]
    fn module_lowering_carries_class_tables() {
        let mut m = test_module();
        let c = m.class_by_name("C").unwrap();
        let f = parse_function(
            "func get(v0: ref) -> int instance {\nbb0:\n  nullcheck v0\n  v1 = getfield v0, field0\n  return v1\n}",
        )
        .unwrap();
        m.add_method(c, "get", f);
        let mm = lower_module(&m);
        assert_eq!(mm.classes.len(), 1);
        assert_eq!(mm.classes[0].methods.get("get"), Some(&0));
        assert!(mm.code_size() > 0);
    }
}
