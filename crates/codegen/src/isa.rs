//! The virtual target ISA.
//!
//! A deliberately simple load/store machine: unlimited virtual registers
//! (one per IR variable — register allocation is out of scope, see the
//! crate docs), linear code addressed by program counter, and *no*
//! first-class null or bounds check control flow — checks are either real
//! compare instructions ([`MInst::CheckNull`], lowered from explicit IR
//! checks) or **nothing at all**: an implicit check is pure metadata, a PC
//! in the function's [`crate::table::ExceptionSiteTable`].

use njc_ir::{ClassId, Cond, ExceptionKind, FunctionId, Intrinsic, Type};

/// A virtual register (one per IR local variable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reg(pub u32);

impl Reg {
    /// The register's frame-slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Integer ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Java division (throws on zero; MIN/-1 wraps).
    Div,
    /// Java remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left (amount masked to 6 bits).
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    Ushr,
}

/// Float ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaluOp {
    /// Add.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Divide.
    Div,
    /// Remainder.
    Rem,
}

/// One machine instruction. Branch targets are resolved PC indices within
/// the owning function's code.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// `dst = imm` (raw bits; the register file is untyped).
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate bits (ints as two's complement, floats as IEEE bits).
        bits: u64,
    },
    /// `dst = src`.
    Mov {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Integer ALU.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Float ALU.
    Falu {
        /// Operation.
        op: FaluOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = -a` (int or float per `float`).
    Neg {
        /// Destination.
        dst: Reg,
        /// Operand.
        a: Reg,
        /// Float negate when true.
        float: bool,
    },
    /// Int ↔ float conversion.
    Cvt {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
        /// Convert *to* int when true, to float when false.
        to_int: bool,
    },
    /// Float compare producing 0/1.
    Fcmp {
        /// Destination (int 0/1).
        dst: Reg,
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = mem[base + imm + (index << 3)?]` — the effective address is
    /// computed with real arithmetic; a null base puts it in the guard
    /// page, which is the whole point.
    Load {
        /// Destination.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Optional scaled index register.
        index: Option<Reg>,
        /// Immediate byte offset.
        imm: u64,
    },
    /// `mem[base + imm + (index << 3)?] = src`.
    Store {
        /// Value to store.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Optional scaled index register.
        index: Option<Reg>,
        /// Immediate byte offset.
        imm: u64,
    },
    /// Conditional branch on two int registers.
    Br {
        /// Condition.
        cond: Cond,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target PC when the condition holds (falls through otherwise).
        target: usize,
    },
    /// Unconditional jump.
    Jmp {
        /// Target PC.
        target: usize,
    },
    /// Explicit null check: compare-and-trap (IA32) / `tw` (PPC). Raises
    /// `NullPointerException` when the register is null.
    CheckNull {
        /// Checked register.
        reg: Reg,
    },
    /// Bounds check: raises `ArrayIndexOutOfBoundsException` unless
    /// `0 <= index < length`.
    CheckBounds {
        /// Index register.
        index: Reg,
        /// Length register.
        length: Reg,
    },
    /// Runtime allocation call: object.
    NewObj {
        /// Destination (address).
        dst: Reg,
        /// Class to allocate.
        class: ClassId,
    },
    /// Runtime allocation call: array.
    NewArr {
        /// Destination (address).
        dst: Reg,
        /// Element type (for the header tag).
        elem: Type,
        /// Length register.
        len: Reg,
    },
    /// Direct call.
    Call {
        /// Callee.
        target: FunctionId,
        /// Argument registers (copied into the callee frame in order).
        args: Vec<Reg>,
        /// Register receiving the return value, if any.
        dst: Option<Reg>,
    },
    /// Virtual call: loads the class tag from the receiver header (offset
    /// 0) and dispatches by method name — the header load is the trapping
    /// access.
    CallVirtual {
        /// Method name.
        method: String,
        /// Receiver register (argument 0).
        receiver: Reg,
        /// Remaining argument registers.
        args: Vec<Reg>,
        /// Return destination, if any.
        dst: Option<Reg>,
    },
    /// Hardware math op / library call per platform.
    Math {
        /// Operation.
        op: Intrinsic,
        /// Destination.
        dst: Reg,
        /// Operand.
        src: Reg,
    },
    /// Return, optionally with a value.
    Ret {
        /// Returned register.
        src: Option<Reg>,
    },
    /// Software throw.
    Throw {
        /// Exception kind.
        kind: ExceptionKind,
    },
    /// Observable output. Carries the IR type so machine traces can be
    /// compared against interpreter traces value-for-value.
    Observe {
        /// Observed register.
        src: Reg,
        /// The observed value's IR type.
        ty: Type,
    },
}

impl MInst {
    /// Whether this instruction performs a memory access whose null-base
    /// fault could be an implicit null check (i.e. can appear in an
    /// exception site table).
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            MInst::Load { .. } | MInst::Store { .. } | MInst::CallVirtual { .. }
        )
    }
}
