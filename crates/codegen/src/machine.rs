//! The machine-level simulator: executes lowered code over the guarded
//! memory, with trap dispatch through the PC-indexed tables.
//!
//! This is the faithful version of what the paper's runtime does: a
//! hardware trap arrives with a faulting PC; the runtime consults the
//! exception site table — a hit raises `NullPointerException` and unwinds
//! through the handler ranges, a miss is a JIT bug
//! ([`MachineFault::UnexpectedTrap`]).

use njc_arch::Platform;
use njc_ir::{AccessKind, CheckId, Cond, ExceptionKind, Type};
use njc_trap::{GuardedMemory, MemoryError};

use crate::isa::{AluOp, FaluOp, MInst, Reg};
use crate::table::{MachineFunction, MachineModule};

/// Machine execution statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MachineStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Machine instructions retired.
    pub insts: u64,
    /// Explicit null check instructions executed.
    pub explicit_null_checks: u64,
    /// Hardware traps taken and dispatched via the site table.
    pub traps_taken: u64,
    /// Marked-site NPEs missed because the platform did not trap.
    pub missed_npes: u64,
}

/// A non-recoverable machine failure (compiler bug or resource limit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MachineFault {
    /// Hardware trap at a PC absent from the exception site table.
    UnexpectedTrap {
        /// The function.
        function: String,
        /// The faulting PC.
        pc: usize,
        /// Whether the faulting instruction read or wrote memory.
        kind: AccessKind,
        /// The access's static byte offset, when it has one (`None` for
        /// index-scaled accesses).
        offset: Option<u64>,
        /// The registered site nearest the faulting PC and the IR check it
        /// discharges — the provenance lead `njc explain` reconciles the
        /// escape against (`None` when the function has no sites at all).
        nearest_site: Option<(usize, CheckId)>,
    },
    /// Access outside every allocation.
    WildAccess {
        /// The function.
        function: String,
        /// The wild address.
        address: u64,
    },
    /// Instruction budget exhausted.
    OutOfFuel,
    /// Call depth exceeded.
    StackOverflow,
    /// Virtual dispatch failure.
    BadDispatch {
        /// The method.
        method: String,
    },
    /// Unknown entry function.
    NoSuchFunction(String),
}

impl std::fmt::Display for MachineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineFault::UnexpectedTrap {
                function,
                pc,
                kind,
                offset,
                nearest_site,
            } => {
                write!(
                    f,
                    "hardware trap at unregistered pc {pc} in {function}: {} access",
                    match kind {
                        AccessKind::Read => "read",
                        AccessKind::Write => "write",
                    },
                )?;
                match offset {
                    Some(off) => write!(f, " at static offset {off}")?,
                    None => write!(f, " with a dynamic offset")?,
                }
                match nearest_site {
                    Some((spc, check)) if check.is_some() => {
                        write!(f, "; nearest site pc {spc} discharges check {check}")
                    }
                    Some((spc, _)) => write!(f, "; nearest site pc {spc} is over-marking"),
                    None => write!(f, "; the function registers no sites"),
                }
            }
            MachineFault::WildAccess { function, address } => {
                write!(f, "wild access at {address:#x} in {function}")
            }
            MachineFault::OutOfFuel => write!(f, "machine fuel exhausted"),
            MachineFault::StackOverflow => write!(f, "machine call depth exceeded"),
            MachineFault::BadDispatch { method } => write!(f, "dispatch of `{method}` failed"),
            MachineFault::NoSuchFunction(n) => write!(f, "no function `{n}`"),
        }
    }
}

impl std::error::Error for MachineFault {}

/// A typed observable value, compatible with [`njc_vm::Value`] semantics
/// (compared bit-exactly for floats).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MValue {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Reference address.
    Ref(u64),
}

impl MValue {
    fn from_bits(bits: u64, ty: Type) -> MValue {
        match ty {
            Type::Int => MValue::Int(bits as i64),
            Type::Float => MValue::Float(f64::from_bits(bits)),
            Type::Ref => MValue::Ref(bits),
        }
    }
}

/// The observable outcome of a machine run.
#[derive(Clone, PartialEq, Debug)]
pub struct MachineOutcome {
    /// Return value of the entry function.
    pub result: Option<MValue>,
    /// Escaped exception, if any.
    pub exception: Option<ExceptionKind>,
    /// Observed values, in order.
    pub trace: Vec<MValue>,
    /// Statistics.
    pub stats: MachineStats,
}

enum Flow {
    Return(Option<u64>),
    Threw(ExceptionKind),
}

/// The machine.
pub struct Machine<'m> {
    module: &'m MachineModule,
    platform: Platform,
    mem: GuardedMemory,
    stats: MachineStats,
    trace: Vec<MValue>,
    fuel: u64,
}

const MAX_DEPTH: usize = 256;

impl<'m> Machine<'m> {
    /// Creates a machine for `module` on `platform`.
    pub fn new(module: &'m MachineModule, platform: Platform) -> Self {
        Machine {
            module,
            platform,
            mem: GuardedMemory::new(platform.trap),
            stats: MachineStats::default(),
            trace: Vec::new(),
            fuel: 200_000_000,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `entry` (no arguments) to completion.
    ///
    /// # Errors
    /// Returns a [`MachineFault`] on compiler bugs or resource exhaustion;
    /// escaped Java exceptions are a normal outcome.
    pub fn run(mut self, entry: &str) -> Result<MachineOutcome, MachineFault> {
        let idx = self
            .module
            .function_by_name(entry)
            .ok_or_else(|| MachineFault::NoSuchFunction(entry.to_string()))?;
        let f = &self.module.functions[idx];
        let ret_ty = f.ret;
        let flow = self.call(idx, &[], 0)?;
        let (result, exception) = match flow {
            Flow::Return(bits) => (
                bits.and_then(|b| ret_ty.map(|t| MValue::from_bits(b, t))),
                None,
            ),
            Flow::Threw(k) => (None, Some(k)),
        };
        Ok(MachineOutcome {
            result,
            exception,
            trace: self.trace,
            stats: self.stats,
        })
    }

    fn charge(&mut self, c: u64) {
        self.stats.cycles += c;
    }

    fn retire(&mut self) -> Result<(), MachineFault> {
        self.stats.insts += 1;
        if self.stats.insts > self.fuel {
            return Err(MachineFault::OutOfFuel);
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn call(&mut self, fidx: usize, args: &[u64], depth: usize) -> Result<Flow, MachineFault> {
        if depth > MAX_DEPTH {
            return Err(MachineFault::StackOverflow);
        }
        let func = &self.module.functions[fidx];
        let cost = self.platform.cost;
        let mut regs = vec![0u64; func.num_regs];
        regs[..args.len()].copy_from_slice(args);
        let mut pc = 0usize;

        'dispatch: loop {
            if pc >= func.code.len() {
                panic!("{}: fell off code at pc {pc}", func.name);
            }
            self.retire()?;
            // Exception raising helper: unwind through the handler table or
            // propagate to the caller.
            macro_rules! raise {
                ($kind:expr, $at:expr) => {{
                    self.charge(cost.throw_dispatch);
                    match func.handlers.lookup($at, $kind) {
                        Some(h) => {
                            if let Some(code_reg) = h.code_reg {
                                regs[code_reg.index()] = $kind.code() as u64;
                            }
                            pc = h.handler_pc;
                            continue 'dispatch;
                        }
                        None => return Ok(Flow::Threw($kind)),
                    }
                }};
            }

            let inst = &func.code[pc];
            match inst {
                MInst::LoadImm { dst, bits } => {
                    self.charge(cost.int_alu);
                    regs[dst.index()] = *bits;
                    pc += 1;
                }
                MInst::Mov { dst, src } => {
                    self.charge(cost.int_alu);
                    regs[dst.index()] = regs[src.index()];
                    pc += 1;
                }
                MInst::Alu { op, dst, a, b } => {
                    let x = regs[a.index()] as i64;
                    let y = regs[b.index()] as i64;
                    let v = match op {
                        AluOp::Add => {
                            self.charge(cost.int_alu);
                            x.wrapping_add(y)
                        }
                        AluOp::Sub => {
                            self.charge(cost.int_alu);
                            x.wrapping_sub(y)
                        }
                        AluOp::Mul => {
                            self.charge(cost.int_mul);
                            x.wrapping_mul(y)
                        }
                        AluOp::Div | AluOp::Rem => {
                            self.charge(cost.int_div);
                            if y == 0 {
                                raise!(ExceptionKind::Arithmetic, pc);
                            }
                            if x == i64::MIN && y == -1 {
                                if *op == AluOp::Div {
                                    x
                                } else {
                                    0
                                }
                            } else if *op == AluOp::Div {
                                x / y
                            } else {
                                x % y
                            }
                        }
                        AluOp::And => {
                            self.charge(cost.int_alu);
                            x & y
                        }
                        AluOp::Or => {
                            self.charge(cost.int_alu);
                            x | y
                        }
                        AluOp::Xor => {
                            self.charge(cost.int_alu);
                            x ^ y
                        }
                        AluOp::Shl => {
                            self.charge(cost.int_alu);
                            x.wrapping_shl(y as u32 & 63)
                        }
                        AluOp::Shr => {
                            self.charge(cost.int_alu);
                            x.wrapping_shr(y as u32 & 63)
                        }
                        AluOp::Ushr => {
                            self.charge(cost.int_alu);
                            ((x as u64).wrapping_shr(y as u32 & 63)) as i64
                        }
                    };
                    regs[dst.index()] = v as u64;
                    pc += 1;
                }
                MInst::Falu { op, dst, a, b } => {
                    let x = f64::from_bits(regs[a.index()]);
                    let y = f64::from_bits(regs[b.index()]);
                    let v = match op {
                        FaluOp::Add => {
                            self.charge(cost.float_alu);
                            x + y
                        }
                        FaluOp::Sub => {
                            self.charge(cost.float_alu);
                            x - y
                        }
                        FaluOp::Mul => {
                            self.charge(cost.float_alu);
                            x * y
                        }
                        FaluOp::Div => {
                            self.charge(cost.float_div);
                            x / y
                        }
                        FaluOp::Rem => {
                            self.charge(cost.float_div);
                            x % y
                        }
                    };
                    regs[dst.index()] = v.to_bits();
                    pc += 1;
                }
                MInst::Neg { dst, a, float } => {
                    self.charge(cost.int_alu);
                    regs[dst.index()] = if *float {
                        (-f64::from_bits(regs[a.index()])).to_bits()
                    } else {
                        (regs[a.index()] as i64).wrapping_neg() as u64
                    };
                    pc += 1;
                }
                MInst::Cvt { dst, src, to_int } => {
                    self.charge(cost.float_alu);
                    regs[dst.index()] = if *to_int {
                        (f64::from_bits(regs[src.index()]) as i64) as u64
                    } else {
                        ((regs[src.index()] as i64) as f64).to_bits()
                    };
                    pc += 1;
                }
                MInst::Fcmp { dst, cond, a, b } => {
                    self.charge(cost.float_alu);
                    let x = f64::from_bits(regs[a.index()]);
                    let y = f64::from_bits(regs[b.index()]);
                    let r = match cond {
                        Cond::Eq => x == y,
                        Cond::Ne => x != y,
                        Cond::Lt => x < y,
                        Cond::Le => x <= y,
                        Cond::Gt => x > y,
                        Cond::Ge => x >= y,
                    };
                    regs[dst.index()] = r as u64;
                    pc += 1;
                }
                MInst::Load {
                    dst,
                    base,
                    index,
                    imm,
                } => {
                    self.charge(cost.load);
                    let addr = effective(&regs, *base, *index, *imm);
                    match self.mem.read_u64(addr) {
                        Ok(out) => {
                            if out.from_guard && func.sites.contains(pc) {
                                self.stats.missed_npes += 1;
                            }
                            regs[dst.index()] = out.value;
                            pc += 1;
                        }
                        Err(MemoryError::Trap(_)) => {
                            if func.sites.contains(pc) {
                                self.stats.traps_taken += 1;
                                self.charge(cost.trap_taken);
                                raise!(ExceptionKind::NullPointer, pc);
                            }
                            return Err(unexpected_trap(func, pc));
                        }
                        Err(MemoryError::WildAccess { address, .. }) => {
                            return Err(MachineFault::WildAccess {
                                function: func.name.clone(),
                                address,
                            })
                        }
                    }
                }
                MInst::Store {
                    src,
                    base,
                    index,
                    imm,
                } => {
                    self.charge(cost.store);
                    let addr = effective(&regs, *base, *index, *imm);
                    match self.mem.write_u64(addr, regs[src.index()]) {
                        Ok(()) => pc += 1,
                        Err(MemoryError::Trap(_)) => {
                            if func.sites.contains(pc) {
                                self.stats.traps_taken += 1;
                                self.charge(cost.trap_taken);
                                raise!(ExceptionKind::NullPointer, pc);
                            }
                            return Err(unexpected_trap(func, pc));
                        }
                        Err(MemoryError::WildAccess { address, .. }) => {
                            return Err(MachineFault::WildAccess {
                                function: func.name.clone(),
                                address,
                            })
                        }
                    }
                }
                MInst::Br { cond, a, b, target } => {
                    self.charge(cost.branch);
                    let x = regs[a.index()] as i64;
                    let y = regs[b.index()] as i64;
                    pc = if cond.eval(x, y) { *target } else { pc + 1 };
                }
                MInst::Jmp { target } => {
                    self.charge(cost.branch);
                    pc = *target;
                }
                MInst::CheckNull { reg } => {
                    self.charge(cost.explicit_null_check);
                    self.stats.explicit_null_checks += 1;
                    if regs[reg.index()] == 0 {
                        raise!(ExceptionKind::NullPointer, pc);
                    }
                    pc += 1;
                }
                MInst::CheckBounds { index, length } => {
                    self.charge(cost.bound_check);
                    let i = regs[index.index()] as i64;
                    let l = regs[length.index()] as i64;
                    if i < 0 || i >= l {
                        raise!(ExceptionKind::ArrayIndex, pc);
                    }
                    pc += 1;
                }
                MInst::NewObj { dst, class } => {
                    let c = &self.module.classes[class.index()];
                    self.charge(cost.alloc_base + cost.alloc_per_slot * (c.size / 8));
                    let addr = self.mem.alloc(c.size.max(8));
                    self.mem
                        .write_u64(addr, class.index() as u64 + 1)
                        .expect("fresh allocation");
                    regs[dst.index()] = addr;
                    pc += 1;
                }
                MInst::NewArr { dst, elem, len } => {
                    let l = regs[len.index()] as i64;
                    if l < 0 {
                        raise!(ExceptionKind::NegativeArraySize, pc);
                    }
                    self.charge(cost.alloc_base + cost.alloc_per_slot * l as u64);
                    let addr = self.mem.alloc(16 + l as u64 * 8);
                    self.mem
                        .write_u64(addr, l as u64)
                        .expect("fresh allocation");
                    let tag = match elem {
                        Type::Int => 1,
                        Type::Float => 2,
                        Type::Ref => 3,
                    };
                    self.mem.write_u64(addr + 8, tag).expect("fresh allocation");
                    regs[dst.index()] = addr;
                    pc += 1;
                }
                MInst::Call { target, args, dst } => {
                    self.charge(cost.call_overhead);
                    let vals: Vec<u64> = args.iter().map(|r| regs[r.index()]).collect();
                    match self.call(target.index(), &vals, depth + 1)? {
                        Flow::Return(v) => {
                            if let (Some(d), Some(v)) = (dst, v) {
                                regs[d.index()] = v;
                            }
                            pc += 1;
                        }
                        Flow::Threw(k) => raise!(k, pc),
                    }
                }
                MInst::CallVirtual {
                    method,
                    receiver,
                    args,
                    dst,
                } => {
                    self.charge(cost.call_overhead + cost.virtual_dispatch + cost.load);
                    // The dispatch load: header word at offset 0.
                    let base = regs[receiver.index()];
                    let tag = match self.mem.read_u64(base) {
                        Ok(out) => {
                            if out.from_guard && func.sites.contains(pc) {
                                self.stats.missed_npes += 1;
                            }
                            out.value
                        }
                        Err(MemoryError::Trap(_)) => {
                            if func.sites.contains(pc) {
                                self.stats.traps_taken += 1;
                                self.charge(cost.trap_taken);
                                raise!(ExceptionKind::NullPointer, pc);
                            }
                            return Err(unexpected_trap(func, pc));
                        }
                        Err(MemoryError::WildAccess { address, .. }) => {
                            return Err(MachineFault::WildAccess {
                                function: func.name.clone(),
                                address,
                            })
                        }
                    };
                    if tag == 0 {
                        return Err(MachineFault::BadDispatch {
                            method: method.clone(),
                        });
                    }
                    let class = &self.module.classes[(tag - 1) as usize];
                    let callee =
                        *class
                            .methods
                            .get(method)
                            .ok_or_else(|| MachineFault::BadDispatch {
                                method: method.clone(),
                            })?;
                    let mut vals: Vec<u64> = Vec::with_capacity(args.len() + 1);
                    vals.push(base);
                    vals.extend(args.iter().map(|r| regs[r.index()]));
                    match self.call(callee, &vals, depth + 1)? {
                        Flow::Return(v) => {
                            if let (Some(d), Some(v)) = (dst, v) {
                                regs[d.index()] = v;
                            }
                            pc += 1;
                        }
                        Flow::Threw(k) => raise!(k, pc),
                    }
                }
                MInst::Math { op, dst, src } => {
                    self.charge(if self.platform.has_fp_intrinsics {
                        cost.intrinsic
                    } else {
                        cost.math_library_call
                    });
                    let x = f64::from_bits(regs[src.index()]);
                    regs[dst.index()] = op.apply(x).to_bits();
                    pc += 1;
                }
                MInst::Ret { src } => {
                    self.charge(cost.branch);
                    return Ok(Flow::Return(src.map(|r| regs[r.index()])));
                }
                MInst::Throw { kind } => {
                    raise!(*kind, pc);
                }
                MInst::Observe { src, ty } => {
                    self.charge(cost.observe);
                    let v = MValue::from_bits(regs[src.index()], *ty);
                    self.trace.push(v);
                    pc += 1;
                }
            }
        }
    }
}

/// Builds the enriched [`MachineFault::UnexpectedTrap`] for a trap at
/// `pc`: access kind and static offset read off the faulting instruction,
/// plus the nearest registered site as a provenance lead.
fn unexpected_trap(func: &MachineFunction, pc: usize) -> MachineFault {
    let (kind, offset) = match &func.code[pc] {
        MInst::Load { index, imm, .. } => (AccessKind::Read, index.is_none().then_some(*imm)),
        MInst::Store { index, imm, .. } => (AccessKind::Write, index.is_none().then_some(*imm)),
        // The only other trapping instruction is the virtual-dispatch
        // header load at offset 0.
        _ => (AccessKind::Read, Some(0)),
    };
    MachineFault::UnexpectedTrap {
        function: func.name.clone(),
        pc,
        kind,
        offset,
        nearest_site: func.sites.nearest(pc).map(|(spc, info)| (spc, info.check)),
    }
}

fn effective(regs: &[u64], base: Reg, index: Option<Reg>, imm: u64) -> u64 {
    let mut addr = regs[base.index()].wrapping_add(imm);
    if let Some(i) = index {
        addr = addr.wrapping_add((regs[i.index()]).wrapping_mul(8));
    }
    addr
}
