//! Block-local copy propagation.
//!
//! Replaces uses of `dst` with `src` after a `dst = move src` within the
//! same block, as long as neither has been redefined. Inlining and scalar
//! replacement both introduce move chains; this pass lets DCE delete them.

use njc_ir::{BlockId, Function, Inst, Terminator, VarId};

/// Statistics from one copy propagation application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CopyPropStats {
    /// Operand uses rewritten to the copy source.
    pub replaced_uses: usize,
}

fn subst(v: &mut VarId, copies: &[Option<VarId>], stats: &mut CopyPropStats) {
    if let Some(src) = copies[v.index()] {
        *v = src;
        stats.replaced_uses += 1;
    }
}

fn rewrite_inst(inst: &mut Inst, copies: &[Option<VarId>], stats: &mut CopyPropStats) {
    match inst {
        Inst::Const { .. } | Inst::New { .. } => {}
        Inst::Move { src, .. } => subst(src, copies, stats),
        Inst::BinOp { lhs, rhs, .. } | Inst::FCmp { lhs, rhs, .. } => {
            subst(lhs, copies, stats);
            subst(rhs, copies, stats);
        }
        Inst::Neg { src, .. } | Inst::Convert { src, .. } | Inst::IntrinsicOp { src, .. } => {
            subst(src, copies, stats)
        }
        Inst::NullCheck { var, .. } | Inst::Observe { var } => subst(var, copies, stats),
        Inst::BoundCheck { index, length } => {
            subst(index, copies, stats);
            subst(length, copies, stats);
        }
        Inst::GetField { obj, .. } => subst(obj, copies, stats),
        Inst::PutField { obj, value, .. } => {
            subst(obj, copies, stats);
            subst(value, copies, stats);
        }
        Inst::ArrayLength { arr, .. } => subst(arr, copies, stats),
        Inst::ArrayLoad { arr, index, .. } => {
            subst(arr, copies, stats);
            subst(index, copies, stats);
        }
        Inst::ArrayStore {
            arr, index, value, ..
        } => {
            subst(arr, copies, stats);
            subst(index, copies, stats);
            subst(value, copies, stats);
        }
        Inst::NewArray { len, .. } => subst(len, copies, stats),
        Inst::Call { receiver, args, .. } => {
            if let Some(r) = receiver {
                subst(r, copies, stats);
            }
            for a in args {
                subst(a, copies, stats);
            }
        }
    }
}

/// Runs block-local copy propagation on `func` in place.
pub fn run(func: &mut Function) -> CopyPropStats {
    let mut stats = CopyPropStats::default();
    let nv = func.num_vars();
    for bi in 0..func.num_blocks() {
        let block = func.block_mut(BlockId::new(bi));
        let mut copies: Vec<Option<VarId>> = vec![None; nv];
        for inst in &mut block.insts {
            rewrite_inst(inst, &copies, &mut stats);
            if let Some(d) = inst.def() {
                // The def invalidates copies of d and copies *to* d.
                for c in copies.iter_mut() {
                    if *c == Some(d) {
                        *c = None;
                    }
                }
                copies[d.index()] = None;
                if let Inst::Move { dst, src } = inst {
                    if dst != src {
                        copies[dst.index()] = Some(*src);
                    }
                }
            }
        }
        // Terminator operands.
        match &mut block.term {
            Terminator::If { lhs, rhs, .. } => {
                subst(lhs, &copies, &mut stats);
                subst(rhs, &copies, &mut stats);
            }
            Terminator::IfNull { var, .. } => subst(var, &copies, &mut stats),
            Terminator::Return(Some(v)) => subst(v, &copies, &mut stats),
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::parse_function;

    #[test]
    fn copy_is_propagated_to_later_uses() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int v2: int\nbb0:\n  v1 = move v0\n  v2 = add.int v1, v1\n  return v2\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.replaced_uses, 2);
        let s = f.to_string();
        assert!(s.contains("add.int v0, v0"), "{s}");
    }

    #[test]
    fn redefinition_of_source_stops_propagation() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int v2: int\nbb0:\n  v1 = move v0\n  v0 = add.int v0, v0\n  v2 = move v1\n  return v2\n}",
        )
        .unwrap();
        run(&mut f);
        let s = f.to_string();
        assert!(
            s.contains("v2 = move v1"),
            "v1's copy of old v0 must stay: {s}"
        );
    }

    #[test]
    fn chain_of_copies_collapses() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int v2: int\nbb0:\n  v1 = move v0\n  v2 = move v1\n  return v2\n}",
        )
        .unwrap();
        run(&mut f);
        let s = f.to_string();
        assert!(s.contains("return v0"), "{s}");
    }

    #[test]
    fn terminator_operands_rewritten() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int\nbb0:\n  v1 = move v0\n  if lt v1, v0 then bb1 else bb1\nbb1:\n  return v0\n}",
        )
        .unwrap();
        run(&mut f);
        let s = f.to_string();
        assert!(s.contains("if lt v0, v0"), "{s}");
    }
}
