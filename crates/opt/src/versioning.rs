//! Loop versioning for array bounds check elimination — the paper's
//! "array bounds check optimization" (Figure 2 (2)).
//!
//! For a canonical rotated counted loop
//!
//! ```text
//!        if i < end goto preheader else exit     // rotation guard
//! preheader: ...
//! body:  ... boundcheck i, L ... ; i = i + step ; if i < end goto body else exit
//! ```
//!
//! with `end` and `L` loop invariant and `step > 0`, the loop is duplicated
//! behind a runtime guard `i >= 0 && end <= L`: the *fast* version drops
//! the counter-indexed bounds checks (provably in range), the *slow*
//! version is the unmodified original.
//!
//! **The null check coupling** (paper §3.2): the guard compares against
//! `L`, an `arraylength` value — which is only available at the preheader
//! when scalar replacement hoisted the length load there, which in turn is
//! only legal once phase 1 moved the array's *null check* to the
//! preheader. Configurations without backward null check motion therefore
//! get little or no versioning: null checks really do "become barriers
//! and significantly limit the effectiveness of other optimizations"
//! (paper §1).

use njc_ir::{BlockId, Cond, ConstValue, Function, Inst, Terminator, Type, VarId};

use crate::loops::{find_loops, Dominators, NaturalLoop};

/// Statistics from one versioning application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VersioningStats {
    /// Loops duplicated behind a bounds guard.
    pub loops_versioned: usize,
    /// Bounds checks removed from fast versions.
    pub checks_removed: usize,
}

/// Block-count ceiling: versioning doubles loop bodies, so cap code growth.
const MAX_BLOCKS: usize = 600;

struct Plan {
    preheader: BlockId,
    header: BlockId,
    latch: BlockId,
    body: Vec<BlockId>,
    counter: VarId,
    end: VarId,
    /// Distinct invariant length vars to guard against `end`.
    lengths: Vec<VarId>,
    /// (block, position) of each removable bounds check.
    removable: Vec<(BlockId, usize)>,
}

fn def_counts(func: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; func.num_vars()];
    for c in counts.iter_mut().take(func.params().len()) {
        *c += 1;
    }
    for b in func.blocks() {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

/// Recognizes the canonical counter: the latch ends with
/// `if lt i, end then header else ...` and contains the loop's only def of
/// `i`, an `i = i + c` with `c` a locally-defined positive constant,
/// positioned after every removable check in the latch.
fn recognize(func: &Function, l: &NaturalLoop, counts: &[u32]) -> Option<Plan> {
    let preheader = l.preheader?;
    let [latch] = l.latches.as_slice() else {
        return None;
    };
    let latch = *latch;
    // No try regions anywhere near.
    if func.block(preheader).try_region.is_some() {
        return None;
    }
    for bi in l.body.iter() {
        if func.block(BlockId::new(bi)).try_region.is_some() {
            return None;
        }
    }
    let Terminator::If {
        cond: Cond::Lt,
        lhs: counter,
        rhs: end,
        then_bb,
        ..
    } = func.block(latch).term
    else {
        return None;
    };
    if then_bb != l.header {
        return None;
    }
    // `end` invariant in the loop.
    for bi in l.body.iter() {
        for inst in &func.block(BlockId::new(bi)).insts {
            if inst.def() == Some(end) {
                return None;
            }
        }
    }
    // The rotation guard: the preheader's single predecessor tests
    // `i < end`, guaranteeing the bound holds on the *first* iteration
    // too. Copy propagation may have rewritten the guard's operand to the
    // counter's initializer, so also accept the source of the counter's
    // last copy in the guard block.
    let preds = func.predecessors();
    let [guard_pred] = preds[preheader.index()].as_slice() else {
        return None;
    };
    let guard_block = func.block(*guard_pred);
    let mut counter_alias = None;
    for inst in &guard_block.insts {
        if inst.def() == Some(counter) {
            counter_alias = match inst {
                Inst::Move { src, .. } => Some(*src),
                _ => None,
            };
        } else if let Some(d) = inst.def() {
            if Some(d) == counter_alias {
                counter_alias = None; // alias overwritten after the copy
            }
        }
    }
    match guard_block.term {
        Terminator::If {
            cond: Cond::Lt,
            lhs,
            rhs,
            then_bb,
            ..
        } if (lhs == counter || Some(lhs) == counter_alias)
            && rhs == end
            && then_bb == preheader => {}
        _ => return None,
    }
    // Skip loops already versioned: some predecessor of the preheader's
    // guard chain compares `end` against a length (Gt end, L).
    for &p in &preds[preheader.index()] {
        if let Terminator::If {
            cond: Cond::Gt,
            lhs,
            ..
        } = func.block(p).term
        {
            if lhs == end {
                return None;
            }
        }
    }

    // The counter's single in-loop def: `i = i + positive-const` in the
    // latch.
    let mut inc_pos = None;
    for bi in l.body.iter() {
        let block = func.block(BlockId::new(bi));
        for (pos, inst) in block.insts.iter().enumerate() {
            if inst.def() == Some(counter) {
                if BlockId::new(bi) != latch || inc_pos.is_some() {
                    return None;
                }
                let Inst::BinOp {
                    op: njc_ir::Op::Add,
                    lhs,
                    rhs,
                    ..
                } = inst
                else {
                    return None;
                };
                if *lhs != counter {
                    return None;
                }
                // rhs must be a positive constant: single definition in the
                // whole function (LICM may have hoisted it out of the
                // latch) and that definition is a positive int const.
                if counts[rhs.index()] != 1 {
                    return None;
                }
                let step_ok = func.blocks().iter().flat_map(|bb| &bb.insts).any(|i| {
                    matches!(
                        i,
                        Inst::Const {
                            dst,
                            value: ConstValue::Int(s),
                        } if dst == rhs && *s > 0
                    )
                });
                if !step_ok {
                    return None;
                }
                inc_pos = Some(pos);
            }
        }
    }
    let inc_pos = inc_pos?;

    // Collect removable bounds checks: index == counter, invariant
    // single-def length, positioned before the increment when in the latch.
    let mut removable = Vec::new();
    let mut lengths = Vec::new();
    for bi in l.body.iter() {
        let block_id = BlockId::new(bi);
        for (pos, inst) in func.block(block_id).insts.iter().enumerate() {
            let Inst::BoundCheck { index, length } = inst else {
                continue;
            };
            if *index != counter || counts[length.index()] != 1 {
                continue;
            }
            // Length defined outside the loop.
            let defined_in_loop = l.body.iter().any(|b2| {
                func.block(BlockId::new(b2))
                    .insts
                    .iter()
                    .any(|i| i.def() == Some(*length))
            });
            if defined_in_loop {
                continue;
            }
            if block_id == latch && pos > inc_pos {
                continue;
            }
            removable.push((block_id, pos));
            if !lengths.contains(length) {
                lengths.push(*length);
            }
        }
    }
    if removable.is_empty() {
        return None;
    }

    Some(Plan {
        preheader,
        header: l.header,
        latch,
        body: l.body.iter().map(BlockId::new).collect(),
        counter,
        end,
        lengths,
        removable,
    })
}

fn remap_term_targets(term: &mut Terminator, map: &dyn Fn(BlockId) -> BlockId) {
    term.map_successors(map);
}

fn apply(func: &mut Function, plan: &Plan, stats: &mut VersioningStats) {
    let _ = plan.latch;
    // Clone the loop body (fast version, bounds checks removed).
    let mut clone_of = std::collections::HashMap::new();
    for &b in &plan.body {
        clone_of.insert(b, func.add_block());
    }
    for &b in &plan.body {
        let nb = clone_of[&b];
        let src = func.block(b).clone();
        let mut insts = Vec::with_capacity(src.insts.len());
        for (pos, inst) in src.insts.iter().enumerate() {
            if plan.removable.contains(&(b, pos)) {
                stats.checks_removed += 1;
                continue;
            }
            insts.push(inst.clone());
        }
        let mut term = src.term.clone();
        remap_term_targets(&mut term, &|t| clone_of.get(&t).copied().unwrap_or(t));
        let dst = func.block_mut(nb);
        dst.insts = insts;
        dst.term = term;
        dst.try_region = None;
    }

    // Landing pads.
    let slow_ph = func.add_block();
    func.block_mut(slow_ph).term = Terminator::Goto(plan.header);
    let fast_ph = func.add_block();
    func.block_mut(fast_ph).term = Terminator::Goto(clone_of[&plan.header]);

    // Guard chain in the preheader: `i < 0 → slow`, then per length
    // `end > L → slow`, else fast.
    let zero = func.new_var(Type::Int);
    func.block_mut(plan.preheader).insts.push(Inst::Const {
        dst: zero,
        value: ConstValue::Int(0),
    });
    // Build guard blocks back to front.
    let mut next = fast_ph;
    for &len in plan.lengths.iter().rev() {
        let g = func.add_block();
        func.block_mut(g).term = Terminator::If {
            cond: Cond::Gt,
            lhs: plan.end,
            rhs: len,
            then_bb: slow_ph,
            else_bb: next,
        };
        next = g;
    }
    func.block_mut(plan.preheader).term = Terminator::If {
        cond: Cond::Lt,
        lhs: plan.counter,
        rhs: zero,
        then_bb: slow_ph,
        else_bb: next,
    };
    stats.loops_versioned += 1;
}

/// Runs loop versioning on `func` in place.
pub fn run(func: &mut Function) -> VersioningStats {
    let mut stats = VersioningStats::default();
    for _round in 0..4 {
        if func.num_blocks() >= MAX_BLOCKS {
            break;
        }
        let doms = Dominators::compute(func);
        let loops = find_loops(func, &doms);
        let counts = def_counts(func);
        let plan = loops.iter().find_map(|l| recognize(func, l, &counts));
        match plan {
            Some(p) => apply(func, &p, &mut stats),
            None => break,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::{verify, FuncBuilder, Op};

    /// sum = Σ arr[i] with the length pre-hoisted to the preheader (as
    /// phase 1 + scalar replacement leave it).
    fn hoisted_loop() -> Function {
        let mut b = FuncBuilder::new("f", &[Type::Ref, Type::Int], Type::Int);
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        // Manually build the post-phase1 shape: check + length at the
        // preheader, bare loads in the loop.
        let i = b.var(Type::Int);
        b.assign(i, zero);
        let preheader = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br_if(Cond::Lt, i, n, preheader, exit);
        b.switch_to(preheader);
        b.null_check(arr);
        let len = b.array_length_unchecked(arr);
        b.goto(body);
        b.switch_to(body);
        b.emit(Inst::BoundCheck {
            index: i,
            length: len,
        });
        let v = b.var(Type::Int);
        b.emit(Inst::ArrayLoad {
            dst: v,
            arr,
            index: i,
            ty: Type::Int,
            exception_site: false,
        });
        b.binop_into(acc, Op::Add, acc, v);
        let one = b.iconst(1);
        b.binop_into(i, Op::Add, i, one);
        b.br_if(Cond::Lt, i, n, body, exit);
        b.switch_to(exit);
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn counter_indexed_check_is_versioned_away() {
        let mut f = hoisted_loop();
        let before_blocks = f.num_blocks();
        let stats = run(&mut f);
        assert_eq!(stats.loops_versioned, 1, "{f}");
        assert_eq!(stats.checks_removed, 1);
        assert!(f.num_blocks() > before_blocks);
        verify(&f).unwrap();
        // One loop body still has the check (slow), one does not (fast).
        let with_check = f
            .blocks()
            .iter()
            .filter(|b| b.insts.iter().any(|i| matches!(i, Inst::BoundCheck { .. })))
            .count();
        assert_eq!(with_check, 1, "{f}");
    }

    #[test]
    fn second_run_is_idempotent() {
        let mut f = hoisted_loop();
        run(&mut f);
        let blocks = f.num_blocks();
        let stats = run(&mut f);
        assert_eq!(stats.loops_versioned, 0, "{f}");
        assert_eq!(f.num_blocks(), blocks);
    }

    #[test]
    fn length_inside_loop_blocks_versioning() {
        // The Old-config shape: the arraylength stays inside the loop (its
        // null check was never hoisted) — no guard can be formed.
        let mut b = FuncBuilder::new("f", &[Type::Ref, Type::Int], Type::Int);
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, n, 1, |b, i| {
            let v = b.array_load(arr, i, Type::Int); // length load in-loop
            b.binop_into(acc, Op::Add, acc, v);
        });
        b.ret(Some(acc));
        let mut f = b.finish();
        let stats = run(&mut f);
        assert_eq!(stats.loops_versioned, 0, "{f}");
    }

    #[test]
    fn variant_end_blocks_versioning() {
        let mut b = FuncBuilder::new("f", &[Type::Ref, Type::Int], Type::Int);
        let arr = b.param(0);
        let n = b.param(1);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        let end = b.var(Type::Int);
        b.assign(end, n);
        b.for_loop(zero, end, 1, |b, i| {
            let v = b.array_load(arr, i, Type::Int);
            b.binop_into(acc, Op::Add, acc, v);
            // end changes inside the loop.
            let one = b.iconst(1);
            b.binop_into(end, Op::Sub, end, one);
        });
        b.ret(Some(acc));
        let mut f = b.finish();
        let stats = run(&mut f);
        assert_eq!(stats.loops_versioned, 0);
    }

    #[test]
    fn versioned_function_verifies_and_keeps_shape() {
        let mut f = hoisted_loop();
        run(&mut f);
        verify(&f).unwrap();
        // The guard chain exists: some block compares end (v1) with Gt.
        let has_guard = f
            .blocks()
            .iter()
            .any(|b| matches!(b.term, Terminator::If { cond: Cond::Gt, .. }));
        assert!(has_guard, "{f}");
    }
}
