//! Scalar replacement: redundant load elimination and loop invariant code
//! motion (LICM) of loads, bounds checks, and pure arithmetic.
//!
//! This is the paper's "scalar replacement" partner optimization
//! (Figure 2 (3), Figure 4). The coupling with the null check optimizer is
//! the point of the whole design:
//!
//! * a load of `a.f` may be hoisted to a loop preheader **only when `a` is
//!   known non-null there** — which is exactly what phase 1's backward
//!   check motion establishes (Figure 4 (3) → (4));
//! * on platforms whose protected page does not trap reads (AIX), loads
//!   with a statically known in-page offset may be hoisted **speculatively
//!   across their null checks** (§3.3.1, Figure 6; the "Speculation"
//!   configuration of Tables 6–7);
//! * a bounds check with invariant operands may be hoisted only when no
//!   side effect or other exception can precede it in an iteration — and
//!   in-loop *null checks are throwing instructions*, so un-hoisted null
//!   checks block bounds check hoisting: the baselines' losses compound,
//!   as the paper's Figure 8 discussion explains.
//!
//! Store sinking (the `a.count' = T` rewrite of Figure 4 (5)) lives in the
//! companion [`crate::sink`] pass, which requires the loop to be fully
//! check-free — i.e. it runs after this pass and phase 1 have done their
//! work.

use njc_core::ctx::{AccessClass, AnalysisCtx};
use njc_core::nonnull::{compute_sets, NonNullProblem};
use njc_dataflow::{solve, BitSet};
use njc_ir::{BlockId, FieldId, Function, Inst, Type, VarId};

use crate::loops::{find_loops, Dominators, NaturalLoop};

/// Configuration for the scalar replacement pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScalarConfig {
    /// Allow speculative hoisting of silent (non-faulting) reads across
    /// their null checks — legal only when the platform does not trap
    /// reads of the protected page (paper §3.3.1).
    pub speculation: bool,
}

/// Statistics from one scalar replacement application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScalarStats {
    /// Loads (getfield / arraylength / array element) hoisted out of loops.
    pub hoisted_loads: usize,
    /// Of which, speculatively (across their null checks).
    pub speculative_loads: usize,
    /// Pure arithmetic instructions hoisted.
    pub hoisted_pure: usize,
    /// Bounds checks hoisted.
    pub hoisted_boundchecks: usize,
    /// Block-local redundant loads replaced by register moves.
    pub local_loads_reused: usize,
}

impl ScalarStats {
    /// Total number of instructions moved or removed.
    pub fn total(&self) -> usize {
        self.hoisted_loads + self.hoisted_pure + self.hoisted_boundchecks + self.local_loads_reused
    }
}

/// Runs scalar replacement on `func` in place.
pub fn run(ctx: &AnalysisCtx<'_>, func: &mut Function, config: ScalarConfig) -> ScalarStats {
    let mut stats = ScalarStats::default();
    local_load_reuse(func, &mut stats);
    licm(ctx, func, config, &mut stats);
    stats
}

// --------------------------------------------------------------------------
// Block-local redundant load elimination (store-to-load forwarding included).
// --------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum MemKey {
    Field(VarId, FieldId),
    Len(VarId),
    Elem(VarId, VarId),
}

impl MemKey {
    fn involves(&self, v: VarId) -> bool {
        match *self {
            MemKey::Field(b, _) => b == v,
            MemKey::Len(b) => b == v,
            MemKey::Elem(b, i) => b == v || i == v,
        }
    }
}

fn local_load_reuse(func: &mut Function, stats: &mut ScalarStats) {
    use std::collections::HashMap;
    for bi in 0..func.num_blocks() {
        let block = func.block_mut(BlockId::new(bi));
        let mut avail: HashMap<MemKey, VarId> = HashMap::new();
        for inst in &mut block.insts {
            // Never touch a marked exception site: it carries an implicit
            // null check (scalar replacement runs before phase 2 in the
            // pipeline, but be safe under arbitrary pass orders).
            if inst.is_exception_site() {
                avail.clear();
                continue;
            }
            // 1. Replace a load whose value is already available.
            let load_key = match inst {
                Inst::GetField {
                    dst, obj, field, ..
                } => Some((MemKey::Field(*obj, *field), *dst)),
                Inst::ArrayLength { dst, arr, .. } => Some((MemKey::Len(*arr), *dst)),
                Inst::ArrayLoad {
                    dst, arr, index, ..
                } => Some((MemKey::Elem(*arr, *index), *dst)),
                _ => None,
            };
            let mut still_a_load = None;
            if let Some((key, dst)) = load_key {
                match avail.get(&key) {
                    Some(&tmp) if tmp != dst => {
                        *inst = Inst::Move { dst, src: tmp };
                        stats.local_loads_reused += 1;
                    }
                    _ => still_a_load = Some((key, dst)),
                }
            }
            // 2. Store / call invalidation.
            let mut forward = None;
            match inst {
                Inst::PutField {
                    obj, field, value, ..
                } => {
                    // A store invalidates every entry for the same field
                    // (any base may alias), then forwards its own value.
                    let field = *field;
                    forward = Some((MemKey::Field(*obj, field), *value));
                    avail.retain(|k, _| !matches!(k, MemKey::Field(_, f) if *f == field));
                }
                Inst::ArrayStore {
                    arr, index, value, ..
                } => {
                    forward = Some((MemKey::Elem(*arr, *index), *value));
                    avail.retain(|k, _| !matches!(k, MemKey::Elem(_, _)));
                }
                Inst::Call { .. } => avail.clear(),
                _ => {}
            }
            // 3. Definition invalidation (before recording this
            //    instruction's own availability).
            if let Some(d) = inst.def() {
                avail.retain(|k, v| *v != d && !k.involves(d));
            }
            // 4. Record new availability.
            if let Some((key, dst)) = still_a_load {
                avail.insert(key, dst);
            }
            if let Some((key, value)) = forward {
                avail.insert(key, value);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Loop invariant code motion.
// --------------------------------------------------------------------------

/// Per-function def counts (vars defined more than once are never hoisted —
/// the builder gives loads fresh temporaries, so this loses nothing on
/// real workloads and keeps the legality argument trivial).
fn def_counts(func: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; func.num_vars()];
    for c in counts.iter_mut().take(func.params().len()) {
        *c += 1;
    }
    for b in func.blocks() {
        for inst in &b.insts {
            if let Some(d) = inst.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

struct LoopInfo {
    /// Vars defined anywhere in the loop.
    defined_in_loop: BitSet,
    /// Field ids stored to in the loop.
    stored_fields: Vec<FieldId>,
    /// Element types stored to in the loop. Array stores only alias array
    /// loads of the same element type (Java arrays are homogeneous, so an
    /// `int[]` store can never change what a `Object[]` row-pointer load
    /// sees) — the disambiguation that lets row pointers hoist out of
    /// loops that store into the rows.
    stored_array_types: Vec<Type>,
    /// Whether the loop contains any call.
    has_call: bool,
}

fn loop_info(func: &Function, l: &NaturalLoop) -> LoopInfo {
    let mut defined = BitSet::new(func.num_vars());
    let mut stored_fields = Vec::new();
    let mut stored_array_types = Vec::new();
    let mut has_call = false;
    for bi in l.body.iter() {
        for inst in &func.block(BlockId::new(bi)).insts {
            if let Some(d) = inst.def() {
                defined.insert(d.index());
            }
            match inst {
                Inst::PutField { field, .. } => stored_fields.push(*field),
                Inst::ArrayStore { ty, .. } if !stored_array_types.contains(ty) => {
                    stored_array_types.push(*ty);
                }
                Inst::Call { .. } => has_call = true,
                _ => {}
            }
        }
    }
    LoopInfo {
        defined_in_loop: defined,
        stored_fields,
        stored_array_types,
        has_call,
    }
}

/// Blocks of the loop that can execute before `target` within a single
/// iteration (backward reachability from `target` inside the loop, not
/// following edges into the header).
fn blocks_before(func: &Function, l: &NaturalLoop, target: BlockId) -> BitSet {
    let preds = func.predecessors();
    let mut seen = BitSet::new(func.num_blocks());
    if target == l.header {
        // Nothing in the loop executes before the header within one
        // iteration (in-loop predecessors of the header are back edges).
        return seen;
    }
    let mut stack: Vec<BlockId> = preds[target.index()]
        .iter()
        .copied()
        .filter(|p| l.contains(*p))
        .collect();
    while let Some(x) = stack.pop() {
        if !seen.insert(x.index()) {
            continue;
        }
        if x == l.header {
            continue; // don't walk past the iteration start
        }
        for &p in &preds[x.index()] {
            if l.contains(p) {
                stack.push(p);
            }
        }
    }
    seen
}

/// Whether `inst` can throw or have a side effect — the condition that
/// blocks *check* hoisting past it (any exception reordering or skipped
/// effect would be observable).
fn blocks_check_hoist(inst: &Inst) -> bool {
    inst.is_side_effecting()
        || matches!(inst, Inst::NullCheck { .. } | Inst::BoundCheck { .. })
        || inst.is_exception_site()
}

/// Bounds facts available at the end of the preheader: scans for
/// `len = arraylength A` / `boundcheck I, len` pairs along the chain of
/// single-predecessor blocks ending at the preheader (facts established in
/// the blocks dominating the loop entry — e.g. an outer loop's body —
/// count too). Facts are invalidated by redefinition of any participating
/// variable later in the chain.
fn preheader_bounds(func: &Function, preheader: BlockId) -> Vec<(VarId, VarId)> {
    use std::collections::HashMap;
    // Collect the dominating single-pred chain, oldest first.
    let preds = func.predecessors();
    let mut chain = vec![preheader];
    let mut cur = preheader;
    for _ in 0..4 {
        match preds[cur.index()].as_slice() {
            [p] if *p != cur && !chain.contains(p) => {
                chain.push(*p);
                cur = *p;
            }
            _ => break,
        }
    }
    chain.reverse();
    let mut len_of: HashMap<VarId, VarId> = HashMap::new();
    let mut ok: Vec<(VarId, VarId)> = Vec::new();
    for b in chain {
        for inst in &func.block(b).insts {
            match inst {
                Inst::ArrayLength { dst, arr, .. } => {
                    len_of.insert(*dst, *arr);
                }
                Inst::BoundCheck { index, length } => {
                    if let Some(&arr) = len_of.get(length) {
                        ok.push((*index, arr));
                    }
                }
                _ => {}
            }
            if let Some(d) = inst.def() {
                if !matches!(inst, Inst::ArrayLength { .. }) {
                    len_of.remove(&d);
                }
                // A redefinition of an index or base var invalidates facts
                // about it.
                ok.retain(|(i, a)| *i != d && *a != d);
            }
        }
    }
    ok
}

fn licm(ctx: &AnalysisCtx<'_>, func: &mut Function, config: ScalarConfig, stats: &mut ScalarStats) {
    let doms = Dominators::compute(func);
    let loops = find_loops(func, &doms);
    let counts = def_counts(func);

    for l in &loops {
        let Some(preheader) = l.preheader else {
            continue;
        };
        // Non-nullness at the preheader exit: the precondition for hoisting
        // a load past the loop (phase 1 is what puts checks there).
        let nonnull = {
            let p = NonNullProblem {
                func,
                sets: compute_sets(func),
                earliest: None,
                entry: None,
                num_facts: func.num_vars(),
            };
            let sol = solve(func, &p);
            sol.outs[preheader.index()].clone()
        };
        let mut info = loop_info(func, l);

        // Fixpoint: hoisting one instruction can enable another (length →
        // bounds check → element load).
        loop {
            let mut hoisted_one = false;
            // Re-scan preheader bounds each round (hoists add to it).
            let bounds = preheader_bounds(func, preheader);

            'scan: for bi in l.body.iter() {
                let block_id = BlockId::new(bi);
                let insts_len = func.block(block_id).insts.len();
                for pos in 0..insts_len {
                    let inst = func.block(block_id).insts[pos].clone();
                    if inst.is_exception_site() {
                        continue;
                    }
                    let single_def = |d: VarId| counts[d.index()] == 1;
                    let invariant = |v: VarId| !info.defined_in_loop.contains(v.index());
                    let ok = match &inst {
                        Inst::Const { dst, .. } => single_def(*dst),
                        Inst::Move { dst, src } => single_def(*dst) && invariant(*src),
                        Inst::BinOp {
                            dst,
                            op,
                            lhs,
                            rhs,
                            ty,
                        } => {
                            !op.can_throw(*ty)
                                && single_def(*dst)
                                && invariant(*lhs)
                                && invariant(*rhs)
                        }
                        Inst::Neg { dst, src, .. }
                        | Inst::Convert { dst, src, .. }
                        | Inst::IntrinsicOp { dst, src, .. } => single_def(*dst) && invariant(*src),
                        Inst::FCmp { dst, lhs, rhs, .. } => {
                            single_def(*dst) && invariant(*lhs) && invariant(*rhs)
                        }
                        Inst::GetField {
                            dst, obj, field, ..
                        } => {
                            single_def(*dst)
                                && invariant(*obj)
                                && !info.has_call
                                && !info.stored_fields.contains(field)
                                && load_hoist_legal(ctx, &inst, *obj, &nonnull, config)
                        }
                        Inst::ArrayLength { dst, arr, .. } => {
                            single_def(*dst)
                                && invariant(*arr)
                                && !info.has_call
                                && load_hoist_legal(ctx, &inst, *arr, &nonnull, config)
                        }
                        Inst::ArrayLoad {
                            dst,
                            arr,
                            index,
                            ty,
                            ..
                        } => {
                            single_def(*dst)
                                && invariant(*arr)
                                && invariant(*index)
                                && !info.has_call
                                && !info.stored_array_types.contains(ty)
                                // Element offsets are dynamic: only a proven
                                // non-null base AND proven bounds make the
                                // hoisted load non-faulting.
                                && nonnull.contains(arr.index())
                                && bounds.contains(&(*index, *arr))
                        }
                        Inst::BoundCheck { index, length } => {
                            invariant(*index)
                                && invariant(*length)
                                && l.latches.iter().all(|&la| doms.dominates(block_id, la))
                                && check_hoist_anticipated(func, l, block_id, pos)
                        }
                        _ => false,
                    };
                    if !ok {
                        continue;
                    }
                    // Hoist: remove from the loop block, append to the
                    // preheader. The definition leaves the loop, so its
                    // destination becomes invariant for later rounds.
                    let inst = func.block_mut(block_id).insts.remove(pos);
                    if let Some(d) = inst.def() {
                        info.defined_in_loop.remove(d.index());
                    }
                    match &inst {
                        Inst::GetField { obj, .. } => {
                            stats.hoisted_loads += 1;
                            if !nonnull.contains(obj.index()) {
                                stats.speculative_loads += 1;
                            }
                        }
                        Inst::ArrayLength { arr, .. } => {
                            stats.hoisted_loads += 1;
                            if !nonnull.contains(arr.index()) {
                                stats.speculative_loads += 1;
                            }
                        }
                        Inst::ArrayLoad { .. } => stats.hoisted_loads += 1,
                        Inst::BoundCheck { .. } => stats.hoisted_boundchecks += 1,
                        _ => stats.hoisted_pure += 1,
                    }
                    func.block_mut(preheader).insts.push(inst);
                    hoisted_one = true;
                    // Positions shifted: restart the scan.
                    break 'scan;
                }
            }
            if !hoisted_one {
                break;
            }
        }
    }
}

/// Legality of hoisting a load with statically-known offset to the
/// preheader: either the base is proven non-null there, or the read is
/// silent on this platform and speculation is enabled.
fn load_hoist_legal(
    ctx: &AnalysisCtx<'_>,
    inst: &Inst,
    base: VarId,
    nonnull: &BitSet,
    config: ScalarConfig,
) -> bool {
    if nonnull.contains(base.index()) {
        return true;
    }
    if !config.speculation {
        return false;
    }
    matches!(ctx.classify_access(inst), Some((_, AccessClass::Silent)))
}

/// Whether a check at `(block, pos)` executes before any side effect or
/// other exception in every iteration — the condition for hoisting it to
/// the preheader (the AIOOBE may only move earlier past non-observable
/// work).
fn check_hoist_anticipated(func: &Function, l: &NaturalLoop, block: BlockId, pos: usize) -> bool {
    // Instructions before it in its own block.
    for inst in &func.block(block).insts[..pos] {
        if blocks_check_hoist(inst) {
            return false;
        }
    }
    // Whole blocks that can execute before it in the iteration.
    let before = blocks_before(func, l, block);
    for bi in before.iter() {
        if bi == block.index() {
            // A cycle within the loop body reaching back — conservative.
            return false;
        }
        for inst in &func.block(BlockId::new(bi)).insts {
            if blocks_check_hoist(inst) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::TrapModel;
    use njc_core::phase1;
    use njc_ir::{parse_function, verify, Module, Type};

    fn module() -> Module {
        let mut m = Module::new("t");
        m.add_class("C", &[("f", Type::Int), ("g", Type::Int)]);
        m
    }

    const LOOP_SRC: &str = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int v4: int
bb0:
  v2 = const 0
  goto bb1
bb1:
  nullcheck v0
  v3 = getfield v0, field0
  v2 = add.int v2, v3
  if lt v2, v1 then bb1 else bb2
bb2:
  return v2
}";

    #[test]
    fn load_not_hoisted_without_nullcheck_hoist() {
        // Without phase 1, the check sits inside the loop, the base is not
        // non-null at the preheader, and the load must stay.
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(LOOP_SRC).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        assert_eq!(stats.hoisted_loads, 0, "{f}");
    }

    #[test]
    fn load_hoisted_after_phase1() {
        // Figure 4: phase 1 hoists the check; then the load becomes
        // hoistable.
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(LOOP_SRC).unwrap();
        phase1::run(&ctx, &mut f);
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        assert_eq!(stats.hoisted_loads, 1, "{f}");
        verify(&f).unwrap();
        // The load now sits in bb0 next to the hoisted check.
        assert!(f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| matches!(i, Inst::GetField { .. })));
    }

    #[test]
    fn speculation_hoists_silent_read_on_aix() {
        // §3.3.1/Table 6: on AIX the read cannot trap, so with speculation
        // enabled it hoists even though its null check is still in the loop.
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::aix_ppc());
        let mut f = parse_function(LOOP_SRC).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig { speculation: true });
        assert_eq!(stats.hoisted_loads, 1, "{f}");
        assert_eq!(stats.speculative_loads, 1);
        // Without speculation it must stay.
        let mut f2 = parse_function(LOOP_SRC).unwrap();
        let stats2 = run(&ctx, &mut f2, ScalarConfig { speculation: false });
        assert_eq!(stats2.hoisted_loads, 0);
    }

    #[test]
    fn no_speculation_on_windows_where_reads_trap() {
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(LOOP_SRC).unwrap();
        // Even with the flag on, a trapping read cannot be speculated.
        let stats = run(&ctx, &mut f, ScalarConfig { speculation: true });
        assert_eq!(stats.hoisted_loads, 0, "{f}");
    }

    #[test]
    fn store_to_same_field_blocks_hoist() {
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  nullcheck v0
  v3 = getfield v0, field0
  v2 = const 0
  goto bb1
bb1:
  nullcheck v0
  v3 = getfield v0, field0
  v2 = add.int v2, v3
  nullcheck v0
  putfield v0, field0, v2
  if lt v2, v1 then bb1 else bb2
bb2:
  return v2
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        assert_eq!(stats.hoisted_loads, 0, "aliasing store blocks hoist: {f}");
    }

    #[test]
    fn local_load_reuse_within_block() {
        let src = "\
func f(v0: ref) -> int {
  locals v1: int v2: int v3: int
bb0:
  nullcheck v0
  v1 = getfield v0, field0
  nullcheck v0
  v2 = getfield v0, field0
  v3 = add.int v1, v2
  return v3
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        assert_eq!(stats.local_loads_reused, 1, "{f}");
        verify(&f).unwrap();
        assert!(f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Move { .. })));
    }

    #[test]
    fn store_forwarding_feeds_following_load() {
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int
bb0:
  nullcheck v0
  putfield v0, field0, v1
  nullcheck v0
  v2 = getfield v0, field0
  return v2
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        assert_eq!(stats.local_loads_reused, 1, "{f}");
    }

    #[test]
    fn intervening_store_blocks_local_reuse() {
        let src = "\
func f(v0: ref, v1: ref) -> int {
  locals v2: int v3: int v4: int
bb0:
  nullcheck v0
  v2 = getfield v0, field0
  nullcheck v1
  putfield v1, field0, v2
  nullcheck v0
  v3 = getfield v0, field0
  v4 = add.int v2, v3
  return v4
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        // v1 may alias v0: the second load must not reuse v2. (The store
        // forwards its own value under key (v1, field0) only.)
        assert_eq!(stats.local_loads_reused, 0, "{f}");
    }

    #[test]
    fn row_pointer_pattern_hoists_length_check_and_load() {
        // The 2-D array pattern of Assignment / Neural Net / LU: a[i] is
        // invariant in the inner loop. After phase 1 the whole access
        // sequence (length, bounds check, element load) hoists.
        let src = "\
func f(v0: ref, v1: int, v9: int) -> int {
  locals v2: int v3: int v4: ref v5: int v6: int v7: int v8: int
bb0:
  v2 = const 0
  v3 = const 0
  goto bb1
bb1:
  nullcheck v0
  v5 = arraylength v0
  boundcheck v9, v5
  v4 = aload.ref v0[v9]
  nullcheck v4
  v6 = arraylength v4
  boundcheck v3, v6
  v7 = aload.int v4[v3]
  v2 = add.int v2, v7
  v3 = add.int v3, v3
  if lt v3, v1 then bb1 else bb2
bb2:
  return v2
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        // Iterate phase 1 with scalar replacement, as Figure 2 prescribes:
        // round 1 hoists the check of v0, the row length/bounds/load;
        // round 2 hoists the check of the (now invariant) row v4 and then
        // its arraylength.
        let mut total = ScalarStats::default();
        for _ in 0..2 {
            phase1::run(&ctx, &mut f);
            let s = run(&ctx, &mut f, ScalarConfig::default());
            total.hoisted_loads += s.hoisted_loads;
            total.hoisted_boundchecks += s.hoisted_boundchecks;
        }
        // arraylength v0, aload v0[v9] (row), arraylength v4 — but not the
        // inner element load (v3 varies).
        assert!(total.hoisted_loads >= 3, "hoisted {total:?}: {f}");
        assert_eq!(total.hoisted_boundchecks, 1, "{f}");
        verify(&f).unwrap();
    }

    #[test]
    fn variant_index_load_stays() {
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int v4: int v5: int
bb0:
  nullcheck v0
  v4 = arraylength v0
  v2 = const 0
  v3 = const 0
  goto bb1
bb1:
  nullcheck v0
  v4 = arraylength v0
  boundcheck v3, v4
  v5 = aload.int v0[v3]
  v2 = add.int v2, v5
  v3 = add.int v3, v3
  if lt v3, v1 then bb1 else bb2
bb2:
  return v2
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        phase1::run(&ctx, &mut f);
        let stats = run(&ctx, &mut f, ScalarConfig::default());
        // v3 (index) varies: the element load and bounds check stay.
        assert_eq!(stats.hoisted_boundchecks, 0, "{f}");
        assert!(f
            .block(BlockId(1))
            .insts
            .iter()
            .any(|i| matches!(i, Inst::ArrayLoad { .. })));
    }
}
