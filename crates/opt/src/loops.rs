//! Dominators and natural loop detection.
//!
//! The scalar replacement / loop invariant code motion pass needs to know
//! where loops are and which blocks execute on every iteration. Both are
//! classic bit-vector computations, small enough to run per-function on
//! every pipeline iteration.

use njc_dataflow::BitSet;
use njc_ir::{BlockId, Function};

/// Dominator sets: `doms[b]` contains every block that dominates `b`
/// (including `b` itself).
#[derive(Clone, Debug)]
pub struct Dominators {
    sets: Vec<BitSet>,
}

impl Dominators {
    /// Computes dominators by the standard iterative bit-vector algorithm.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let preds = func.predecessors();
        let entry = func.entry().index();
        let mut sets: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
        sets[entry] = BitSet::new(n);
        sets[entry].insert(entry);

        let order = func.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                if bi == entry {
                    continue;
                }
                let mut new = BitSet::full(n);
                let mut any_pred = false;
                for &p in &preds[bi] {
                    new.intersect_with(&sets[p.index()]);
                    any_pred = true;
                }
                if !any_pred {
                    // Unreachable: dominated by everything (vacuous).
                    new = BitSet::full(n);
                }
                new.insert(bi);
                if new != sets[bi] {
                    sets[bi] = new;
                    changed = true;
                }
            }
        }
        Dominators { sets }
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.sets[b.index()].contains(a.index())
    }
}

/// A natural loop: a header plus the body of every back edge targeting it.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header (the back edges' target).
    pub header: BlockId,
    /// Every block in the loop, including the header.
    pub body: BitSet,
    /// The sources of the loop's back edges.
    pub latches: Vec<BlockId>,
    /// The unique predecessor of the header outside the loop, if there is
    /// exactly one (hoist target). `None` when the loop has no usable
    /// preheader; such loops are skipped by LICM.
    pub preheader: Option<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` is inside the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(b.index())
    }
}

/// Finds every natural loop in `func`. Loops sharing a header are merged.
/// Returns loops sorted innermost-first (smaller bodies first) so LICM can
/// process nests inside-out.
pub fn find_loops(func: &Function, doms: &Dominators) -> Vec<NaturalLoop> {
    let n = func.num_blocks();
    let preds = func.predecessors();
    let mut by_header: Vec<Option<NaturalLoop>> = vec![None; n];

    for b in func.blocks() {
        for s in func.successors(b.id) {
            if doms.dominates(s, b.id) {
                // Back edge b -> s: collect the natural loop body.
                let header = s;
                let mut body = BitSet::new(n);
                body.insert(header.index());
                let mut stack = vec![b.id];
                while let Some(x) = stack.pop() {
                    if body.insert(x.index()) {
                        for &p in &preds[x.index()] {
                            stack.push(p);
                        }
                    }
                }
                let entry = by_header[header.index()].get_or_insert_with(|| NaturalLoop {
                    header,
                    body: BitSet::new(n),
                    latches: Vec::new(),
                    preheader: None,
                });
                entry.body.union_with(&body);
                entry.body.insert(header.index());
                entry.latches.push(b.id);
            }
        }
    }

    let mut loops: Vec<NaturalLoop> = by_header.into_iter().flatten().collect();
    // Determine preheaders.
    for l in &mut loops {
        let outside: Vec<BlockId> = preds[l.header.index()]
            .iter()
            .copied()
            .filter(|p| !l.body.contains(p.index()))
            .collect();
        l.preheader = match outside.as_slice() {
            [p] => {
                // The preheader must branch only to the header (otherwise an
                // insertion there would execute on unrelated paths) and must
                // not sit inside a different try region.
                let only_to_header = func.successors(*p) == vec![l.header];
                let same_region = func.block(*p).try_region == func.block(l.header).try_region;
                (only_to_header && same_region).then_some(*p)
            }
            _ => None,
        };
    }
    loops.sort_by_key(|l| l.body.count());
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::{FuncBuilder, Op, Type};

    fn loop_func() -> Function {
        let mut b = FuncBuilder::new("l", &[Type::Int], Type::Int);
        let n = b.param(0);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, n, 1, |b, i| {
            b.binop_into(acc, Op::Add, acc, i);
        });
        b.ret(Some(acc));
        b.finish()
    }

    #[test]
    fn entry_dominates_everything() {
        let f = loop_func();
        let d = Dominators::compute(&f);
        for b in f.blocks() {
            assert!(d.dominates(f.entry(), b.id));
            assert!(d.dominates(b.id, b.id));
        }
    }

    #[test]
    fn single_loop_found_with_preheader() {
        let f = loop_func();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        // Rotated for_loop shape: entry(0) -> preheader(1) -> body(2),
        // body -> body | exit(3).
        assert_eq!(l.header, BlockId(2));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(1)));
        assert!(!l.contains(BlockId(3)));
        assert_eq!(l.preheader, Some(BlockId(1)));
        assert_eq!(l.latches, vec![BlockId(2)]);
    }

    #[test]
    fn nested_loops_sorted_innermost_first() {
        let mut b = FuncBuilder::new("n2", &[Type::Int], Type::Int);
        let n = b.param(0);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.for_loop(zero, n, 1, |b, _i| {
            b.for_loop(zero, n, 1, |b, j| {
                b.binop_into(acc, Op::Add, acc, j);
            });
        });
        b.ret(Some(acc));
        let f = b.finish();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 2);
        assert!(loops[0].body.count() < loops[1].body.count());
        // The inner loop is contained in the outer one.
        for x in loops[0].body.iter() {
            assert!(loops[1].body.contains(x));
        }
        // Both have preheaders.
        assert!(loops[0].preheader.is_some());
        assert!(loops[1].preheader.is_some());
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FuncBuilder::new("s", &[], Type::Int);
        let v = b.iconst(3);
        b.ret(Some(v));
        let f = b.finish();
        let d = Dominators::compute(&f);
        assert!(find_loops(&f, &d).is_empty());
    }

    #[test]
    fn do_while_loop_detected() {
        let mut b = FuncBuilder::new("dw", &[Type::Int], Type::Int);
        let n = b.param(0);
        let zero = b.iconst(0);
        let acc = b.var(Type::Int);
        b.assign(acc, zero);
        b.do_while_loop(zero, n, 1, |b, i| {
            b.binop_into(acc, Op::Add, acc, i);
        });
        b.ret(Some(acc));
        let f = b.finish();
        let d = Dominators::compute(&f);
        let loops = find_loops(&f, &d);
        assert_eq!(loops.len(), 1);
        assert!(loops[0].preheader.is_some());
    }
}
