//! Dead code elimination.
//!
//! Removes pure instructions whose results are never used, driven by a
//! global backward liveness analysis. Null checks, bounds checks, stores,
//! calls, allocations, and anything marked as an exception site are never
//! removed here — their effects are not value flow.

use njc_dataflow::{solve, BitSet, Direction, Meet, Problem};
use njc_ir::{BlockId, Function, Inst};

/// Statistics from one DCE application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DceStats {
    /// Instructions removed.
    pub removed: usize,
}

/// Whether the instruction may be deleted when its definition is dead.
fn is_removable(inst: &Inst) -> bool {
    if inst.is_exception_site() {
        // A marked site carries an implicit null check.
        return false;
    }
    match inst {
        Inst::Const { .. }
        | Inst::Move { .. }
        | Inst::Neg { .. }
        | Inst::Convert { .. }
        | Inst::FCmp { .. }
        | Inst::IntrinsicOp { .. }
        | Inst::GetField { .. }
        | Inst::ArrayLength { .. }
        | Inst::ArrayLoad { .. } => true,
        Inst::BinOp { op, ty, .. } => !op.can_throw(*ty),
        _ => false,
    }
}

struct Liveness<'a> {
    func: &'a Function,
}

impl Problem for Liveness<'_> {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn num_facts(&self) -> usize {
        self.func.num_vars()
    }
    fn transfer(&self, block: BlockId, input: &BitSet, output: &mut BitSet) {
        // input = live-out; output = live-in.
        output.copy_from(input);
        let b = self.func.block(block);
        for v in b.term.uses() {
            output.insert(v.index());
        }
        for inst in b.insts.iter().rev() {
            if let Some(d) = inst.def() {
                output.remove(d.index());
            }
            for u in inst.uses() {
                output.insert(u.index());
            }
        }
    }
}

/// Runs DCE to a fixpoint on `func` in place.
pub fn run(func: &mut Function) -> DceStats {
    let mut stats = DceStats::default();
    loop {
        let sol = solve(func, &Liveness { func });
        let mut removed_this_round = 0;
        for bi in 0..func.num_blocks() {
            let block_id = BlockId::new(bi);
            // Recompute liveness backwards through the block from live-out.
            let mut live = sol.ins[bi].clone(); // backward: ins = live-out side? no:
                                                // For backward problems the solver's `outs` hold the meet of
                                                // successors (live-out) and `ins` the transferred value
                                                // (live-in). We need live *after* each instruction, so walk
                                                // from live-out.
            live.copy_from(&sol.outs[bi]);
            let block = func.block(block_id);
            for v in block.term.uses() {
                live.insert(v.index());
            }
            let mut keep = vec![true; block.insts.len()];
            for (i, inst) in block.insts.iter().enumerate().rev() {
                let dead_def = inst
                    .def()
                    .map(|d| !live.contains(d.index()))
                    .unwrap_or(false);
                if dead_def && is_removable(inst) {
                    keep[i] = false;
                    removed_this_round += 1;
                    continue; // its uses do not become live
                }
                if let Some(d) = inst.def() {
                    live.remove(d.index());
                }
                for u in inst.uses() {
                    live.insert(u.index());
                }
            }
            let block = func.block_mut(block_id);
            let mut it = keep.iter();
            block.insts.retain(|_| *it.next().unwrap());
        }
        stats.removed += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::parse_function;

    #[test]
    fn unused_const_removed() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int\nbb0:\n  v1 = const 42\n  return v0\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.removed, 1);
        assert!(f.block(BlockId(0)).insts.is_empty());
    }

    #[test]
    fn chain_of_dead_code_removed_transitively() {
        let mut f = parse_function(
            "func f(v0: int) -> int {\n  locals v1: int v2: int v3: int\nbb0:\n  v1 = const 1\n  v2 = add.int v1, v0\n  v3 = add.int v2, v2\n  return v0\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.removed, 3);
    }

    #[test]
    fn null_checks_never_removed() {
        let mut f = parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  nullcheck v0\n  v1 = const 0\n  return v1\n}",
        )
        .unwrap();
        run(&mut f);
        assert!(f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| matches!(i, Inst::NullCheck { .. })));
    }

    #[test]
    fn dead_load_removed_but_marked_site_kept() {
        let mut f = parse_function(
            "func f(v0: ref) -> int {\n  locals v1: int v2: int v3: int\nbb0:\n  v1 = getfield v0, field0\n  v2 = getfield v0, field1 [site]\n  v3 = const 0\n  return v3\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.removed, 1, "{f}");
        assert!(f
            .block(BlockId(0))
            .insts
            .iter()
            .any(|i| i.is_exception_site()));
    }

    #[test]
    fn live_through_loop_kept() {
        let src = "\
func f(v0: int) -> int {
  locals v1: int v2: int
bb0:
  v1 = const 0
  goto bb1
bb1:
  v1 = add.int v1, v0
  if lt v1, v0 then bb1 else bb2
bb2:
  return v1
}";
        let mut f = parse_function(src).unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.removed, 0, "{f}");
    }

    #[test]
    fn stores_and_calls_kept() {
        let mut f = parse_function(
            "func f(v0: ref, v1: int) -> int {\nbb0:\n  putfield v0, field0, v1\n  v2 = call fn0(v1)\n  return v1\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.removed, 0, "call result dead but call kept: {f}");
    }
}
