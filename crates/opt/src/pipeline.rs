//! The optimization pipeline of the paper's Figure 2, and the experiment
//! configurations of §5.
//!
//! The architecture *independent* null check optimization (phase 1) is
//! iterated together with array bounds check optimization and scalar
//! replacement — each pass enables the next — and the architecture
//! *dependent* optimization (phase 2) runs once at the end. The evaluation
//! configurations of Tables 1–2 and 6–7 are all expressible as
//! [`ConfigKind`] presets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use njc_arch::{Platform, TrapModel};
use njc_core::ctx::{AnalysisCtx, EntryAssumptions, ExplicitOverride};
use njc_core::{collect_site_records, phase1, phase2, trivial, whaley, NullCheckStats};
use njc_ir::{CfgCache, Function, FunctionId, Module};
use njc_observe::{CheckEvent, FunctionTrace, Ledger, ModuleTrace, PassTimer, Recorder};

use crate::boundcheck;
use crate::copyprop;
use crate::dce;
use crate::inline::{self, InlineConfig};
use crate::intrinsics;
use crate::scalar::{self, ScalarConfig};
use crate::sink;
use crate::versioning;

/// Which null check optimization the configuration runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NullOpt {
    /// No null check optimization at all.
    None,
    /// Whaley's forward elimination (the paper's "Old Null Check").
    Whaley,
    /// The paper's phase 1 (architecture independent), iterated.
    Phase1,
}

/// A fully resolved pipeline configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct OptConfig {
    /// Display name (matches the paper's table row labels).
    pub name: &'static str,
    /// Null check optimization level.
    pub null_opt: NullOpt,
    /// Run the architecture dependent optimization (phase 2).
    pub phase2: bool,
    /// Apply the trivial trap conversion (when phase 2 is off).
    pub trivial_trap: bool,
    /// The trap model the *compiler* assumes. Usually the platform's; the
    /// "No Hardware Trap" baseline uses [`TrapModel::no_traps`], and the
    /// §5.4 "Illegal Implicit" configuration pretends reads trap on AIX.
    pub compiler_trap: TrapModel,
    /// Speculative hoisting of silent reads (§3.3.1, Tables 6–7).
    pub speculation: bool,
    /// Devirtualize + inline before optimizing.
    pub inline: bool,
    /// Number of phase1/boundcheck/scalar iterations (Figure 2's loop).
    pub iterations: usize,
    /// Loop versioning for bounds check removal (ablation toggle).
    pub versioning: bool,
    /// Store sinking / register promotion (ablation toggle).
    pub sinking: bool,
    /// Run the static validator (`njc-analysis`) between passes, recording
    /// any soundness violation in [`PipelineStats::validation_failures`]
    /// tagged with the pass that introduced it. Off in the presets; see
    /// [`optimize_module_validated`].
    pub validate: bool,
    /// Interprocedural non-nullness inference (`njc-interproc`): run the
    /// call-graph fixpoint over the prepared module and seed phase 1's
    /// forward analysis with the inferred parameter, return, and field
    /// facts. Off in every preset (the paper's algorithm is purely
    /// intraprocedural); when off the optimizer output is byte-identical
    /// to a build without this feature.
    pub interproc: bool,
    /// Value-numbered forward non-nullness (`njc-core`'s `gvn` module):
    /// run phase 1 / the Whaley baseline with a second, value-number
    /// indexed non-nullness solution alongside the per-variable one, so
    /// facts survive copies, phi merges, and re-loaded fields. Kills the
    /// legacy analysis cannot justify are attributed `Redundancy::Gvn`.
    /// Off in every preset; when off the optimizer output is
    /// byte-identical to a build without this feature.
    pub gvn: bool,
    /// Worker threads for the per-function stages. Functions are optimized
    /// independently (every pass reads the module only for class and field
    /// layout), so any thread count produces the same module and the same
    /// counters. Per-pass timings are thread CPU time, so they too stay
    /// meaningful under any thread count; elapsed real time is reported
    /// separately in [`PipelineStats::wall_time`]. Values are clamped to
    /// `1..=num_functions`, and [`OptConfig::validate`] forces sequential
    /// execution.
    pub threads: usize,
}

/// Named configuration presets: one per row of the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConfigKind {
    /// "No Null Opt. (No Hardware Trap)" — explicit checks everywhere.
    NoNullOptNoTrap,
    /// "No Null Opt. (Hardware Trap)" — trivial trap conversion only.
    NoNullOptTrap,
    /// "Old Null Check" — Whaley's elimination + trivial conversion.
    OldNullCheck,
    /// "New Null Check (Phase1 only)".
    Phase1Only,
    /// "New Null Check (Phase1+Phase2)".
    Full,
    /// Reference second compiler (the HotSpot column stand-in; see
    /// DESIGN.md §5 for the substitution rationale).
    RefJit,
    /// AIX "Speculation": phase 1, all checks explicit, reads speculated.
    AixSpeculation,
    /// AIX "No Speculation": phase 1, all checks explicit.
    AixNoSpeculation,
    /// AIX "No Null Check Optimization".
    AixNoNullOpt,
    /// AIX "Illegal Implicit (No Speculation)": the Intel phase 2 applied
    /// on AIX, violating the Java specification (§5.4, experiment only).
    AixIllegalImplicit,
}

impl ConfigKind {
    /// Every Windows/IA32 configuration of Tables 1–2, in table row order.
    pub fn table12_rows() -> [ConfigKind; 5] {
        [
            ConfigKind::Full,
            ConfigKind::Phase1Only,
            ConfigKind::OldNullCheck,
            ConfigKind::NoNullOptTrap,
            ConfigKind::NoNullOptNoTrap,
        ]
    }

    /// Every AIX configuration of Tables 6–7, in table row order.
    pub fn table67_rows() -> [ConfigKind; 4] {
        [
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
            ConfigKind::AixNoNullOpt,
            ConfigKind::AixIllegalImplicit,
        ]
    }

    /// Resolves the preset against a platform.
    pub fn to_config(self, platform: &Platform) -> OptConfig {
        let trap = platform.trap;
        match self {
            ConfigKind::NoNullOptNoTrap => OptConfig {
                name: "No Null Opt. (No Hardware Trap)",
                null_opt: NullOpt::None,
                phase2: false,
                trivial_trap: false,
                compiler_trap: TrapModel::no_traps(),
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::NoNullOptTrap => OptConfig {
                name: "No Null Opt. (Hardware Trap)",
                null_opt: NullOpt::None,
                phase2: false,
                trivial_trap: true,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::OldNullCheck => OptConfig {
                name: "Old Null Check",
                null_opt: NullOpt::Whaley,
                phase2: false,
                trivial_trap: true,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::Phase1Only => OptConfig {
                name: "New Null Check (Phase1 only)",
                null_opt: NullOpt::Phase1,
                phase2: false,
                trivial_trap: true,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::Full => OptConfig {
                name: "New Null Check (Phase1+Phase2)",
                null_opt: NullOpt::Phase1,
                phase2: true,
                trivial_trap: false,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::RefJit => OptConfig {
                name: "RefJit (HotSpot stand-in)",
                null_opt: NullOpt::Whaley,
                phase2: false,
                trivial_trap: true,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 1,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::AixSpeculation => OptConfig {
                name: "Speculation",
                null_opt: NullOpt::Phase1,
                phase2: false,
                trivial_trap: false, // §5.4: all null checks explicit on AIX
                compiler_trap: trap,
                speculation: true,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::AixNoSpeculation => OptConfig {
                name: "No Speculation",
                null_opt: NullOpt::Phase1,
                phase2: false,
                trivial_trap: false,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::AixNoNullOpt => OptConfig {
                name: "No Null Check Optimization",
                null_opt: NullOpt::None,
                phase2: false,
                trivial_trap: false,
                compiler_trap: trap,
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
            ConfigKind::AixIllegalImplicit => OptConfig {
                name: "Illegal Implicit (No Speculation)",
                null_opt: NullOpt::Phase1,
                phase2: true,
                trivial_trap: false,
                // Pretend the platform traps on reads and writes — on AIX
                // this is a lie and a NullPointerException may be missed
                // (§5.4; the VM records the violation).
                compiler_trap: TrapModel::windows_ia32(),
                speculation: false,
                inline: true,
                iterations: 3,
                versioning: true,
                sinking: true,
                validate: false,
                interproc: false,
                gvn: false,
                threads: 1,
            },
        }
    }
}

/// Aggregate pipeline statistics, including per-pass CPU-time breakdowns
/// for the compile-time experiments (Tables 3–5).
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Null check pass statistics.
    pub null_checks: NullCheckStats,
    /// Calls devirtualized / inlined.
    pub inline: inline::InlineStats,
    /// Intrinsic substitutions.
    pub intrinsics: intrinsics::IntrinsicStats,
    /// Bounds checks eliminated (redundancy + versioning).
    pub boundchecks_eliminated: usize,
    /// Loops versioned behind bounds guards.
    pub loops_versioned: usize,
    /// Fields promoted to registers across loops (store sinking).
    pub fields_promoted: usize,
    /// Scalar replacement totals.
    pub scalar: scalar::ScalarStats,
    /// Copy uses propagated.
    pub copies_propagated: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
    /// Per-pass *thread CPU time*, accumulated over all functions and
    /// iterations. Keys: "nullcheck", "inline", "intrinsics", "boundcheck",
    /// "scalar", "cleanup". Each sample is taken with
    /// [`njc_observe::PassTimer`] on the worker thread that ran the pass,
    /// so the breakdown is free of cross-thread pollution: a pass never
    /// gets billed for time another worker spent running. The sum over
    /// passes therefore *exceeds* [`PipelineStats::wall_time`] whenever
    /// workers overlap.
    pub timings: Vec<(&'static str, Duration)>,
    /// Elapsed real time for the whole [`optimize_module`] run, measured
    /// once at module level. Compare with [`PipelineStats::total_time`]
    /// (summed CPU time) to see parallel speedup.
    pub wall_time: Duration,
    /// Violations found by the static validator when [`OptConfig::validate`]
    /// is on, each prefixed with the `[stage]` that produced it. Empty
    /// means every validated stage was proven sound.
    pub validation_failures: Vec<String>,
    /// Interprocedural inference statistics (module level; all zero when
    /// [`OptConfig::interproc`] is off or nothing was inferred).
    pub interproc: njc_interproc::InferStats,
}

impl PipelineStats {
    fn add_time(&mut self, pass: &'static str, d: Duration) {
        if let Some(t) = self.timings.iter_mut().find(|(n, _)| *n == pass) {
            t.1 += d;
        } else {
            self.timings.push((pass, d));
        }
    }

    /// Total time spent in the null check optimization passes.
    pub fn nullcheck_time(&self) -> Duration {
        self.timings
            .iter()
            .filter(|(n, _)| *n == "nullcheck")
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total time spent in all passes.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|(_, d)| *d).sum()
    }

    /// Merges one function's pipeline statistics into the module-wide
    /// aggregate. [`optimize_module`] calls this in function-index order,
    /// so the aggregate is independent of worker scheduling.
    fn merge_function(&mut self, other: &PipelineStats) {
        self.null_checks.merge(&other.null_checks);
        self.boundchecks_eliminated += other.boundchecks_eliminated;
        self.loops_versioned += other.loops_versioned;
        self.fields_promoted += other.fields_promoted;
        self.scalar.hoisted_loads += other.scalar.hoisted_loads;
        self.scalar.speculative_loads += other.scalar.speculative_loads;
        self.scalar.hoisted_pure += other.scalar.hoisted_pure;
        self.scalar.hoisted_boundchecks += other.scalar.hoisted_boundchecks;
        self.scalar.local_loads_reused += other.scalar.local_loads_reused;
        self.copies_propagated += other.copies_propagated;
        self.dead_removed += other.dead_removed;
        for (pass, d) in &other.timings {
            self.add_time(pass, *d);
        }
        self.validation_failures
            .extend(other.validation_failures.iter().cloned());
    }
}

/// Records pair + invariant validator findings around one null check pass.
#[allow(clippy::too_many_arguments)]
fn validate_null_pass(
    stats: &mut PipelineStats,
    module: &Module,
    machine: TrapModel,
    assumptions: Option<&EntryAssumptions>,
    stage: &str,
    orig: &njc_ir::Function,
    opt: &njc_ir::Function,
    invariant: bool,
) {
    for v in njc_analysis::validate_pair_assumed(module, machine, assumptions, orig, opt) {
        stats.validation_failures.push(format!("[{stage}] {v}"));
    }
    if invariant {
        for v in njc_analysis::check_path_invariant(orig, opt) {
            stats.validation_failures.push(format!("[{stage}] {v}"));
        }
    }
}

/// Records coverage validator findings for one function after a pass.
fn validate_coverage(
    stats: &mut PipelineStats,
    module: &Module,
    machine: TrapModel,
    assumptions: Option<&EntryAssumptions>,
    stage: &str,
    func: &njc_ir::Function,
) {
    for v in njc_analysis::validate_function_assumed(module, machine, assumptions, func) {
        stats.validation_failures.push(format!("[{stage}] {v}"));
    }
}

/// Runs the configured pipeline over every function of `module` in place.
pub fn optimize_module(
    module: &mut Module,
    platform: &Platform,
    config: &OptConfig,
) -> PipelineStats {
    optimize_module_impl(module, platform, config, false).0
}

/// [`optimize_module`] with provenance: every null check carries a stable
/// id, every pass records what it did to which check, and the returned
/// [`ModuleTrace`] holds the per-function event streams, final-IR site
/// maps, and balanced conservation ledgers (function-index order, so the
/// trace — like the module — is identical across thread counts).
///
/// The traced and untraced pipelines produce byte-identical IR: id
/// allocation always runs (ids live in the IR), only event collection is
/// switched on here.
pub fn optimize_module_traced(
    module: &mut Module,
    platform: &Platform,
    config: &OptConfig,
) -> (PipelineStats, ModuleTrace) {
    let (stats, functions) = optimize_module_impl(module, platform, config, true);
    let trace = ModuleTrace {
        config: config.name.to_string(),
        platform: platform.name.to_string(),
        functions,
    };
    (stats, trace)
}

/// Runs the **module-level** passes only — intrinsic substitution,
/// devirtualization + inlining, and (under `validate`) the input check —
/// leaving every function ready for the per-function stages.
///
/// [`optimize_module`] is exactly `prepare_module` followed by
/// per-function optimization; the adaptive runtime calls this once per
/// tier and then recompiles individual hot functions through
/// [`optimize_function_overridden`] against the prepared module, which is
/// what makes a per-function recompile byte-identical to the function's
/// slice of a single-shot module compile.
pub fn prepare_module(
    module: &mut Module,
    platform: &Platform,
    config: &OptConfig,
) -> PipelineStats {
    let mut stats = PipelineStats::default();

    // Intrinsic substitution (before inlining: an intrinsified call site is
    // no longer a call, so it stops being an inline candidate or barrier).
    if platform.has_fp_intrinsics {
        let t = PassTimer::start();
        stats.intrinsics = intrinsics::run(module);
        stats.add_time("intrinsics", t.elapsed());
    }

    // Devirtualization + inlining (Figure 1 / §5.1 mtrt).
    if config.inline {
        let t = PassTimer::start();
        stats.inline = inline::run(module, InlineConfig::default());
        stats.add_time("inline", t.elapsed());
    }

    // Baseline validation of the module as handed to the iterated loop:
    // everything is still an explicit check here, so any violation is in
    // the *input* (or in intrinsics/inlining), not a null check pass.
    if config.validate {
        for v in njc_analysis::validate_module(module, platform.trap).violations {
            stats.validation_failures.push(format!("[input] {v}"));
        }
    }
    stats
}

fn optimize_module_impl(
    module: &mut Module,
    platform: &Platform,
    config: &OptConfig,
    traced: bool,
) -> (PipelineStats, Vec<FunctionTrace>) {
    let wall = Instant::now();
    let mut stats = prepare_module(module, platform, config);

    // Interprocedural non-nullness inference runs at module level: it must
    // see every real function body, so it goes after the module passes and
    // before the functions are checked out (the checked-out module holds
    // placeholder bodies). Inferring nothing is normalized to `None`, which
    // keeps the `interproc: true` pipeline byte-identical to `false` on
    // fact-free modules.
    let assumptions = config
        .interproc
        .then(|| {
            let t = PassTimer::start();
            let (asm, istats) = njc_interproc::infer_with_stats(module);
            stats.interproc = istats;
            stats.add_time("interproc", t.elapsed());
            asm
        })
        .filter(|a| !a.is_empty());
    let asm = assumptions.as_ref();

    // Per-function stages: Figure 2's iterated architecture-independent
    // loop, loop versioning, and the architecture-dependent phase. Every
    // pass below reads the module only for class and field layout, so the
    // functions are checked out all at once and optimized independently —
    // on worker threads when `config.threads > 1`. Result slots are merged
    // in function-index order, which keeps every counter (and the output
    // module) identical across thread counts.
    let n = module.num_functions();
    let mut funcs: Vec<Function> = (0..n)
        .map(|fi| take_function(module, FunctionId::new(fi)))
        .collect();
    let threads = effective_threads(config, n);
    let results: Vec<(PipelineStats, Option<FunctionTrace>)> = if threads <= 1 {
        funcs
            .iter_mut()
            .map(|f| optimize_function_traced(module, platform, config, asm, f, traced))
            .collect()
    } else {
        optimize_functions_parallel(module, platform, config, asm, &mut funcs, threads, traced)
    };
    let mut traces = Vec::new();
    for (r, t) in results {
        stats.merge_function(&r);
        traces.extend(t);
    }
    for (fi, func) in funcs.into_iter().enumerate() {
        put_function(module, FunctionId::new(fi), func);
    }

    // In debug builds, verify the whole module after optimization: any
    // pass that produced ill-formed IR fails loudly here rather than
    // confusingly in the VM.
    #[cfg(debug_assertions)]
    if let Err(errors) = njc_ir::verify_module(module) {
        panic!(
            "pipeline `{}` produced unverifiable IR: {}",
            config.name,
            errors
                .iter()
                .take(3)
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    stats.wall_time = wall.elapsed();
    (stats, traces)
}

/// Runs [`optimize_module`] with the static validator forced on and turns
/// any violation into an `Err`, one line per finding, each tagged with the
/// stage that introduced it — the translation-validation entry point.
pub fn optimize_module_validated(
    module: &mut Module,
    platform: &Platform,
    config: &OptConfig,
) -> Result<PipelineStats, String> {
    let cfg = OptConfig {
        validate: true,
        ..*config
    };
    let stats = optimize_module(module, platform, &cfg);
    if stats.validation_failures.is_empty() {
        Ok(stats)
    } else {
        Err(stats.validation_failures.join("\n"))
    }
}

/// Resolved worker count for the per-function stages. Validation forces
/// sequential execution so violation messages arrive in the order the
/// sequential pipeline reports them; otherwise the configured count is
/// clamped to the number of functions (spawning idle workers is waste).
fn effective_threads(config: &OptConfig, num_functions: usize) -> usize {
    if config.validate {
        1
    } else {
        config.threads.clamp(1, num_functions.max(1))
    }
}

/// [`optimize_function`] plus provenance assembly: runs the function with
/// a fresh [`Recorder`] (enabled iff `traced`) and, when tracing, folds the
/// recorded events, the final-IR site map, and the per-function statistics
/// into a [`FunctionTrace`] whose [`Ledger`] obeys the conservation law.
fn optimize_function_traced(
    module: &Module,
    platform: &Platform,
    config: &OptConfig,
    assumptions: Option<&EntryAssumptions>,
    func: &mut Function,
    traced: bool,
) -> (PipelineStats, Option<FunctionTrace>) {
    let mut rec = Recorder::new(traced);
    let stats = optimize_function(module, platform, config, assumptions, func, None, &mut rec);
    let trace = traced.then(|| build_trace(func, &stats, rec));
    (stats, trace)
}

/// The public per-function recompile entry point: runs every per-function
/// stage on `func` against an already-[`prepare_module`]d `module`, with an
/// optional profile-driven [`ExplicitOverride`] set threaded into the
/// architecture-dependent phase (phase 2 materializes explicit checks at
/// the overridden slot keys instead of converting them to traps).
///
/// With `overrides = None` this is byte-identical to the function's slice
/// of [`optimize_module`] / [`optimize_module_traced`] on the same prepared
/// module — same IR, same [`CheckId`](njc_ir::CheckId) assignment (ids are
/// assigned deterministically from the pristine body, so a recompile
/// reproduces them), same ledger. The adaptive runtime's code cache relies
/// on that determinism for artifact byte-identity between a cache hit and a
/// recompile.
pub fn optimize_function_overridden(
    module: &Module,
    platform: &Platform,
    config: &OptConfig,
    func: &mut Function,
    overrides: Option<&ExplicitOverride>,
    traced: bool,
) -> (PipelineStats, Option<FunctionTrace>) {
    // Interprocedural facts are a whole-module fixpoint; re-inferring them
    // over the prepared module (whose bodies are all real on this path)
    // reproduces exactly the facts the single-shot module compile used, so
    // the recompile stays byte-identical.
    let owned = config
        .interproc
        .then(|| njc_interproc::infer(module))
        .filter(|a| !a.is_empty());
    let mut rec = Recorder::new(traced);
    let stats = optimize_function(
        module,
        platform,
        config,
        owned.as_ref(),
        func,
        overrides,
        &mut rec,
    );
    let trace = traced.then(|| build_trace(func, &stats, rec));
    (stats, trace)
}

/// Folds one optimized function's recorder into its [`FunctionTrace`].
///
/// The ledger's insertion side comes from the pass statistics (origins,
/// phase 1 insertions, phase 2 respawns, positive pass deltas); the fate
/// side from conversions, the final explicit count, eliminations, merges,
/// postponements, negative pass deltas, and substitutions. `Ledger::check`
/// holding for every function is the static half of the reconciliation.
fn build_trace(func: &Function, stats: &PipelineStats, rec: Recorder) -> FunctionTrace {
    let nc = &stats.null_checks;
    let mut ledger = Ledger {
        origins: rec
            .events
            .iter()
            .filter(|e| matches!(e, CheckEvent::Origin { .. }))
            .count() as u64,
        phase1_inserted: nc.phase1.inserted as u64,
        respawned: nc.phase2.respawned as u64,
        converted_implicit: (nc.phase2.converted_implicit + nc.trivial.converted) as u64,
        explicit_final: phase2::count_explicit(func) as u64,
        phase1_eliminated: nc.phase1.eliminated as u64,
        whaley_eliminated: nc.whaley.eliminated as u64,
        merged: nc.phase2.merged as u64,
        postponed: nc.phase2.postponed as u64,
        substituted: nc.phase2.substituted as u64,
        ..Ledger::default()
    };
    for ev in &rec.events {
        if let CheckEvent::PassDelta { delta, .. } = ev {
            if *delta > 0 {
                ledger.other_inserted += *delta as u64;
            } else {
                ledger.other_removed += delta.unsigned_abs();
            }
        }
    }
    FunctionTrace {
        function: func.name().to_string(),
        events: rec.events,
        sites: rec.sites,
        ledger,
    }
}

/// Records a [`CheckEvent::PassDelta`] for a pass that is not a null check
/// pass but changed the number of explicit checks anyway (loop versioning
/// duplicating a guarded body, dead code elimination dropping an
/// unreachable one). `before` is `None` when tracing is off.
fn record_pass_delta(
    rec: &mut Recorder,
    pass: &'static str,
    before: Option<usize>,
    func: &Function,
) {
    if let Some(before) = before {
        let delta = phase2::count_explicit(func) as i64 - before as i64;
        if delta != 0 {
            rec.record(CheckEvent::PassDelta { pass, delta });
        }
    }
}

/// Explicit check count ahead of a sandwiched pass, taken only when the
/// recorder is enabled (the untraced pipeline skips the scans entirely).
fn checks_before(rec: &Recorder, func: &Function) -> Option<usize> {
    rec.is_enabled().then(|| phase2::count_explicit(func))
}

/// Runs every per-function stage on one checked-out function: the iterated
/// architecture-independent loop, loop versioning, and the architecture-
/// dependent phase. `module` is read only for class and field layout (all
/// its function bodies may be placeholders), which is what makes the
/// per-function parallelism of [`optimize_module`] sound. One [`CfgCache`]
/// serves every analysis of the function; passes that rewrite instruction
/// lists without touching the CFG leave it warm.
///
/// All per-pass timings are taken with [`PassTimer`] — thread CPU time —
/// so a pass is only ever billed for cycles this worker actually spent in
/// it, regardless of how many sibling workers run concurrently.
fn optimize_function(
    module: &Module,
    platform: &Platform,
    config: &OptConfig,
    assumptions: Option<&EntryAssumptions>,
    func: &mut Function,
    overrides: Option<&ExplicitOverride>,
    rec: &mut Recorder,
) -> PipelineStats {
    let mut stats = PipelineStats::default();
    let ctx = match overrides {
        Some(ov) => AnalysisCtx::with_overrides(module, config.compiler_trap, ov),
        None => AnalysisCtx::new(module, config.compiler_trap),
    }
    .with_assumptions(assumptions);
    let mut cfg = CfgCache::new();

    // Every check the function arrives with gets its stable identity (and,
    // when tracing, an origin event) before any pass touches it.
    rec.assign_origins(func);

    // Figure 2's iterated architecture-independent loop.
    for _ in 0..config.iterations.max(1) {
        // Null check optimization.
        let t = PassTimer::start();
        match config.null_opt {
            NullOpt::None => {}
            NullOpt::Whaley => {
                let orig = config.validate.then(|| func.clone());
                let s = if config.gvn {
                    whaley::run_recorded_gvn(func, &mut cfg, rec)
                } else {
                    whaley::run_recorded(func, &mut cfg, rec)
                };
                stats.null_checks.whaley.eliminated += s.eliminated;
                stats.null_checks.whaley.gvn_eliminated += s.gvn_eliminated;
                stats.null_checks.whaley.iterations += s.iterations;
                stats.null_checks.whaley.pops += s.pops;
                if let Some(orig) = &orig {
                    validate_null_pass(
                        &mut stats,
                        module,
                        platform.trap,
                        assumptions,
                        "whaley",
                        orig,
                        func,
                        true,
                    );
                }
            }
            NullOpt::Phase1 => {
                let orig = config.validate.then(|| func.clone());
                let s = if config.gvn {
                    phase1::run_recorded_gvn(&ctx, func, &mut cfg, rec)
                } else {
                    phase1::run_recorded(&ctx, func, &mut cfg, rec)
                };
                stats.null_checks.phase1.eliminated += s.eliminated;
                stats.null_checks.phase1.gvn_eliminated += s.gvn_eliminated;
                stats.null_checks.phase1.inserted += s.inserted;
                stats.null_checks.phase1.motion_iterations += s.motion_iterations;
                stats.null_checks.phase1.nonnull_iterations += s.nonnull_iterations;
                stats.null_checks.phase1.motion_pops += s.motion_pops;
                stats.null_checks.phase1.nonnull_pops += s.nonnull_pops;
                if let Some(orig) = &orig {
                    validate_null_pass(
                        &mut stats,
                        module,
                        platform.trap,
                        assumptions,
                        "phase1",
                        orig,
                        func,
                        true,
                    );
                }
            }
        }
        stats.add_time("nullcheck", t.elapsed());

        // Array bounds check optimization.
        let t = PassTimer::start();
        let before = checks_before(rec, func);
        stats.boundchecks_eliminated += boundcheck::run(func).eliminated;
        record_pass_delta(rec, "boundcheck", before, func);
        if config.validate {
            validate_coverage(
                &mut stats,
                module,
                platform.trap,
                assumptions,
                "boundcheck",
                func,
            );
        }
        stats.add_time("boundcheck", t.elapsed());

        // Scalar replacement (with or without speculation).
        let t = PassTimer::start();
        let before = checks_before(rec, func);
        let allow_spec = config.speculation && config.compiler_trap.reads_are_speculatable();
        let s = scalar::run(
            &ctx,
            func,
            ScalarConfig {
                speculation: allow_spec,
            },
        );
        stats.scalar.hoisted_loads += s.hoisted_loads;
        stats.scalar.speculative_loads += s.speculative_loads;
        stats.scalar.hoisted_pure += s.hoisted_pure;
        stats.scalar.hoisted_boundchecks += s.hoisted_boundchecks;
        stats.scalar.local_loads_reused += s.local_loads_reused;
        // Store sinking (Figure 4 (5)) — only fires once the loop is
        // check-free, i.e. after phase 1 did its part.
        if config.sinking {
            stats.fields_promoted += sink::run(&ctx, func).promoted;
        }
        record_pass_delta(rec, "scalar", before, func);
        if config.validate {
            validate_coverage(
                &mut stats,
                module,
                platform.trap,
                assumptions,
                "scalar",
                func,
            );
        }
        stats.add_time("scalar", t.elapsed());

        // Cleanup.
        let t = PassTimer::start();
        let before = checks_before(rec, func);
        stats.copies_propagated += copyprop::run(func).replaced_uses;
        stats.dead_removed += dce::run(func).removed;
        record_pass_delta(rec, "cleanup", before, func);
        if config.validate {
            validate_coverage(
                &mut stats,
                module,
                platform.trap,
                assumptions,
                "cleanup",
                func,
            );
        }
        stats.add_time("cleanup", t.elapsed());
    }

    // Array bounds check optimization, part 2: loop versioning. Runs once
    // after the iterated loop (versioning duplicates loop bodies, which
    // would defeat later scalar-replacement rounds) — and it is effective
    // only where scalar replacement could hoist the array lengths, i.e.
    // where phase 1 hoisted the null checks first.
    let t = PassTimer::start();
    let before = checks_before(rec, func);
    if config.versioning {
        let s = versioning::run(func);
        stats.loops_versioned += s.loops_versioned;
        stats.boundchecks_eliminated += s.checks_removed;
    }
    // Clean up after the duplication, then give store sinking one more
    // chance: versioned fast loops just lost their bounds checks and may
    // now be promotable.
    stats.copies_propagated += copyprop::run(func).replaced_uses;
    stats.dead_removed += dce::run(func).removed;
    if config.sinking {
        stats.fields_promoted += sink::run(&ctx, func).promoted;
    }
    record_pass_delta(rec, "versioning", before, func);
    if config.validate {
        validate_coverage(
            &mut stats,
            module,
            platform.trap,
            assumptions,
            "versioning",
            func,
        );
    }
    stats.add_time("boundcheck", t.elapsed());

    // Architecture dependent phase (or the trivial conversion).
    let t = PassTimer::start();
    let orig = config.validate.then(|| func.clone());
    if config.phase2 {
        let s = phase2::run_recorded(&ctx, func, &mut cfg, rec);
        stats.null_checks.phase2.converted_implicit += s.converted_implicit;
        stats.null_checks.phase2.explicit_inserted += s.explicit_inserted;
        stats.null_checks.phase2.substituted += s.substituted;
        stats.null_checks.phase2.absorbed += s.absorbed;
        stats.null_checks.phase2.respawned += s.respawned;
        stats.null_checks.phase2.merged += s.merged;
        stats.null_checks.phase2.postponed += s.postponed;
        stats.null_checks.phase2.motion_iterations += s.motion_iterations;
        stats.null_checks.phase2.subst_iterations += s.subst_iterations;
        stats.null_checks.phase2.motion_pops += s.motion_pops;
        stats.null_checks.phase2.subst_pops += s.subst_pops;
    } else if config.trivial_trap {
        stats.null_checks.trivial.converted += trivial::run_recorded(&ctx, func, rec).converted;
    }
    if let Some(orig) = &orig {
        // This is the stage that bets on the hardware: validate the
        // conversion against the trap model of the *machine*, not the one
        // the compiler assumed — the gap between the two is exactly the
        // §5.4 "Illegal Implicit" unsoundness.
        let stage = if config.phase2 {
            "phase2"
        } else if config.trivial_trap {
            "trivial"
        } else {
            "final"
        };
        validate_null_pass(
            &mut stats,
            module,
            platform.trap,
            assumptions,
            stage,
            orig,
            func,
            false,
        );
        validate_coverage(&mut stats, module, platform.trap, assumptions, stage, func);
    }
    stats.add_time("nullcheck", t.elapsed());

    // Resolve every marked exception site of the final IR back to the
    // conversion event that justified it (no-op when tracing is off).
    collect_site_records(&ctx, func, rec);

    stats
}

/// Fans [`optimize_function`] out over `threads` scoped workers. Workers
/// claim function indices off a shared atomic counter; each job's mutex is
/// only ever locked by the single claiming worker, it exists to hand the
/// `&mut Function` across the thread boundary safely. The result vector is
/// indexed by function, so the caller's merge order — and therefore every
/// counter in the aggregate — is independent of scheduling.
fn optimize_functions_parallel(
    module: &Module,
    platform: &Platform,
    config: &OptConfig,
    assumptions: Option<&EntryAssumptions>,
    funcs: &mut [Function],
    threads: usize,
    traced: bool,
) -> Vec<(PipelineStats, Option<FunctionTrace>)> {
    let next = AtomicUsize::new(0);
    type Job<'f> = Mutex<(&'f mut Function, PipelineStats, Option<FunctionTrace>)>;
    let jobs: Vec<Job<'_>> = funcs
        .iter_mut()
        .map(|f| Mutex::new((f, PipelineStats::default(), None)))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let mut guard = job.lock().unwrap();
                let (func, slot, trace) = &mut *guard;
                (*slot, *trace) =
                    optimize_function_traced(module, platform, config, assumptions, func, traced);
            });
        }
    });
    jobs.into_iter()
        .map(|m| {
            let (_, stats, trace) = m.into_inner().unwrap();
            (stats, trace)
        })
        .collect()
}

/// Checks a function out of the module so passes can hold `&Module` (for
/// field layout) while mutating the function.
fn take_function(module: &mut Module, id: FunctionId) -> njc_ir::Function {
    std::mem::replace(
        module.function_mut(id),
        njc_ir::Function::from_parts(
            String::new(),
            vec![],
            None,
            false,
            vec![],
            vec![njc_ir::BasicBlock::new(njc_ir::BlockId(0))],
            njc_ir::BlockId(0),
            vec![],
        ),
    )
}

fn put_function(module: &mut Module, id: FunctionId, func: njc_ir::Function) {
    *module.function_mut(id) = func;
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_core::phase1::count_checks;
    use njc_core::phase2::{count_exception_sites, count_explicit};
    use njc_ir::{parse_function, verify_module, Type};

    fn loop_module() -> Module {
        let mut m = Module::new("t");
        m.add_class("C", &[("f", Type::Int)]);
        let f = parse_function(
            "func sum(v0: ref, v1: int) -> int {\n  locals v2: int v3: int\nbb0:\n  v2 = const 0\n  goto bb1\nbb1:\n  nullcheck v0\n  v3 = getfield v0, field0\n  v2 = add.int v2, v3\n  if lt v2, v1 then bb1 else bb2\nbb2:\n  return v2\n}",
        )
        .unwrap();
        m.add_function(f);
        m
    }

    #[test]
    fn per_function_recompile_matches_module_compile() {
        // prepare_module + optimize_function_overridden(None) must be
        // byte-identical to the single-shot module pipeline: same IR, same
        // events, same site records — the determinism the adaptive
        // runtime's code cache depends on.
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::Full.to_config(&p);
        let mut whole = loop_module();
        let (_, trace) = optimize_module_traced(&mut whole, &p, &cfg);
        let mut split = loop_module();
        prepare_module(&mut split, &p, &cfg);
        let mut f = take_function(&mut split, FunctionId::new(0));
        let (_, ftrace) = optimize_function_overridden(&split, &p, &cfg, &mut f, None, true);
        put_function(&mut split, FunctionId::new(0), f);
        assert_eq!(whole, split, "same optimized module");
        let ftrace = ftrace.unwrap();
        assert_eq!(trace.functions[0].events, ftrace.events);
        assert_eq!(trace.functions[0].sites, ftrace.sites);
        ftrace.ledger.check().unwrap();
    }

    #[test]
    fn overridden_site_stays_explicit_through_full_pipeline() {
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::Full.to_config(&p);
        let mut m = loop_module();
        let off = m.field_offset(njc_ir::FieldId(0));
        prepare_module(&mut m, &p, &cfg);
        let mut ov = ExplicitOverride::new();
        ov.insert(off, njc_ir::AccessKind::Read);
        let mut f = take_function(&mut m, FunctionId::new(0));
        let (_, trace) = optimize_function_overridden(&m, &p, &cfg, &mut f, Some(&ov), true);
        assert!(count_explicit(&f) >= 1, "override keeps a real check: {f}");
        assert_eq!(
            count_exception_sites(&f),
            0,
            "the only trap-qualifying access is overridden: {f}"
        );
        trace.unwrap().ledger.check().unwrap();
    }

    #[test]
    fn full_config_leaves_no_explicit_checks_in_loop() {
        let mut m = loop_module();
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::Full.to_config(&p);
        let stats = optimize_module(&mut m, &p, &cfg);
        verify_module(&m).unwrap();
        let f = m.function(m.function_by_name("sum").unwrap());
        assert_eq!(count_explicit(f), 0, "{f}");
        assert!(count_exception_sites(f) >= 1);
        assert!(stats.null_checks.phase1.eliminated >= 1);
        assert!(stats.scalar.hoisted_loads >= 1, "{stats:?}");
    }

    #[test]
    fn baseline_keeps_explicit_check_in_loop() {
        let mut m = loop_module();
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::NoNullOptNoTrap.to_config(&p);
        optimize_module(&mut m, &p, &cfg);
        verify_module(&m).unwrap();
        let f = m.function(m.function_by_name("sum").unwrap());
        assert_eq!(count_checks(f), 1, "{f}");
        assert_eq!(count_exception_sites(f), 0, "no trap reliance");
        // The load stays inside the loop: no non-nullness at the preheader.
        let loop_block = f.block(njc_ir::BlockId(1));
        assert!(loop_block
            .insts
            .iter()
            .any(|i| matches!(i, njc_ir::Inst::GetField { .. })));
    }

    #[test]
    fn old_null_check_converts_trivially_but_cannot_hoist() {
        let mut m = loop_module();
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::OldNullCheck.to_config(&p);
        let stats = optimize_module(&mut m, &p, &cfg);
        let f = m.function(m.function_by_name("sum").unwrap());
        // The in-loop check became implicit (free) but the load is still
        // in the loop — §2.2's first drawback.
        assert_eq!(count_explicit(f), 0, "{f}");
        let loop_block = f.block(njc_ir::BlockId(1));
        assert!(loop_block
            .insts
            .iter()
            .any(|i| matches!(i, njc_ir::Inst::GetField { .. })));
        assert_eq!(stats.null_checks.trivial.converted, 1);
    }

    #[test]
    fn aix_speculation_config_hoists_silent_read() {
        let mut m = loop_module();
        let p = Platform::aix_ppc();
        let cfg = ConfigKind::AixSpeculation.to_config(&p);
        let stats = optimize_module(&mut m, &p, &cfg);
        // phase1 hoists the check AND the load hoists; on AIX the check
        // stays explicit.
        let f = m.function(m.function_by_name("sum").unwrap());
        assert!(stats.scalar.hoisted_loads >= 1, "{stats:?}\n{f}");
        assert!(count_explicit(f) >= 1);
        assert_eq!(count_exception_sites(f), 0, "no implicit checks on AIX");
    }

    #[test]
    fn illegal_implicit_marks_read_sites_on_aix() {
        let mut m = loop_module();
        let p = Platform::aix_ppc();
        let cfg = ConfigKind::AixIllegalImplicit.to_config(&p);
        optimize_module(&mut m, &p, &cfg);
        let f = m.function(m.function_by_name("sum").unwrap());
        // The Intel phase 2 marked the read as a site even though AIX will
        // not trap it — the (deliberate) §5.4 spec violation.
        assert!(count_exception_sites(f) >= 1, "{f}");
        assert_eq!(count_explicit(f), 0, "{f}");
    }

    #[test]
    fn ablation_toggles_disable_their_passes() {
        let p = Platform::windows_ia32();
        let full = ConfigKind::Full.to_config(&p);
        assert!(full.versioning && full.sinking);

        // A loop whose bounds check is versionable under Full...
        let mk = || {
            let mut m = Module::new("t");
            m.add_class("C", &[("f", njc_ir::Type::Int)]);
            let f = njc_ir::parse_function(
                "func work(v0: ref, v1: int) -> int {\n  locals v2: int v3: int v4: int v5: int v6: int\nbb0:\n  v2 = const 0\n  v6 = const 1\n  v3 = move v2\n  if lt v2, v1 then bb1 else bb3\nbb1:\n  goto bb2\nbb2:\n  nullcheck v0\n  v4 = arraylength v0\n  boundcheck v3, v4\n  v5 = aload.int v0[v3]\n  v2 = add.int v2, v5\n  v3 = add.int v3, v6\n  if lt v3, v1 then bb2 else bb3\nbb3:\n  return v2\n}",
            )
            .unwrap();
            m.add_function(f);
            m
        };
        let mut with = mk();
        let s_on = optimize_module(&mut with, &p, &full);
        let mut without = mk();
        let s_off = optimize_module(
            &mut without,
            &p,
            &OptConfig {
                versioning: false,
                ..full
            },
        );
        assert!(s_on.loops_versioned > 0);
        assert_eq!(s_off.loops_versioned, 0);
    }

    #[test]
    fn parallel_threads_match_sequential() {
        // A multi-function module: several renamed copies of the loop
        // function, optimized independently.
        let mk = || {
            let mut m = loop_module();
            let proto = m.function(m.function_by_name("sum").unwrap()).clone();
            for i in 0..7 {
                let mut f = proto.clone();
                f.set_name(format!("sum_{i}"));
                m.add_function(f);
            }
            m
        };
        let p = Platform::windows_ia32();
        let base = ConfigKind::Full.to_config(&p);
        let mut seq = mk();
        let s_seq = optimize_module(&mut seq, &p, &base);
        for threads in [2, 4, 64] {
            let mut par = mk();
            let s_par = optimize_module(&mut par, &p, &OptConfig { threads, ..base });
            assert_eq!(seq, par, "threads={threads} changed the module");
            assert_eq!(
                s_seq.null_checks, s_par.null_checks,
                "threads={threads} changed the counters"
            );
            assert_eq!(s_seq.boundchecks_eliminated, s_par.boundchecks_eliminated);
            assert_eq!(s_seq.scalar, s_par.scalar);
            assert_eq!(s_seq.dead_removed, s_par.dead_removed);
        }
    }

    #[test]
    fn validated_pipeline_accepts_sound_configs() {
        for (kinds, p) in [
            (&ConfigKind::table12_rows()[..], Platform::windows_ia32()),
            (&ConfigKind::table67_rows()[..3], Platform::aix_ppc()),
        ] {
            for &kind in kinds {
                let mut m = loop_module();
                let cfg = kind.to_config(&p);
                let stats = optimize_module_validated(&mut m, &p, &cfg)
                    .unwrap_or_else(|e| panic!("{:?} on {}: {e}", kind, p.name));
                assert!(stats.validation_failures.is_empty());
            }
        }
    }

    #[test]
    fn validated_pipeline_flags_illegal_implicit_on_aix() {
        let mut m = loop_module();
        let p = Platform::aix_ppc();
        let cfg = ConfigKind::AixIllegalImplicit.to_config(&p);
        let err = optimize_module_validated(&mut m, &p, &cfg)
            .expect_err("the §5.4 spec violation must be caught statically");
        assert!(err.contains("[phase2]"), "{err}");
        assert!(err.contains("missed-exception"), "{err}");
    }

    #[test]
    fn traced_pipeline_produces_identical_ir_and_balanced_ledgers() {
        let p = Platform::windows_ia32();
        for kind in [
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::RefJit,
        ] {
            let cfg = kind.to_config(&p);
            let mut plain = loop_module();
            optimize_module(&mut plain, &p, &cfg);
            let mut traced = loop_module();
            let (stats, trace) = optimize_module_traced(&mut traced, &p, &cfg);
            assert_eq!(plain, traced, "{kind:?}: tracing changed the module");
            trace
                .check_conservation()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert_eq!(trace.functions.len(), 1);
            let ft = &trace.functions[0];
            assert_eq!(ft.function, "sum");
            assert!(
                ft.ledger.origins >= 1,
                "{kind:?}: the source check must be an origin"
            );
            if kind == ConfigKind::Full {
                assert!(stats.null_checks.phase2.absorbed >= 1);
                // On this module the loop's one check converts at the
                // loop's one trap-qualifying access: at least one site must
                // resolve to a phase 2 conversion (over-marked extras from
                // `mark_all_trap_sites` are allowed, unresolved conversions
                // are not).
                assert!(ft
                    .sites
                    .iter()
                    .any(|s| matches!(s.provenance, njc_observe::SiteProvenance::Converted(_))));
            }
        }
    }
    #[test]
    fn trace_event_stream_is_identical_across_thread_counts() {
        let mk = || {
            let mut m = loop_module();
            let proto = m.function(m.function_by_name("sum").unwrap()).clone();
            for i in 0..7 {
                let mut f = proto.clone();
                f.set_name(format!("sum_{i}"));
                m.add_function(f);
            }
            m
        };
        let p = Platform::windows_ia32();
        let base = ConfigKind::Full.to_config(&p);
        let mut seq = mk();
        let (_, t_seq) = optimize_module_traced(&mut seq, &p, &base);
        let json_seq = t_seq.to_events_json();
        for threads in [2, 4, 64] {
            let mut par = mk();
            let (_, t_par) = optimize_module_traced(&mut par, &p, &OptConfig { threads, ..base });
            assert_eq!(
                json_seq,
                t_par.to_events_json(),
                "threads={threads} changed the event stream"
            );
        }
    }

    #[test]
    fn wall_time_is_set_and_cpu_timings_accumulate() {
        let mut m = loop_module();
        let p = Platform::windows_ia32();
        let cfg = ConfigKind::Full.to_config(&p);
        let stats = optimize_module(&mut m, &p, &cfg);
        assert!(stats.wall_time > Duration::ZERO);
        assert!(stats.total_time() > Duration::ZERO);
    }

    #[test]
    fn all_presets_resolve_and_run() {
        for kind in [
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::RefJit,
        ] {
            let mut m = loop_module();
            let p = Platform::windows_ia32();
            let cfg = kind.to_config(&p);
            let stats = optimize_module(&mut m, &p, &cfg);
            verify_module(&m).unwrap();
            assert!(stats.total_time() >= stats.nullcheck_time());
        }
        for kind in ConfigKind::table67_rows() {
            let mut m = loop_module();
            let p = Platform::aix_ppc();
            let cfg = kind.to_config(&p);
            optimize_module(&mut m, &p, &cfg);
            verify_module(&m).unwrap();
        }
    }
}
