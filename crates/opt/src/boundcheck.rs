//! Redundant array bounds check elimination (the paper's "array bounds
//! check optimization", Figure 2 (2)).
//!
//! A `boundcheck i, len` is redundant when the same `(index, length)` pair
//! has already been checked on every path with neither variable redefined
//! since. Facts are the distinct pairs appearing in the function; the
//! analysis is a forward must-analysis. (Loop-invariant bounds checks are
//! hoisted by [`crate::scalar`]; this pass removes the duplicates that the
//! builder's full splitting and inlining produce.)

use std::collections::HashMap;

use njc_dataflow::{solve, BitSet, Direction, Meet, Problem};
use njc_ir::{BlockId, Function, Inst, VarId};

/// Statistics from one bounds check elimination application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BoundCheckStats {
    /// Redundant bounds checks removed.
    pub eliminated: usize,
}

struct PairTable {
    ids: HashMap<(VarId, VarId), usize>,
}

impl PairTable {
    fn build(func: &Function) -> Self {
        let mut ids = HashMap::new();
        for b in func.blocks() {
            for inst in &b.insts {
                if let Inst::BoundCheck { index, length } = inst {
                    let next = ids.len();
                    ids.entry((*index, *length)).or_insert(next);
                }
            }
        }
        PairTable { ids }
    }

    fn id(&self, index: VarId, length: VarId) -> Option<usize> {
        self.ids.get(&(index, length)).copied()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Fact ids whose pair mentions `v`.
    fn involving(&self, v: VarId) -> impl Iterator<Item = usize> + '_ {
        self.ids
            .iter()
            .filter(move |((i, l), _)| *i == v || *l == v)
            .map(|(_, &id)| id)
    }
}

struct Checked<'a> {
    func: &'a Function,
    pairs: &'a PairTable,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl<'a> Checked<'a> {
    fn new(func: &'a Function, pairs: &'a PairTable) -> Self {
        let nf = pairs.len();
        let mut gen = Vec::with_capacity(func.num_blocks());
        let mut kill = Vec::with_capacity(func.num_blocks());
        for b in func.blocks() {
            let mut g = BitSet::new(nf);
            let mut k = BitSet::new(nf);
            for inst in &b.insts {
                if let Inst::BoundCheck { index, length } = inst {
                    if let Some(id) = pairs.id(*index, *length) {
                        g.insert(id);
                        k.remove(id);
                    }
                }
                if let Some(d) = inst.def() {
                    for id in pairs.involving(d) {
                        g.remove(id);
                        k.insert(id);
                    }
                }
            }
            gen.push(g);
            kill.push(k);
        }
        Checked {
            func,
            pairs,
            gen,
            kill,
        }
    }
}

impl Problem for Checked<'_> {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Intersect
    }
    fn num_facts(&self) -> usize {
        self.pairs.len()
    }
    fn transfer(&self, block: BlockId, input: &BitSet, output: &mut BitSet) {
        output.copy_from(input);
        output.subtract(&self.kill[block.index()]);
        output.union_with(&self.gen[block.index()]);
    }
    fn edge_transfer(&self, from: BlockId, to: BlockId, set: &mut BitSet) {
        // On exceptional edges be maximally conservative: the block may
        // have thrown before any of its checks executed.
        if njc_core::nonnull::is_exceptional_edge(self.func, from, to) {
            set.clear();
        }
    }
}

/// Runs redundant bounds check elimination on `func` in place.
pub fn run(func: &mut Function) -> BoundCheckStats {
    let pairs = PairTable::build(func);
    let mut stats = BoundCheckStats::default();
    if pairs.len() == 0 {
        return stats;
    }
    let problem = Checked::new(func, &pairs);
    let sol = solve(func, &problem);
    for bi in 0..func.num_blocks() {
        let mut set = sol.ins[bi].clone();
        let block = func.block_mut(BlockId::new(bi));
        let mut kept = Vec::with_capacity(block.insts.len());
        for inst in block.insts.drain(..) {
            match &inst {
                Inst::BoundCheck { index, length } => {
                    let id = pairs.id(*index, *length).expect("pair enumerated");
                    if set.contains(id) {
                        stats.eliminated += 1;
                        continue;
                    }
                    set.insert(id);
                    kept.push(inst);
                }
                _ => {
                    if let Some(d) = inst.def() {
                        for id in pairs.involving(d) {
                            set.remove(id);
                        }
                    }
                    kept.push(inst);
                }
            }
        }
        block.insts = kept;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::parse_function;

    #[test]
    fn duplicate_check_in_block_removed() {
        let mut f = parse_function(
            "func f(v0: int, v1: int) -> int {\nbb0:\n  boundcheck v0, v1\n  boundcheck v0, v1\n  return v0\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.eliminated, 1);
    }

    #[test]
    fn redefinition_of_index_blocks_elimination() {
        let mut f = parse_function(
            "func f(v0: int, v1: int) -> int {\nbb0:\n  boundcheck v0, v1\n  v0 = add.int v0, v0\n  boundcheck v0, v1\n  return v0\n}",
        )
        .unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.eliminated, 0);
    }

    #[test]
    fn check_on_one_path_only_is_kept_at_merge() {
        let src = "\
func f(v0: int, v1: int) -> int {
bb0:
  if lt v0, v1 then bb1 else bb2
bb1:
  boundcheck v0, v1
  goto bb3
bb2:
  goto bb3
bb3:
  boundcheck v0, v1
  return v0
}";
        let mut f = parse_function(src).unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.eliminated, 0, "{f}");
    }

    #[test]
    fn dominating_check_covers_merge() {
        let src = "\
func f(v0: int, v1: int) -> int {
bb0:
  boundcheck v0, v1
  if lt v0, v1 then bb1 else bb2
bb1:
  goto bb3
bb2:
  goto bb3
bb3:
  boundcheck v0, v1
  return v0
}";
        let mut f = parse_function(src).unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.eliminated, 1, "{f}");
    }

    #[test]
    fn no_checks_is_a_noop() {
        let mut f = parse_function("func f(v0: int) -> int {\nbb0:\n  return v0\n}").unwrap();
        let stats = run(&mut f);
        assert_eq!(stats.eliminated, 0);
    }
}
