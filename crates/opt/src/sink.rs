//! Store sinking / register promotion — the second half of the paper's
//! scalar replacement (Figure 4 (5): `a.count' = T` after the loop).
//!
//! A field `o.f` that is both loaded and stored inside a loop is promoted
//! to a temporary: the preheader loads it once, in-loop accesses become
//! register moves, and the value is written back on every loop exit edge.
//!
//! Legality under precise exceptions is strict — and this is exactly where
//! the paper's phasing pays off: the heap must not be observably stale at
//! any point where control can leave the loop abnormally, so the loop may
//! contain **no potentially-throwing instruction at all** (no null checks,
//! no bounds checks, no calls). Only after phase 1 hoisted the null checks
//! and versioning removed the bounds checks does a loop qualify — *"The
//! result of (5) also cannot be achieved without the scalar replacement in
//! (4)"* and vice versa (paper §3.2).

use njc_core::ctx::AnalysisCtx;
use njc_core::nonnull::{compute_sets, NonNullProblem};
use njc_dataflow::solve;
use njc_ir::{BlockId, FieldId, Function, Inst, Terminator, VarId};

use crate::loops::{find_loops, Dominators, NaturalLoop};

/// Statistics from one store-sinking application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SinkStats {
    /// Fields promoted to registers across a loop.
    pub promoted: usize,
    /// In-loop loads/stores rewritten to register moves.
    pub accesses_rewritten: usize,
}

/// Whether `inst` can throw or otherwise makes the heap observable
/// mid-loop, blocking promotion.
fn blocks_promotion(inst: &Inst) -> bool {
    inst.can_throw_other()
        || matches!(inst, Inst::NullCheck { .. } | Inst::BoundCheck { .. })
        || matches!(inst, Inst::Call { .. } | Inst::Observe { .. })
        || inst.is_exception_site()
}

struct Candidate {
    base: VarId,
    field: FieldId,
}

/// Finds a promotable (base, field) in the loop: all accesses of `field`
/// use the same invariant base variable, at least one is a store, and the
/// loop is free of promotion blockers.
fn find_candidate(func: &Function, l: &NaturalLoop) -> Option<Candidate> {
    use std::collections::HashMap;
    let mut by_field: HashMap<FieldId, (Option<VarId>, bool, bool)> = HashMap::new();
    for bi in l.body.iter() {
        let block = func.block(BlockId::new(bi));
        if block.try_region.is_some() {
            return None;
        }
        for inst in &block.insts {
            if blocks_promotion(inst) {
                return None;
            }
            match inst {
                Inst::GetField { obj, field, .. } => {
                    let e = by_field.entry(*field).or_insert((Some(*obj), false, false));
                    if e.0 != Some(*obj) {
                        e.0 = None; // multiple bases: unpromotable
                    }
                    e.1 = true; // loaded
                }
                Inst::PutField { obj, field, .. } => {
                    let e = by_field.entry(*field).or_insert((Some(*obj), false, false));
                    if e.0 != Some(*obj) {
                        e.0 = None;
                    }
                    e.2 = true; // stored
                }
                _ => {}
            }
        }
    }
    // Invariance of the base + pick a field that is actually stored.
    for (field, (base, _loaded, stored)) in by_field {
        let Some(base) = base else { continue };
        if !stored {
            continue; // plain LICM handles load-only fields
        }
        let base_redefined = l.body.iter().any(|bi| {
            func.block(BlockId::new(bi))
                .insts
                .iter()
                .any(|i| i.def() == Some(base))
        });
        if !base_redefined {
            return Some(Candidate { base, field });
        }
    }
    None
}

/// Applies one promotion.
fn promote(
    ctx: &AnalysisCtx<'_>,
    func: &mut Function,
    l: &NaturalLoop,
    preheader: BlockId,
    cand: &Candidate,
    stats: &mut SinkStats,
) {
    let ty = ctx.module.field_decl(cand.field).ty;
    let tmp = func.new_var(ty);

    // Preheader: t = o.f (the base is proven non-null there — the caller
    // checked — so the bare load cannot fault).
    func.block_mut(preheader).insts.push(Inst::GetField {
        dst: tmp,
        obj: cand.base,
        field: cand.field,
        exception_site: false,
    });

    // Rewrite in-loop accesses.
    for bi in l.body.iter() {
        let block = func.block_mut(BlockId::new(bi));
        for inst in &mut block.insts {
            match inst {
                Inst::GetField {
                    dst, obj, field, ..
                } if *obj == cand.base && *field == cand.field => {
                    *inst = Inst::Move {
                        dst: *dst,
                        src: tmp,
                    };
                    stats.accesses_rewritten += 1;
                }
                Inst::PutField {
                    obj, field, value, ..
                } if *obj == cand.base && *field == cand.field => {
                    *inst = Inst::Move {
                        dst: tmp,
                        src: *value,
                    };
                    stats.accesses_rewritten += 1;
                }
                _ => {}
            }
        }
    }

    // Write back on every loop exit edge: split the edge with a block that
    // stores and jumps on. (Exit blocks can have non-loop predecessors —
    // e.g. the rotation guard's zero-trip path — which must not see the
    // write-back.)
    let mut splitters: std::collections::HashMap<BlockId, BlockId> =
        std::collections::HashMap::new();
    let body_blocks: Vec<BlockId> = l.body.iter().map(BlockId::new).collect();
    for &b in &body_blocks {
        let succs: Vec<BlockId> = func.block(b).term.successors();
        for s in succs {
            if l.contains(s) {
                continue;
            }
            let splitter = *splitters.entry(s).or_insert_with(|| {
                let nb = func.add_block();
                func.block_mut(nb).insts.push(Inst::PutField {
                    obj: cand.base,
                    field: cand.field,
                    value: tmp,
                    exception_site: false,
                });
                func.block_mut(nb).term = Terminator::Goto(s);
                nb
            });
            func.block_mut(b)
                .term
                .map_successors(|t| if t == s { splitter } else { t });
        }
    }
    stats.promoted += 1;
}

/// Runs store sinking on `func` in place.
pub fn run(ctx: &AnalysisCtx<'_>, func: &mut Function) -> SinkStats {
    let mut stats = SinkStats::default();
    loop {
        let doms = Dominators::compute(func);
        let loops = find_loops(func, &doms);
        let nonnull = {
            let p = NonNullProblem {
                func,
                sets: compute_sets(func),
                earliest: None,
                entry: None,
                num_facts: func.num_vars(),
            };
            solve(func, &p)
        };
        let mut applied = false;
        for l in &loops {
            let Some(preheader) = l.preheader else {
                continue;
            };
            if func.block(preheader).try_region.is_some() {
                continue;
            }
            let Some(cand) = find_candidate(func, l) else {
                continue;
            };
            if !nonnull.outs[preheader.index()].contains(cand.base.index()) {
                continue; // the preheader load could fault
            }
            promote(ctx, func, l, preheader, &cand, &mut stats);
            applied = true;
            break; // CFG changed: recompute loops
        }
        if !applied {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_arch::TrapModel;
    use njc_core::phase1;
    use njc_ir::{parse_function, verify, Module, Type};

    fn module() -> Module {
        let mut m = Module::new("t");
        m.add_class("A", &[("count", Type::Int)]);
        m
    }

    /// The Figure 4 shape after phase 1: check at the preheader, bare
    /// accesses in the loop.
    const FIG4: &str = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  nullcheck v0
  goto bb1
bb1:
  v2 = getfield v0, field0
  v3 = add.int v2, v2
  putfield v0, field0, v3
  if lt v3, v1 then bb1 else bb2
bb2:
  v2 = getfield v0, field0
  return v2
}";

    #[test]
    fn figure4_field_is_promoted() {
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(FIG4).unwrap();
        let stats = run(&ctx, &mut f);
        assert_eq!(stats.promoted, 1, "{f}");
        assert_eq!(stats.accesses_rewritten, 2);
        verify(&f).unwrap();
        // The loop block contains no field accesses any more.
        let loop_block = f.block(BlockId(1));
        assert!(
            loop_block
                .insts
                .iter()
                .all(|i| !matches!(i, Inst::GetField { .. } | Inst::PutField { .. })),
            "{f}"
        );
        // A write-back block exists on the exit edge.
        let has_writeback = f
            .blocks()
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::PutField { .. })));
        assert!(has_writeback, "{f}");
    }

    #[test]
    fn in_loop_null_check_blocks_promotion() {
        // Before phase 1 the check sits in the loop: no promotion (the NPE
        // must see the true heap).
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  goto bb1
bb1:
  nullcheck v0
  v2 = getfield v0, field0
  v3 = add.int v2, v2
  putfield v0, field0, v3
  if lt v3, v1 then bb1 else bb2
bb2:
  return v3
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f);
        assert_eq!(stats.promoted, 0, "{f}");
    }

    #[test]
    fn second_base_variable_blocks_promotion() {
        let src = "\
func f(v0: ref, v1: ref, v2: int) -> int {
  locals v3: int v4: int
bb0:
  nullcheck v0
  nullcheck v1
  goto bb1
bb1:
  v3 = getfield v0, field0
  putfield v1, field0, v3
  v4 = add.int v3, v3
  if lt v4, v2 then bb1 else bb2
bb2:
  return v4
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f);
        assert_eq!(stats.promoted, 0, "v0 and v1 may alias: {f}");
    }

    #[test]
    fn load_only_field_is_left_to_licm() {
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  nullcheck v0
  v3 = const 0
  goto bb1
bb1:
  v2 = getfield v0, field0
  v3 = add.int v3, v2
  if lt v3, v1 then bb1 else bb2
bb2:
  return v3
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        let stats = run(&ctx, &mut f);
        assert_eq!(stats.promoted, 0);
    }

    #[test]
    fn full_pipeline_promotes_figure4_micro() {
        // End to end: phase 1 hoists the checks out of the figure-4 loop,
        // then store sinking promotes the field.
        let src = "\
func f(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  goto bb1
bb1:
  nullcheck v0
  v2 = getfield v0, field0
  v3 = add.int v2, v2
  nullcheck v0
  putfield v0, field0, v3
  if lt v3, v1 then bb1 else bb2
bb2:
  return v3
}";
        let m = module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = parse_function(src).unwrap();
        phase1::run(&ctx, &mut f);
        let stats = run(&ctx, &mut f);
        assert_eq!(stats.promoted, 1, "{f}");
        verify(&f).unwrap();
    }
}
