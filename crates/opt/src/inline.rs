//! Devirtualization and method inlining (paper §2.1, Figure 1).
//!
//! Devirtualization turns a virtual call into a direct call when the
//! receiver's dynamic type is known (allocation-site tracking) or the
//! method has exactly one implementation in the module (closed-world CHA).
//! Inlining then splices small callee bodies into the caller.
//!
//! The null check consequence is the paper's Figure 1: a virtual call's
//! receiver check rides on the method-table load (an implicit check), but
//! once the call is direct or inlined **no object slot is accessed**, so an
//! explicit `nullcheck` instruction must remain — the builder emits one in
//! front of every receiver-taking call, and inlining keeps it. Those
//! surviving checks are precisely what the architecture dependent
//! optimization then minimizes (§3.3.2, and the `mtrt` discussion in §5.1).

use std::collections::HashMap;

use njc_ir::{BlockId, CallTarget, ClassId, Function, FunctionId, Inst, Module, Terminator, VarId};

/// Inlining heuristics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InlineConfig {
    /// Maximum callee size (instruction count) to inline.
    pub max_callee_insts: usize,
    /// Maximum number of call sites to inline per caller (budget).
    pub max_sites_per_caller: usize,
}

impl Default for InlineConfig {
    fn default() -> Self {
        InlineConfig {
            max_callee_insts: 24,
            max_sites_per_caller: 24,
        }
    }
}

/// Statistics from one devirtualization + inlining application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InlineStats {
    /// Virtual calls rewritten to direct calls.
    pub devirtualized: usize,
    /// Call sites inlined.
    pub inlined: usize,
}

/// Devirtualizes every virtual call in `func` whose target is statically
/// known.
pub fn devirtualize(module: &Module, func: &mut Function) -> usize {
    let mut count = 0;
    for bi in 0..func.num_blocks() {
        // Allocation-site tracking, block-local: var -> known dynamic class.
        let mut known: HashMap<VarId, ClassId> = HashMap::new();
        let block = func.block_mut(BlockId::new(bi));
        for inst in &mut block.insts {
            if let Inst::Call {
                target: target @ CallTarget::Virtual { .. },
                receiver: Some(r),
                ..
            } = inst
            {
                let CallTarget::Virtual { method, .. } = &target else {
                    unreachable!()
                };
                let resolved = if let Some(&cls) = known.get(r) {
                    module.resolve_virtual(cls, method)
                } else {
                    match module.implementations_of(method).as_slice() {
                        [(_, f)] => Some(*f),
                        _ => None,
                    }
                };
                if let Some(f) = resolved {
                    *target = CallTarget::Direct(f);
                    count += 1;
                }
            }
            match inst {
                Inst::New { dst, class } => {
                    known.insert(*dst, *class);
                }
                _ => {
                    if let Some(d) = inst.def() {
                        known.remove(&d);
                    }
                }
            }
        }
    }
    count
}

/// Whether `callee` is inlinable at all: small, try-region-free, and not
/// calling anything (leaf). The leaf restriction bounds code growth and
/// sidesteps recursive inlining.
fn inlinable(callee: &Function, config: InlineConfig) -> bool {
    callee.try_regions().is_empty()
        && callee.num_insts() <= config.max_callee_insts
        && callee
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .all(|i| !matches!(i, Inst::Call { .. }))
}

/// Inlines eligible direct/static call sites in `caller`. `callees` maps
/// function ids to (cloned) bodies — cloned up front so the caller can be
/// mutated while reading them.
fn inline_in_function(
    caller: &mut Function,
    callees: &HashMap<FunctionId, Function>,
    config: InlineConfig,
) -> usize {
    let mut inlined = 0;
    let mut bi = 0;
    // New blocks are appended as we go; iterate by index.
    while bi < caller.num_blocks() {
        if inlined >= config.max_sites_per_caller {
            break;
        }
        let block_id = BlockId::new(bi);
        // Find the first inlinable call in this block.
        let site = caller.block(block_id).insts.iter().position(|i| {
            matches!(
                i,
                Inst::Call {
                    target: CallTarget::Direct(f) | CallTarget::Static(f),
                    ..
                } if callees.contains_key(f)
            )
        });
        let Some(pos) = site else {
            bi += 1;
            continue;
        };
        splice(caller, block_id, pos, callees);
        inlined += 1;
        // Re-examine the same block: the tail moved to a new block, but the
        // head may still contain earlier instructions (no more calls before
        // `pos`, so move on).
        bi += 1;
    }
    inlined
}

/// Splices the callee body in place of the call at `block[pos]`.
///
/// Layout afterwards:
/// ```text
/// block:        [head insts] goto entry'
/// entry'..:     callee blocks (vars and blocks remapped), returns become
///               `dst = move retvar; goto cont`
/// cont:         [tail insts] original terminator
/// ```
fn splice(
    caller: &mut Function,
    block_id: BlockId,
    pos: usize,
    callees: &HashMap<FunctionId, Function>,
) {
    let call = caller.block(block_id).insts[pos].clone();
    let Inst::Call {
        dst,
        target: CallTarget::Direct(fid) | CallTarget::Static(fid),
        receiver,
        args,
        ..
    } = call
    else {
        panic!("splice target is not a direct call");
    };
    let callee = &callees[&fid];
    let region = caller.block(block_id).try_region;

    // Variable remapping: callee v_i -> fresh caller var.
    let var_map: Vec<VarId> = callee
        .var_types()
        .iter()
        .map(|&t| caller.new_var(t))
        .collect();

    // Parameter binding: receiver (if any) then args.
    let mut actuals: Vec<VarId> = Vec::new();
    actuals.extend(receiver);
    actuals.extend(args.iter().copied());
    assert_eq!(
        actuals.len(),
        callee.params().len(),
        "arity checked by verify_module"
    );

    // Block remapping: callee bb_i -> fresh caller block.
    let block_map: Vec<BlockId> = (0..callee.num_blocks())
        .map(|_| caller.add_block())
        .collect();
    let cont = caller.add_block();

    // Move the tail of the original block to `cont`, take the terminator.
    let tail: Vec<Inst> = caller.block_mut(block_id).insts.split_off(pos + 1);
    caller.block_mut(block_id).insts.pop(); // the call itself
    let old_term = std::mem::replace(
        &mut caller.block_mut(block_id).term,
        Terminator::Goto(block_map[callee.entry().index()]),
    );
    {
        let c = caller.block_mut(cont);
        c.insts = tail;
        c.term = old_term;
        c.try_region = region;
    }

    // Bind parameters at the end of the head block.
    for (i, &actual) in actuals.iter().enumerate() {
        let formal = var_map[i];
        caller.block_mut(block_id).insts.push(Inst::Move {
            dst: formal,
            src: actual,
        });
    }

    // Copy callee blocks with remapped vars/blocks.
    for cb in callee.blocks() {
        let nb = block_map[cb.id.index()];
        let mut insts = Vec::with_capacity(cb.insts.len());
        for inst in &cb.insts {
            insts.push(remap_inst(inst, &var_map));
        }
        let term = match &cb.term {
            Terminator::Return(v) => {
                if let (Some(d), Some(v)) = (dst, v) {
                    insts.push(Inst::Move {
                        dst: d,
                        src: var_map[v.index()],
                    });
                }
                Terminator::Goto(cont)
            }
            other => {
                let mut t = remap_term(other, &var_map);
                t.map_successors(|b| block_map[b.index()]);
                t
            }
        };
        let b = caller.block_mut(nb);
        b.insts = insts;
        b.term = term;
        // Inlined code inherits the caller's try region: its exceptions now
        // propagate to the caller's handler.
        b.try_region = region;
    }
}

fn remap_var(v: VarId, map: &[VarId]) -> VarId {
    map[v.index()]
}

fn remap_inst(inst: &Inst, map: &[VarId]) -> Inst {
    let mut i = inst.clone();
    remap_inst_in_place(&mut i, map);
    i
}

fn remap_inst_in_place(inst: &mut Inst, map: &[VarId]) {
    match inst {
        Inst::Const { dst, .. } => *dst = remap_var(*dst, map),
        Inst::Move { dst, src } => {
            *dst = remap_var(*dst, map);
            *src = remap_var(*src, map);
        }
        Inst::BinOp { dst, lhs, rhs, .. } => {
            *dst = remap_var(*dst, map);
            *lhs = remap_var(*lhs, map);
            *rhs = remap_var(*rhs, map);
        }
        Inst::FCmp { dst, lhs, rhs, .. } => {
            *dst = remap_var(*dst, map);
            *lhs = remap_var(*lhs, map);
            *rhs = remap_var(*rhs, map);
        }
        Inst::Neg { dst, src, .. } | Inst::Convert { dst, src, .. } => {
            *dst = remap_var(*dst, map);
            *src = remap_var(*src, map);
        }
        Inst::IntrinsicOp { dst, src, .. } => {
            *dst = remap_var(*dst, map);
            *src = remap_var(*src, map);
        }
        Inst::NullCheck { var, .. } | Inst::Observe { var } => *var = remap_var(*var, map),
        Inst::BoundCheck { index, length } => {
            *index = remap_var(*index, map);
            *length = remap_var(*length, map);
        }
        Inst::GetField { dst, obj, .. } => {
            *dst = remap_var(*dst, map);
            *obj = remap_var(*obj, map);
        }
        Inst::PutField { obj, value, .. } => {
            *obj = remap_var(*obj, map);
            *value = remap_var(*value, map);
        }
        Inst::ArrayLength { dst, arr, .. } => {
            *dst = remap_var(*dst, map);
            *arr = remap_var(*arr, map);
        }
        Inst::ArrayLoad {
            dst, arr, index, ..
        } => {
            *dst = remap_var(*dst, map);
            *arr = remap_var(*arr, map);
            *index = remap_var(*index, map);
        }
        Inst::ArrayStore {
            arr, index, value, ..
        } => {
            *arr = remap_var(*arr, map);
            *index = remap_var(*index, map);
            *value = remap_var(*value, map);
        }
        Inst::New { dst, .. } => *dst = remap_var(*dst, map),
        Inst::NewArray { dst, len, .. } => {
            *dst = remap_var(*dst, map);
            *len = remap_var(*len, map);
        }
        Inst::Call {
            dst,
            receiver,
            args,
            ..
        } => {
            if let Some(d) = dst {
                *d = remap_var(*d, map);
            }
            if let Some(r) = receiver {
                *r = remap_var(*r, map);
            }
            for a in args {
                *a = remap_var(*a, map);
            }
        }
    }
}

fn remap_term(term: &Terminator, map: &[VarId]) -> Terminator {
    match term {
        Terminator::If {
            cond,
            lhs,
            rhs,
            then_bb,
            else_bb,
        } => Terminator::If {
            cond: *cond,
            lhs: remap_var(*lhs, map),
            rhs: remap_var(*rhs, map),
            then_bb: *then_bb,
            else_bb: *else_bb,
        },
        Terminator::IfNull {
            var,
            on_null,
            on_nonnull,
        } => Terminator::IfNull {
            var: remap_var(*var, map),
            on_null: *on_null,
            on_nonnull: *on_nonnull,
        },
        Terminator::Goto(b) => Terminator::Goto(*b),
        Terminator::Return(v) => Terminator::Return(v.map(|v| remap_var(v, map))),
        Terminator::Throw(k) => Terminator::Throw(*k),
    }
}

/// Runs devirtualization followed by inlining across the whole module.
pub fn run(module: &mut Module, config: InlineConfig) -> InlineStats {
    let mut stats = InlineStats::default();
    // Devirtualize everywhere first.
    for fi in 0..module.num_functions() {
        let id = FunctionId::new(fi);
        // Split borrow: clone nothing, devirtualize reads only the class
        // table and method implementations.
        let mut func = std::mem::replace(
            module.function_mut(id),
            Function::from_parts(
                String::new(),
                vec![],
                None,
                false,
                vec![],
                vec![njc_ir::BasicBlock::new(BlockId(0))],
                BlockId(0),
                vec![],
            ),
        );
        stats.devirtualized += devirtualize(module, &mut func);
        *module.function_mut(id) = func;
    }
    // Snapshot inlinable bodies.
    let mut bodies: HashMap<FunctionId, Function> = HashMap::new();
    for fi in 0..module.num_functions() {
        let id = FunctionId::new(fi);
        let f = module.function(id);
        if inlinable(f, config) {
            bodies.insert(id, f.clone());
        }
    }
    for fi in 0..module.num_functions() {
        let id = FunctionId::new(fi);
        let mut func = std::mem::replace(
            module.function_mut(id),
            Function::from_parts(
                String::new(),
                vec![],
                None,
                false,
                vec![],
                vec![njc_ir::BasicBlock::new(BlockId(0))],
                BlockId(0),
                vec![],
            ),
        );
        // A function must not inline itself (snapshot excludes it while it
        // is checked out, but the snapshot was taken before).
        let mut local = bodies.clone();
        local.remove(&id);
        stats.inlined += inline_in_function(&mut func, &local, config);
        *module.function_mut(id) = func;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::{verify_module, FuncBuilder, NullCheckKind, Type};

    /// Builds the Figure 1 module: a small accessor method called
    /// virtually.
    fn figure1_module() -> Module {
        let mut m = Module::new("fig1");
        let c = m.add_class("C", &[("field1", Type::Int)]);
        // int func(int s1) { if (s1 < 0) return s1; else return this.field1; }
        let mut b = FuncBuilder::new("C_func", &[Type::Ref, Type::Int], Type::Int);
        b.instance_method();
        let this = b.param(0);
        let s1 = b.param(1);
        let zero = b.iconst(0);
        let neg = b.new_block();
        let pos = b.new_block();
        b.br_if(njc_ir::Cond::Lt, s1, zero, neg, pos);
        b.switch_to(neg);
        b.ret(Some(s1));
        b.switch_to(pos);
        let field1 = m.field(c, "field1").unwrap();
        let v = b.get_field(this, field1);
        b.ret(Some(v));
        m.add_method(c, "func", b.finish());

        // caller: result = a.func(i)
        let mut b = FuncBuilder::new("caller", &[Type::Ref, Type::Int], Type::Int);
        let a = b.param(0);
        let i = b.param(1);
        let r = b.call_virtual(c, "func", a, &[i], Some(Type::Int)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn monomorphic_virtual_call_devirtualized_and_inlined() {
        let mut m = figure1_module();
        let stats = run(&mut m, InlineConfig::default());
        assert_eq!(stats.devirtualized, 1);
        assert_eq!(stats.inlined, 1);
        verify_module(&m).unwrap();
        let caller = m.function(m.function_by_name("caller").unwrap());
        // No call remains...
        assert!(caller
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .all(|i| !matches!(i, Inst::Call { .. })));
        // ... but the explicit null check of the receiver does (Figure 1's
        // requirement).
        assert!(caller
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::NullCheck { var, kind: NullCheckKind::Explicit, .. } if *var == VarId(0))));
    }

    #[test]
    fn allocation_site_devirtualization() {
        let mut m = Module::new("t");
        let c1 = m.add_class("A", &[]);
        let c2 = m.add_class("B", &[]);
        for (cls, name) in [(c1, "A_get"), (c2, "B_get")] {
            let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Int);
            b.instance_method();
            let v = b.iconst(if name.starts_with('A') { 1 } else { 2 });
            b.ret(Some(v));
            m.add_method(cls, "get", b.finish());
        }
        // Polymorphic method, but the receiver is freshly allocated: the
        // allocation site pins the class.
        let mut b = FuncBuilder::new("main", &[], Type::Int);
        let obj = b.new_object(c1);
        let r = b
            .call_virtual(c1, "get", obj, &[], Some(Type::Int))
            .unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());

        let mut f = m.function(m.function_by_name("main").unwrap()).clone();
        let n = devirtualize(&m, &mut f);
        assert_eq!(n, 1);
        let a_get = m.function_by_name("A_get").unwrap();
        assert!(f
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { target: CallTarget::Direct(t), .. } if *t == a_get)));
    }

    #[test]
    fn polymorphic_call_not_devirtualized_without_allocation() {
        let mut m = Module::new("t");
        let c1 = m.add_class("A", &[]);
        let c2 = m.add_class("B", &[]);
        for (cls, name) in [(c1, "A_get"), (c2, "B_get")] {
            let mut b = FuncBuilder::new(name, &[Type::Ref], Type::Int);
            b.instance_method();
            let v = b.iconst(0);
            b.ret(Some(v));
            m.add_method(cls, "get", b.finish());
        }
        let mut b = FuncBuilder::new("main", &[Type::Ref], Type::Int);
        let obj = b.param(0);
        let r = b
            .call_virtual(c1, "get", obj, &[], Some(Type::Int))
            .unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());

        let mut f = m.function(m.function_by_name("main").unwrap()).clone();
        assert_eq!(devirtualize(&m, &mut f), 0);
    }

    #[test]
    fn inlined_code_inherits_caller_try_region() {
        let mut m = Module::new("t");
        let c = m.add_class("C", &[("x", Type::Int)]);
        let mut b = FuncBuilder::new("getx", &[Type::Ref], Type::Int);
        b.instance_method();
        let this = b.param(0);
        let f = m.field(c, "x").unwrap();
        let v = b.get_field(this, f);
        b.ret(Some(v));
        let getx = m.add_method(c, "getx", b.finish());

        let mut b = FuncBuilder::new("caller", &[Type::Ref], Type::Int);
        let p = b.param(0);
        let handler = b.new_block();
        let code = b.var(Type::Int);
        let region = b.add_try_region(handler, njc_ir::CatchKind::Any, Some(code));
        b.set_try_region(Some(region));
        let r = b.call_direct(getx, p, &[], Some(Type::Int)).unwrap();
        b.ret(Some(r));
        b.set_try_region(None);
        b.switch_to(handler);
        let z = b.iconst(-9);
        b.ret(Some(z));
        m.add_function(b.finish());

        let stats = run(&mut m, InlineConfig::default());
        assert_eq!(stats.inlined, 1);
        verify_module(&m).unwrap();
        let caller = m.function(m.function_by_name("caller").unwrap());
        // Every block holding inlined callee instructions (the getfield) is
        // inside the caller's try region.
        for b in caller.blocks() {
            if b.insts.iter().any(|i| matches!(i, Inst::GetField { .. })) {
                assert_eq!(b.try_region, Some(njc_ir::TryRegionId(0)), "{caller}");
            }
        }
    }

    #[test]
    fn oversized_callee_not_inlined() {
        let mut m = figure1_module();
        let stats = run(
            &mut m,
            InlineConfig {
                max_callee_insts: 1,
                max_sites_per_caller: 10,
            },
        );
        assert_eq!(stats.inlined, 0);
        assert_eq!(stats.devirtualized, 1, "devirt still happens");
    }

    #[test]
    fn void_callee_inlines_without_result_move() {
        let mut m = Module::new("t");
        let c = m.add_class("C", &[("x", Type::Int)]);
        let mut b = FuncBuilder::new_void("setx", &[Type::Ref, Type::Int]);
        b.instance_method();
        let this = b.param(0);
        let x = b.param(1);
        let f = m.field(c, "x").unwrap();
        b.put_field(this, f, x);
        b.ret(None);
        let setx = m.add_method(c, "setx", b.finish());

        let mut b = FuncBuilder::new("caller", &[Type::Ref, Type::Int], Type::Int);
        let p = b.param(0);
        let x = b.param(1);
        b.call_direct(setx, p, &[x], None);
        b.ret(Some(x));
        m.add_function(b.finish());

        let stats = run(&mut m, InlineConfig::default());
        assert_eq!(stats.inlined, 1);
        verify_module(&m).unwrap();
    }
}
