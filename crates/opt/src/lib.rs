//! # njc-opt — supporting JIT optimizations and the Figure 2 pipeline
//!
//! The paper's null check optimizer does not act alone: phase 1 is
//! *iterated* with array bounds check optimization and scalar replacement
//! (Figure 2), and method inlining (via devirtualization) is what creates
//! the explicit null checks phase 2 then minimizes (Figure 1). This crate
//! provides those supporting passes and the [`pipeline`] driver with one
//! [`pipeline::ConfigKind`] preset per evaluation configuration:
//!
//! * [`inline`] — devirtualization + method inlining
//! * [`intrinsics`] — `Math.exp`-style hardware intrinsic substitution
//!   (§5.4)
//! * [`boundcheck`] — redundant array bounds check elimination
//! * [`versioning`] — loop versioning for bounds check removal (gated by
//!   hoisted null checks — the paper's §3.2 coupling)
//! * [`scalar`] — redundant load elimination + loop invariant code motion,
//!   with optional read speculation (§3.3.1)
//! * [`sink`] — store sinking / register promotion (Figure 4 (5))
//! * [`copyprop`], [`dce`] — cleanup
//! * [`loops`] — dominators and natural loops
//! * [`pipeline`] — the iterated driver and experiment configurations

pub mod boundcheck;
pub mod copyprop;
pub mod dce;
pub mod inline;
pub mod intrinsics;
pub mod loops;
pub mod pipeline;
pub mod scalar;
pub mod sink;
pub mod versioning;

pub use inline::{InlineConfig, InlineStats};
pub use pipeline::{
    optimize_function_overridden, optimize_module, optimize_module_traced,
    optimize_module_validated, prepare_module, ConfigKind, NullOpt, OptConfig, PipelineStats,
};
pub use scalar::{ScalarConfig, ScalarStats};
