//! Math intrinsic substitution (paper §5.4).
//!
//! On IA32 the JIT converts `java.lang.Math.exp` calls into an exponential
//! instruction; on PowerPC no such instruction exists, the call remains a
//! call — and therefore remains a *barrier* for scalar replacement, which
//! is why Neural Net's implicit-check win is limited on AIX (§5.4).
//!
//! We detect intrinsic-shaped callees structurally: a function whose whole
//! body is a single [`Inst::IntrinsicOp`] followed by a return of its
//! result. When the platform has the hardware instruction, calls to such
//! functions are rewritten to the `IntrinsicOp` inline (no call, no
//! barrier).

use njc_ir::{BlockId, CallTarget, Function, FunctionId, Inst, Intrinsic, Module, Terminator};

/// Statistics from one intrinsic substitution application.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IntrinsicStats {
    /// Calls replaced by inline intrinsic operations.
    pub substituted: usize,
}

/// If `func` is an intrinsic wrapper (`{ v1 = intrinsic op v0; return v1 }`),
/// returns the operation.
pub fn intrinsic_shape(func: &Function) -> Option<Intrinsic> {
    if func.num_blocks() != 1 || func.params().len() != 1 {
        return None;
    }
    let b = func.block(func.entry());
    match (b.insts.as_slice(), &b.term) {
        (
            [Inst::IntrinsicOp {
                dst,
                intrinsic,
                src,
            }],
            Terminator::Return(Some(r)),
        ) if r == dst && src.index() == 0 => Some(*intrinsic),
        _ => None,
    }
}

/// Rewrites calls to intrinsic wrappers into inline intrinsic ops across
/// the module. Call only on platforms with the hardware instruction.
pub fn run(module: &mut Module) -> IntrinsicStats {
    let mut stats = IntrinsicStats::default();
    // Identify wrappers.
    let wrappers: Vec<(FunctionId, Intrinsic)> = module
        .function_ids()
        .filter_map(|id| intrinsic_shape(module.function(id)).map(|i| (id, i)))
        .collect();
    if wrappers.is_empty() {
        return stats;
    }
    let lookup = |id: FunctionId| wrappers.iter().find(|(w, _)| *w == id).map(|(_, i)| *i);
    for fi in 0..module.num_functions() {
        let func = module.function(FunctionId::new(fi));
        // Plan replacements first (immutable pass), then apply.
        let mut plan: Vec<(usize, usize, Inst)> = Vec::new();
        for b in func.blocks() {
            for (pos, inst) in b.insts.iter().enumerate() {
                if let Inst::Call {
                    dst: Some(dst),
                    target: CallTarget::Static(id) | CallTarget::Direct(id),
                    receiver: None,
                    args,
                    ..
                } = inst
                {
                    if let (Some(op), [arg]) = (lookup(*id), args.as_slice()) {
                        plan.push((
                            b.id.index(),
                            pos,
                            Inst::IntrinsicOp {
                                dst: *dst,
                                intrinsic: op,
                                src: *arg,
                            },
                        ));
                    }
                }
            }
        }
        let func = module.function_mut(FunctionId::new(fi));
        for (bi, pos, inst) in plan {
            func.block_mut(BlockId::new(bi)).insts[pos] = inst;
            stats.substituted += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_ir::{FuncBuilder, Type};

    fn math_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("Math_exp", &[Type::Float], Type::Float);
        let x = b.param(0);
        let r = b.var(Type::Float);
        b.emit(Inst::IntrinsicOp {
            dst: r,
            intrinsic: Intrinsic::Exp,
            src: x,
        });
        b.ret(Some(r));
        let exp = m.add_function(b.finish());

        let mut b = FuncBuilder::new("main", &[Type::Float], Type::Float);
        let x = b.param(0);
        let r = b.call_static(exp, &[x], Some(Type::Float)).unwrap();
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn wrapper_shape_detected() {
        let m = math_module();
        let exp = m.function_by_name("Math_exp").unwrap();
        assert_eq!(intrinsic_shape(m.function(exp)), Some(Intrinsic::Exp));
        let main = m.function_by_name("main").unwrap();
        assert_eq!(intrinsic_shape(m.function(main)), None);
    }

    #[test]
    fn call_replaced_by_inline_op() {
        let mut m = math_module();
        let stats = run(&mut m);
        assert_eq!(stats.substituted, 1);
        let main = m.function(m.function_by_name("main").unwrap());
        assert!(main
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::IntrinsicOp { .. })));
        assert!(main
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .all(|i| !matches!(i, Inst::Call { .. })));
        njc_ir::verify_module(&m).unwrap();
    }
}
