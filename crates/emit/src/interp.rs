//! The byte-level interpreter: executes emitted x86-64 bytes directly
//! over the guarded memory.
//!
//! This is the encoder-faithful referee: it knows nothing about the
//! virtual ISA — it decodes the actual bytes ([`crate::decode`]), keeps
//! frame slots in an upward-growing stack addressed by `rbp`, and
//! resolves hardware traps by **binary** exception-site lookup (the
//! function-relative byte offset of the faulting instruction against
//! `.njc.exctab`). Observable behaviour — result, escaped exception,
//! observation trace, trap/check counters, heap digest — must match the
//! costed machine simulator instruction for instruction; the difftest
//! harness holds it to that.

use njc_arch::Platform;
use njc_codegen::{MValue, MachineFault, MachineOutcome, MachineStats};
use njc_ir::{CheckId, ExceptionKind, Type};
use njc_trap::{GuardedMemory, MemoryError};

use crate::abi;
use crate::decode::{decode_one, Dec, Imm32Reg, Scratch};
use crate::encode::{BinSite, EmittedFunction, EmittedModule};

/// Call depth limit, matching the simulator's.
const MAX_DEPTH: usize = 256;

/// The machine state captured at a registered-site hardware trap, in the
/// form the recovery subsystem needs to deoptimize the frame: the
/// trapping function, the site's static provenance (check id, access
/// kind, displacement), and the raw frame slots. Under the frame-slot
/// ABI slot `i` holds virtual register `r{i}` at every
/// virtual-instruction boundary, so `frame` **is** the interpreter
/// locals array for the tier-0 body of the same function — deoptimizing
/// is a copy, not a reconstruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TrapSnapshot {
    /// Name of the trapping function.
    pub function: String,
    /// Function-relative byte offset of the faulting instruction.
    pub byte_off: u32,
    /// The check the site discharges.
    pub check: CheckId,
    /// Read or write.
    pub kind: njc_ir::AccessKind,
    /// Static displacement of the access (`None` when index-scaled).
    pub offset: Option<u64>,
    /// Frame slots `r0..r{num_regs}` at the trapping pc, raw bits.
    pub frame: Vec<u64>,
}

/// What [`ByteMachine::run_until_site_trap`] observed: either the entry
/// ran to completion (possibly unwinding an exception) without any
/// registered site trapping, or execution stopped at the first
/// registered-site trap with the frame captured for deoptimization.
#[derive(Clone, PartialEq, Debug)]
pub enum TrapOutcome {
    /// No registered site trapped; the normal outcome.
    Completed(MachineOutcome),
    /// A registered site trapped; execution stopped there.
    Trapped(TrapSnapshot),
}

/// Executes an [`EmittedModule`]'s bytes.
pub struct ByteMachine<'m> {
    em: &'m EmittedModule,
    platform: Platform,
    fuel: u64,
}

struct Frame {
    ret_addr: usize,
    caller: usize,
    rbp_restore: u64,
}

struct Exec<'m> {
    em: &'m EmittedModule,
    mem: GuardedMemory,
    stats: MachineStats,
    trace: Vec<MValue>,
    fuel: u64,
    stack: Vec<u64>,
    frames: Vec<Frame>,
    rax: u64,
    rcx: u64,
    rdx: u64,
    xmm0: u64,
    xmm1: u64,
    eax: u32,
    edi: u32,
    esi: u32,
    rbp: u64,
    pc: usize,
    fidx: usize,
    /// Snapshot mode: stop at the first registered-site trap and capture
    /// the frame instead of unwinding.
    deopt: bool,
    /// The captured frame, when a registered site trapped in snapshot
    /// mode.
    snapshot: Option<TrapSnapshot>,
    /// Last compare/test operand pair, signed semantics decided by the
    /// consuming jump.
    cmp: (u64, u64),
}

fn from_bits(bits: u64, ty: Type) -> MValue {
    match ty {
        Type::Int => MValue::Int(bits as i64),
        Type::Float => MValue::Float(f64::from_bits(bits)),
        Type::Ref => MValue::Ref(bits),
    }
}

impl<'m> ByteMachine<'m> {
    /// Creates a byte machine for `em` under `platform`'s trap model.
    pub fn new(em: &'m EmittedModule, platform: Platform) -> Self {
        // The simulator budgets 200M virtual instructions; each expands to
        // a bounded handful of x86 instructions.
        ByteMachine {
            em,
            platform,
            fuel: 4_000_000_000,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `entry` (no arguments) to completion.
    ///
    /// # Errors
    /// [`MachineFault`] on compiler bugs or resource exhaustion, exactly
    /// like the costed simulator.
    pub fn run(self, entry: &str) -> Result<MachineOutcome, MachineFault> {
        let (exec, outcome, ret_ty) = self.exec(entry, false)?;
        Ok(Self::outcome(exec, outcome, ret_ty))
    }

    /// Runs `entry` until the first registered-site hardware trap, whose
    /// frame is captured as a [`TrapSnapshot`] for deoptimization, or to
    /// completion when no registered site traps. Unregistered traps are
    /// still [`MachineFault::UnexpectedTrap`] — snapshot mode changes
    /// what happens at *marked* sites only.
    ///
    /// # Errors
    /// [`MachineFault`] on compiler bugs or resource exhaustion.
    pub fn run_until_site_trap(self, entry: &str) -> Result<TrapOutcome, MachineFault> {
        let (exec, outcome, ret_ty) = self.exec(entry, true)?;
        if let Some(snap) = exec.snapshot {
            return Ok(TrapOutcome::Trapped(snap));
        }
        Ok(TrapOutcome::Completed(Self::outcome(exec, outcome, ret_ty)))
    }

    fn outcome(
        exec: Exec<'_>,
        outcome: Option<ExceptionKind>,
        ret_ty: Option<Type>,
    ) -> MachineOutcome {
        let (result, exception) = match outcome {
            None => (ret_ty.map(|t| from_bits(exec.rax, t)), None),
            Some(kind) => (None, Some(kind)),
        };
        MachineOutcome {
            result,
            exception,
            trace: exec.trace,
            stats: exec.stats,
        }
    }

    fn exec(
        self,
        entry: &str,
        deopt: bool,
    ) -> Result<(Exec<'m>, Option<ExceptionKind>, Option<Type>), MachineFault> {
        let fidx = self
            .em
            .function_by_name(entry)
            .ok_or_else(|| MachineFault::NoSuchFunction(entry.to_string()))?;
        let f = &self.em.functions[fidx];
        let mut exec = Exec {
            em: self.em,
            mem: GuardedMemory::new(self.platform.trap),
            stats: MachineStats::default(),
            trace: Vec::new(),
            fuel: self.fuel,
            stack: Vec::new(),
            frames: Vec::new(),
            rax: 0,
            rcx: 0,
            rdx: 0,
            xmm0: 0,
            xmm1: 0,
            eax: 0,
            edi: 0,
            esi: 0,
            rbp: 0,
            pc: f.text_off as usize,
            fidx,
            deopt,
            snapshot: None,

            cmp: (0, 0),
        };
        let ret_ty = f.ret;
        let outcome = exec.run()?;
        Ok((exec, outcome, ret_ty))
    }
}

impl Exec<'_> {
    fn func(&self) -> &EmittedFunction {
        &self.em.functions[self.fidx]
    }

    fn slot_index(&self, slot: u32) -> usize {
        (self.rbp / 8) as usize + slot as usize
    }

    fn read_slot(&mut self, slot: u32) -> u64 {
        let i = self.slot_index(slot);
        self.stack.get(i).copied().unwrap_or(0)
    }

    fn write_slot(&mut self, slot: u32, value: u64) {
        let i = self.slot_index(slot);
        if self.stack.len() <= i {
            self.stack.resize(i + 1, 0);
        }
        self.stack[i] = value;
    }

    fn scratch(&mut self, reg: Scratch) -> &mut u64 {
        match reg {
            Scratch::Rax => &mut self.rax,
            Scratch::Rcx => &mut self.rcx,
            Scratch::Rdx => &mut self.rdx,
        }
    }

    /// The site entry covering the current instruction, if any.
    fn site(&self) -> Option<&BinSite> {
        let f = self.func();
        let rel = (self.pc - f.text_off as usize) as u32;
        f.sites
            .binary_search_by_key(&rel, |s| s.byte_off)
            .ok()
            .map(|i| &f.sites[i])
    }

    /// Captures the trapping frame for deoptimization: frame slots are
    /// virtual registers under the frame-slot ABI, so the copy *is* the
    /// interpreter locals array.
    fn capture(&self, site: BinSite) -> TrapSnapshot {
        let f = self.func();
        let base = (self.rbp / 8) as usize;
        let frame = (0..f.num_regs as usize)
            .map(|i| self.stack.get(base + i).copied().unwrap_or(0))
            .collect();
        TrapSnapshot {
            function: f.name.clone(),
            byte_off: (self.pc - f.text_off as usize) as u32,
            check: site.check,
            kind: site.kind,
            offset: site.offset,
            frame,
        }
    }

    fn unexpected_trap(&self, kind: njc_ir::AccessKind, offset: Option<u64>) -> MachineFault {
        let f = self.func();
        let rel = self.pc - f.text_off as usize;
        let nearest: Option<(usize, CheckId)> = f
            .sites
            .iter()
            .min_by_key(|s| (s.byte_off as i64 - rel as i64).abs())
            .map(|s| (s.byte_off as usize, s.check));
        MachineFault::UnexpectedTrap {
            function: f.name.clone(),
            pc: rel,
            kind,
            offset,
            nearest_site: nearest,
        }
    }

    /// Unwinds `kind` from the current pc. Returns the kind if it escapes
    /// the entry frame; otherwise control is at the handler.
    fn unwind(&mut self, kind: ExceptionKind) -> Option<ExceptionKind> {
        loop {
            let f = &self.em.functions[self.fidx];
            let rel = (self.pc - f.text_off as usize) as u32;
            let hit = f
                .handlers
                .iter()
                .find(|h| h.start <= rel && rel < h.end && h.catch.catches(kind));
            if let Some(h) = hit {
                let (handler, code_slot) = (h.handler, h.code_slot);
                if let Some(slot) = code_slot {
                    self.write_slot(slot, kind.code() as u64);
                }
                self.pc = f.text_off as usize + handler as usize;
                return None;
            }
            match self.frames.pop() {
                Some(frame) => {
                    self.pc = frame.ret_addr;
                    self.fidx = frame.caller;
                    self.rbp = frame.rbp_restore;
                }
                None => return Some(kind),
            }
        }
    }

    /// Pushes an activation and transfers to `callee`'s entry.
    fn enter(&mut self, callee: usize, ret_addr: usize) -> Result<(), MachineFault> {
        if self.frames.len() + 1 > MAX_DEPTH {
            return Err(MachineFault::StackOverflow);
        }
        let caller_regs = u64::from(self.func().num_regs);
        self.frames.push(Frame {
            ret_addr,
            caller: self.fidx,
            rbp_restore: self.rbp - caller_regs * 8,
        });
        self.fidx = callee;
        self.pc = self.em.functions[callee].text_off as usize;
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn run(&mut self) -> Result<Option<ExceptionKind>, MachineFault> {
        loop {
            self.stats.insts += 1;
            if self.stats.insts > self.fuel {
                return Err(MachineFault::OutOfFuel);
            }
            let (dec, len) = decode_one(&self.em.text, self.pc)
                .unwrap_or_else(|e| panic!("emitted bytes must decode: {e}"));
            let next = self.pc + len;
            // Shorthand: raise an exception at the *current* pc, returning
            // whether it escaped.
            macro_rules! raise {
                ($kind:expr) => {{
                    if let Some(k) = self.unwind($kind) {
                        return Ok(Some(k));
                    }
                    continue;
                }};
            }
            match dec {
                Dec::Pad => panic!("execution ran into inter-function padding"),
                Dec::LoadSlot { reg, slot } => {
                    let v = self.read_slot(slot);
                    *self.scratch(reg) = v;
                }
                Dec::StoreSlot { slot, reg } => {
                    let v = *self.scratch(reg);
                    self.write_slot(slot, v);
                }
                Dec::LoadMem { disp, indexed } => {
                    let mut addr = self.rax.wrapping_add(u64::from(disp));
                    if indexed {
                        addr = addr.wrapping_add(self.rcx.wrapping_mul(8));
                    }
                    match self.mem.read_u64(addr) {
                        Ok(out) => {
                            if out.from_guard && self.site().is_some() {
                                self.stats.missed_npes += 1;
                            }
                            self.rdx = out.value;
                        }
                        Err(MemoryError::Trap(_)) => {
                            if let Some(&site) = self.site() {
                                self.stats.traps_taken += 1;
                                if self.deopt {
                                    self.snapshot = Some(self.capture(site));
                                    return Ok(None);
                                }
                                raise!(ExceptionKind::NullPointer);
                            }
                            return Err(self.unexpected_trap(
                                njc_ir::AccessKind::Read,
                                (!indexed).then_some(u64::from(disp)),
                            ));
                        }
                        Err(MemoryError::WildAccess { address, .. }) => {
                            return Err(MachineFault::WildAccess {
                                function: self.func().name.clone(),
                                address,
                            })
                        }
                    }
                }
                Dec::StoreMem { disp, indexed } => {
                    let mut addr = self.rax.wrapping_add(u64::from(disp));
                    if indexed {
                        addr = addr.wrapping_add(self.rcx.wrapping_mul(8));
                    }
                    match self.mem.write_u64(addr, self.rdx) {
                        Ok(()) => {}
                        Err(MemoryError::Trap(_)) => {
                            if let Some(&site) = self.site() {
                                self.stats.traps_taken += 1;
                                if self.deopt {
                                    self.snapshot = Some(self.capture(site));
                                    return Ok(None);
                                }
                                raise!(ExceptionKind::NullPointer);
                            }
                            return Err(self.unexpected_trap(
                                njc_ir::AccessKind::Write,
                                (!indexed).then_some(u64::from(disp)),
                            ));
                        }
                        Err(MemoryError::WildAccess { address, .. }) => {
                            return Err(MachineFault::WildAccess {
                                function: self.func().name.clone(),
                                address,
                            })
                        }
                    }
                }
                Dec::MovAbs { reg, imm } => *self.scratch(reg) = imm,
                Dec::MovImm32 { reg, imm } => match reg {
                    Imm32Reg::Eax => self.eax = imm,
                    Imm32Reg::Edi => self.edi = imm,
                    Imm32Reg::Esi => self.esi = imm,
                },
                Dec::AddRcx => self.rax = self.rax.wrapping_add(self.rcx),
                Dec::AddRdx => self.rax = self.rax.wrapping_add(self.rdx),
                Dec::SubRcx => self.rax = self.rax.wrapping_sub(self.rcx),
                Dec::MulRcx => self.rax = self.rax.wrapping_mul(self.rcx),
                Dec::AndRcx => self.rax &= self.rcx,
                Dec::OrRcx => self.rax |= self.rcx,
                Dec::XorRcx => self.rax ^= self.rcx,
                Dec::XorSelf => self.rax = 0,
                Dec::XorRdx => self.rax ^= self.rdx,
                Dec::ShlCl => {
                    self.rax = (self.rax as i64).wrapping_shl(self.rcx as u32 & 63) as u64;
                }
                Dec::SarCl => {
                    self.rax = (self.rax as i64).wrapping_shr(self.rcx as u32 & 63) as u64;
                }
                Dec::ShrCl => self.rax = self.rax.wrapping_shr(self.rcx as u32 & 63),
                Dec::NegRax => self.rax = (self.rax as i64).wrapping_neg() as u64,
                Dec::Cqo => self.rdx = ((self.rax as i64) >> 63) as u64,
                Dec::IdivRcx => {
                    // The encoder guards zero and MIN/-1 before `idiv`.
                    let a = self.rax as i64;
                    let b = self.rcx as i64;
                    self.rax = (a / b) as u64;
                    self.rdx = (a % b) as u64;
                }
                Dec::MovRaxRdx => self.rax = self.rdx,
                Dec::TestRax => {
                    // `test rax, rax` exists only in the explicit null
                    // check expansion — the census fingerprint.
                    self.stats.explicit_null_checks += 1;
                    self.cmp = (self.rax, 0);
                }
                Dec::TestRcx => self.cmp = (self.rcx, 0),
                Dec::CmpRaxRcx => self.cmp = (self.rax, self.rcx),
                Dec::CmpRaxRdx => self.cmp = (self.rax, self.rdx),
                Dec::CmpRcxM1 => self.cmp = (self.rcx, u64::MAX),
                Dec::AndRax1 => self.rax &= 1,
                Dec::LeaRbp { disp } => self.rbp = self.rbp.wrapping_add(disp as i64 as u64),
                Dec::MovsdLoad { xmm, slot } => {
                    let v = self.read_slot(slot);
                    if xmm == 0 {
                        self.xmm0 = v;
                    } else {
                        self.xmm1 = v;
                    }
                }
                Dec::MovsdStore { slot } => {
                    let v = self.xmm0;
                    self.write_slot(slot, v);
                }
                Dec::Addsd => self.fop(|x, y| x + y),
                Dec::Subsd => self.fop(|x, y| x - y),
                Dec::Mulsd => self.fop(|x, y| x * y),
                Dec::Divsd => self.fop(|x, y| x / y),
                Dec::Cmpsd { pred } => {
                    let x = f64::from_bits(self.xmm0);
                    let y = f64::from_bits(self.xmm1);
                    let r = match pred {
                        0 => x == y,
                        1 => x < y,
                        2 => x <= y,
                        4 => x != y,
                        p => panic!("unemitted cmpsd predicate {p}"),
                    };
                    self.xmm0 = if r { u64::MAX } else { 0 };
                }
                Dec::Cvtsi2sd => self.xmm0 = ((self.rax as i64) as f64).to_bits(),
                Dec::MovqRaxXmm0 => self.rax = self.xmm0,
                Dec::Jcc { cc, rel } => {
                    let (a, b) = (self.cmp.0 as i64, self.cmp.1 as i64);
                    let taken = match cc {
                        0x84 => a == b,
                        0x85 => a != b,
                        0x8C => a < b,
                        0x8E => a <= b,
                        0x8F => a > b,
                        0x8D => a >= b,
                        c => panic!("unemitted jcc {c:#x}"),
                    };
                    if taken {
                        self.pc = (next as i64 + i64::from(rel)) as usize;
                        continue;
                    }
                }
                Dec::Jmp8 { opcode, rel } => {
                    let taken = match opcode {
                        0x75 => self.cmp.0 != self.cmp.1,
                        0x72 => self.cmp.0 < self.cmp.1,
                        0xEB => true,
                        c => panic!("unemitted short jump {c:#x}"),
                    };
                    if taken {
                        self.pc = (next as i64 + i64::from(rel)) as usize;
                        continue;
                    }
                }
                Dec::Jmp { rel } => {
                    self.pc = (next as i64 + i64::from(rel)) as usize;
                    continue;
                }
                Dec::Call { rel } => {
                    let target = (next as i64 + i64::from(rel)) as usize;
                    let callee = self
                        .em
                        .function_at(target as u32)
                        .unwrap_or_else(|| panic!("call into padding at {target:#x}"));
                    self.enter(callee, next)?;
                    continue;
                }
                Dec::Ret => match self.frames.pop() {
                    Some(frame) => {
                        self.pc = frame.ret_addr;
                        self.fidx = frame.caller;
                        // rbp is restored by the caller's `lea` epilogue.
                        continue;
                    }
                    None => return Ok(None),
                },
                Dec::Syscall => match self.eax {
                    abi::SVC_RAISE => {
                        let kind = abi::exception_from_tag(self.edi, self.rdx as i64)
                            .expect("emitted raise tag");
                        raise!(kind);
                    }
                    abi::SVC_NEWOBJ => {
                        let class = &self.em.classes[self.edi as usize];
                        let addr = self.mem.alloc(class.size.max(8));
                        self.mem
                            .write_u64(addr, u64::from(self.edi) + 1)
                            .expect("fresh allocation");
                        self.rax = addr;
                    }
                    abi::SVC_NEWARR => {
                        let l = self.read_slot(self.esi) as i64;
                        if l < 0 {
                            raise!(ExceptionKind::NegativeArraySize);
                        }
                        let addr = self.mem.alloc(16 + l as u64 * 8);
                        self.mem
                            .write_u64(addr, l as u64)
                            .expect("fresh allocation");
                        self.mem
                            .write_u64(addr + 8, u64::from(self.edi))
                            .expect("fresh allocation");
                        self.rax = addr;
                    }
                    abi::SVC_OBSERVE => {
                        let ty = abi::type_from_tag(self.edi).expect("emitted type tag");
                        let bits = self.read_slot(self.esi);
                        self.trace.push(from_bits(bits, ty));
                    }
                    abi::SVC_MATH => {
                        let op = abi::intrinsic_from_tag(self.edi).expect("emitted intrinsic");
                        let x = f64::from_bits(self.read_slot(self.esi));
                        self.rax = op.apply(x).to_bits();
                    }
                    abi::SVC_CVT_TO_INT => {
                        let x = f64::from_bits(self.read_slot(self.esi));
                        self.rax = (x as i64) as u64;
                    }
                    abi::SVC_FREM => {
                        let x = f64::from_bits(self.read_slot(self.edi));
                        let y = f64::from_bits(self.read_slot(self.esi));
                        self.rax = (x % y).to_bits();
                    }
                    abi::SVC_CALLV => {
                        let method = &self.em.method_names[self.edi as usize];
                        let tag = self.rdx;
                        let class = match tag {
                            0 => None,
                            t => self.em.classes.get((t - 1) as usize),
                        };
                        let callee = class.and_then(|c| {
                            c.methods
                                .binary_search_by_key(&self.edi, |(mid, _)| *mid)
                                .ok()
                                .map(|i| c.methods[i].1 as usize)
                        });
                        match callee {
                            Some(callee) => {
                                self.enter(callee, next)?;
                                continue;
                            }
                            None => {
                                return Err(MachineFault::BadDispatch {
                                    method: method.clone(),
                                })
                            }
                        }
                    }
                    id => panic!("unemitted service id {id}"),
                },
            }
            self.pc = next;
        }
    }

    fn fop(&mut self, f: impl Fn(f64, f64) -> f64) {
        self.xmm0 = f(f64::from_bits(self.xmm0), f64::from_bits(self.xmm1)).to_bits();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::emit_module;
    use njc_codegen::{lower_module, Machine};
    use njc_ir::{parse_function, Module};

    #[test]
    fn byte_machine_matches_simulator_on_demo() {
        let mut m = Module::new("demo");
        m.add_class("C", &[("x", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int v2: int\nbb0:\n  v0 = new class0\n  v1 = const 21\n  putfield v0, field0, v1\n  v2 = getfield v0, field0 [site]\n  v2 = add.int v2, v2\n  return v2\n}",
            )
            .unwrap(),
        );
        let mm = lower_module(&m);
        let platform = Platform::windows_ia32();
        let sim = Machine::new(&mm, platform).run("main").unwrap();
        let em = emit_module(&mm, 1);
        let out = ByteMachine::new(&em, platform).run("main").unwrap();
        assert_eq!(out.result, sim.result);
        assert_eq!(out.exception, sim.exception);
        assert_eq!(out.trace, sim.trace);
        assert_eq!(out.stats.traps_taken, sim.stats.traps_taken);
        assert_eq!(
            out.stats.explicit_null_checks,
            sim.stats.explicit_null_checks
        );
    }

    #[test]
    fn snapshot_mode_captures_frame_at_site_trap() {
        let mut m = Module::new("snapdemo");
        m.add_class("C", &[("x", Type::Int), ("y", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int v2: int\nbb0:\n  v0 = const null\n  v1 = const 41\n  v2 = getfield v0, field1 [site]\n  return v2\n}",
            )
            .unwrap(),
        );
        let mm = lower_module(&m);
        let em = emit_module(&mm, 1);
        let out = ByteMachine::new(&em, Platform::windows_ia32())
            .run_until_site_trap("main")
            .unwrap();
        let TrapOutcome::Trapped(snap) = out else {
            panic!("expected a site trap, got {out:?}");
        };
        assert_eq!(snap.function, "main");
        assert_eq!(snap.kind, njc_ir::AccessKind::Read);
        assert_eq!(snap.offset, Some(16), "field1 lives at byte offset 16");
        // Frame slot 1 holds r1 = 41; slot 0 holds the null base.
        assert_eq!(snap.frame[0], 0);
        assert_eq!(snap.frame[1], 41);
        // A program with no trapping site completes with the same outcome
        // run() produces.
        let mut m2 = Module::new("clean");
        m2.add_class("C", &[("x", Type::Int)]);
        m2.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int\nbb0:\n  v0 = new class0\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
            )
            .unwrap(),
        );
        let mm2 = lower_module(&m2);
        let em2 = emit_module(&mm2, 1);
        let done = ByteMachine::new(&em2, Platform::windows_ia32())
            .run_until_site_trap("main")
            .unwrap();
        let reference = ByteMachine::new(&em2, Platform::windows_ia32())
            .run("main")
            .unwrap();
        assert_eq!(done, TrapOutcome::Completed(reference));
    }

    #[test]
    fn trap_at_site_raises_npe_through_bytes() {
        let mut m = Module::new("trapdemo");
        m.add_class("C", &[("x", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int\nbb0:\n  v0 = const null\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
            )
            .unwrap(),
        );
        let mm = lower_module(&m);
        let em = emit_module(&mm, 1);
        let out = ByteMachine::new(&em, Platform::windows_ia32())
            .run("main")
            .unwrap();
        assert_eq!(out.exception, Some(ExceptionKind::NullPointer));
        assert_eq!(out.stats.traps_taken, 1);
    }
}
