//! A minimal ELF64 container for emitted modules.
//!
//! The object is a little-endian `ET_REL` for `EM_X86_64` with the
//! metadata the paper's runtime keeps beside the code as first-class
//! binary sections:
//!
//! | section         | contents                                          |
//! |-----------------|---------------------------------------------------|
//! | `.text`         | all function code, 16-aligned, `int3` padded      |
//! | `.njc.funcs`    | per-function layout (name, offset, length, frame) |
//! | `.njc.exctab`   | the exception-site table: byte offsets + provenance |
//! | `.njc.handlers` | handler byte ranges with catch filters            |
//! | `.njc.classes`  | allocation sizes and method-id dispatch tables    |
//!
//! [`parse_elf`] reads the sections back into an [`EmittedModule`], so the
//! binary verifier can run against the *artifact* rather than in-memory
//! state — closing the IR → bytes provenance chain. Writing is fully
//! deterministic: same module, same bytes.

use njc_ir::{AccessKind, CatchKind, CheckId};

use crate::abi;
use crate::encode::{BinHandler, BinSite, EmittedClass, EmittedFunction, EmittedModule};

const SECTION_NAMES: [&str; 7] = [
    "",
    ".text",
    ".njc.funcs",
    ".njc.exctab",
    ".njc.handlers",
    ".njc.classes",
    ".shstrtab",
];

struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }
}

fn funcs_section(em: &EmittedModule) -> Vec<u8> {
    let mut w = Writer { bytes: Vec::new() };
    w.u32(em.functions.len() as u32);
    for f in &em.functions {
        w.str(&f.name);
        w.u32(f.text_off);
        w.u32(f.text_len);
        w.u32(f.num_regs);
        w.u32(f.num_params);
        w.u8(f.ret.map_or(0, abi::type_tag) as u8);
    }
    w.bytes
}

fn exctab_section(em: &EmittedModule) -> Vec<u8> {
    let mut w = Writer { bytes: Vec::new() };
    let total: u32 = em.functions.iter().map(|f| f.sites.len() as u32).sum();
    w.u32(total);
    for (fi, f) in em.functions.iter().enumerate() {
        for s in &f.sites {
            w.u32(fi as u32);
            w.u32(s.byte_off);
            w.u32(s.check.0);
            w.u8(match s.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
            w.u8(u8::from(s.offset.is_some()));
            w.u64(s.offset.unwrap_or(0));
        }
    }
    w.bytes
}

fn handlers_section(em: &EmittedModule) -> Vec<u8> {
    let mut w = Writer { bytes: Vec::new() };
    let total: u32 = em.functions.iter().map(|f| f.handlers.len() as u32).sum();
    w.u32(total);
    for (fi, f) in em.functions.iter().enumerate() {
        for h in &f.handlers {
            w.u32(fi as u32);
            w.u32(h.start);
            w.u32(h.end);
            w.u32(h.handler);
            match h.catch {
                CatchKind::Any => {
                    w.u8(0);
                    w.u8(0);
                    w.u64(0);
                }
                CatchKind::Only(kind) => {
                    w.u8(1);
                    w.u8(abi::exception_tag(kind) as u8);
                    w.u64(kind.code() as u64);
                }
            }
            w.u32(h.code_slot.map_or(u32::MAX, |s| s));
        }
    }
    w.bytes
}

fn classes_section(em: &EmittedModule) -> Vec<u8> {
    let mut w = Writer { bytes: Vec::new() };
    w.u32(em.method_names.len() as u32);
    for name in &em.method_names {
        w.str(name);
    }
    w.u32(em.classes.len() as u32);
    for c in &em.classes {
        w.u64(c.size);
        w.u32(c.methods.len() as u32);
        for (mid, fidx) in &c.methods {
            w.u32(*mid);
            w.u32(*fidx);
        }
    }
    w.bytes
}

/// Serialises an emitted module as a deterministic ELF64 relocatable.
pub fn write_elf(em: &EmittedModule) -> Vec<u8> {
    let mut shstrtab = Vec::new();
    let mut name_offs = Vec::new();
    for name in SECTION_NAMES {
        name_offs.push(shstrtab.len() as u32);
        shstrtab.extend_from_slice(name.as_bytes());
        shstrtab.push(0);
    }
    let payloads: [Vec<u8>; 6] = [
        em.text.clone(),
        funcs_section(em),
        exctab_section(em),
        handlers_section(em),
        classes_section(em),
        shstrtab,
    ];

    let ehsize = 64u64;
    let shentsize = 64u64;
    let shnum = 7u64;
    let mut data_off = ehsize + shentsize * shnum;
    data_off = data_off.div_ceil(16) * 16;

    let mut w = Writer {
        bytes: Vec::with_capacity(data_off as usize),
    };
    // ELF header.
    w.bytes
        .extend_from_slice(&[0x7F, b'E', b'L', b'F', 2, 1, 1, 0]);
    w.bytes.extend_from_slice(&[0; 8]); // padding
    w.bytes.extend_from_slice(&1u16.to_le_bytes()); // e_type = ET_REL
    w.bytes.extend_from_slice(&0x3Eu16.to_le_bytes()); // e_machine = EM_X86_64
    w.u32(1); // e_version
    w.u64(0); // e_entry
    w.u64(0); // e_phoff
    w.u64(ehsize); // e_shoff
    w.u32(0); // e_flags
    w.bytes.extend_from_slice(&(ehsize as u16).to_le_bytes());
    w.bytes.extend_from_slice(&0u16.to_le_bytes()); // e_phentsize
    w.bytes.extend_from_slice(&0u16.to_le_bytes()); // e_phnum
    w.bytes.extend_from_slice(&(shentsize as u16).to_le_bytes());
    w.bytes.extend_from_slice(&(shnum as u16).to_le_bytes());
    w.bytes.extend_from_slice(&6u16.to_le_bytes()); // e_shstrndx

    // Section headers: the null section, then the six real ones laid out
    // back to back from `data_off`.
    let mut offsets = Vec::new();
    let mut cur = data_off;
    for p in &payloads {
        offsets.push(cur);
        cur += p.len() as u64;
    }
    // Null header.
    w.bytes.extend_from_slice(&[0u8; 64]);
    for (i, p) in payloads.iter().enumerate() {
        w.u32(name_offs[i + 1]); // sh_name
        w.u32(if i + 1 == 6 { 3 } else { 1 }); // SHT_STRTAB / SHT_PROGBITS
        w.u64(if i == 0 { 6 } else { 0 }); // .text: ALLOC|EXECINSTR
        w.u64(0); // sh_addr
        w.u64(offsets[i]); // sh_offset
        w.u64(p.len() as u64); // sh_size
        w.u32(0); // sh_link
        w.u32(0); // sh_info
        w.u64(if i == 0 { 16 } else { 1 }); // sh_addralign
        w.u64(0); // sh_entsize
    }
    while (w.bytes.len() as u64) < data_off {
        w.u8(0);
    }
    for p in &payloads {
        w.bytes.extend_from_slice(p);
    }
    w.bytes
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, String> {
        let v = *self.bytes.get(self.at).ok_or("truncated section")?;
        self.at += 1;
        Ok(v)
    }
    fn u32(&mut self) -> Result<u32, String> {
        let s = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or("truncated section")?;
        self.at += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        let s = self
            .bytes
            .get(self.at..self.at + 8)
            .ok_or("truncated section")?;
        self.at += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let s = self
            .bytes
            .get(self.at..self.at + len)
            .ok_or("truncated string")?;
        self.at += len;
        String::from_utf8(s.to_vec()).map_err(|_| "non-utf8 name".to_string())
    }
}

fn section(elf: &[u8], index: usize) -> Result<&[u8], String> {
    let shoff = u64::from_le_bytes(
        elf.get(0x28..0x30)
            .ok_or("truncated header")?
            .try_into()
            .unwrap(),
    ) as usize;
    let hdr = shoff + index * 64;
    let off = u64::from_le_bytes(
        elf.get(hdr + 24..hdr + 32)
            .ok_or("truncated section header")?
            .try_into()
            .unwrap(),
    ) as usize;
    let size = u64::from_le_bytes(
        elf.get(hdr + 32..hdr + 40)
            .ok_or("truncated section header")?
            .try_into()
            .unwrap(),
    ) as usize;
    elf.get(off..off + size)
        .ok_or_else(|| "section out of bounds".to_string())
}

/// Parses an ELF produced by [`write_elf`] back into an
/// [`EmittedModule`].
///
/// # Errors
/// A description of the first malformation found.
pub fn parse_elf(elf: &[u8]) -> Result<EmittedModule, String> {
    if elf.get(..4) != Some(&[0x7F, b'E', b'L', b'F']) {
        return Err("not an ELF object".to_string());
    }
    if elf.get(4).copied() != Some(2) || elf.get(5).copied() != Some(1) {
        return Err("not a little-endian ELF64".to_string());
    }
    let text = section(elf, 1)?.to_vec();

    let mut r = Reader {
        bytes: section(elf, 2)?,
        at: 0,
    };
    let nfuncs = r.u32()? as usize;
    let mut functions = Vec::with_capacity(nfuncs);
    for _ in 0..nfuncs {
        let name = r.str()?;
        let text_off = r.u32()?;
        let text_len = r.u32()?;
        let num_regs = r.u32()?;
        let num_params = r.u32()?;
        let ret = match r.u8()? {
            0 => None,
            t => Some(abi::type_from_tag(u32::from(t)).ok_or("bad return type tag")?),
        };
        if (text_off as usize) + (text_len as usize) > text.len() {
            return Err(format!("function `{name}` extends past .text"));
        }
        functions.push(EmittedFunction {
            name,
            text_off,
            text_len,
            num_regs,
            num_params,
            ret,
            sites: Vec::new(),
            handlers: Vec::new(),
        });
    }

    let mut r = Reader {
        bytes: section(elf, 3)?,
        at: 0,
    };
    let nsites = r.u32()?;
    for _ in 0..nsites {
        let fi = r.u32()? as usize;
        let byte_off = r.u32()?;
        let check = CheckId(r.u32()?);
        let kind = match r.u8()? {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            _ => return Err("bad access kind tag".to_string()),
        };
        let has_off = r.u8()? != 0;
        let off = r.u64()?;
        functions
            .get_mut(fi)
            .ok_or("site references unknown function")?
            .sites
            .push(BinSite {
                byte_off,
                check,
                kind,
                offset: has_off.then_some(off),
            });
    }

    let mut r = Reader {
        bytes: section(elf, 4)?,
        at: 0,
    };
    let nhandlers = r.u32()?;
    for _ in 0..nhandlers {
        let fi = r.u32()? as usize;
        let start = r.u32()?;
        let end = r.u32()?;
        let handler = r.u32()?;
        let catch = match r.u8()? {
            0 => {
                r.u8()?;
                r.u64()?;
                CatchKind::Any
            }
            1 => {
                let tag = u32::from(r.u8()?);
                let code = r.u64()? as i64;
                CatchKind::Only(abi::exception_from_tag(tag, code).ok_or("bad exception tag")?)
            }
            _ => return Err("bad catch tag".to_string()),
        };
        let code_slot = match r.u32()? {
            u32::MAX => None,
            s => Some(s),
        };
        functions
            .get_mut(fi)
            .ok_or("handler references unknown function")?
            .handlers
            .push(BinHandler {
                start,
                end,
                catch,
                handler,
                code_slot,
            });
    }

    let mut r = Reader {
        bytes: section(elf, 5)?,
        at: 0,
    };
    let nnames = r.u32()? as usize;
    let mut method_names = Vec::with_capacity(nnames);
    for _ in 0..nnames {
        method_names.push(r.str()?);
    }
    let nclasses = r.u32()? as usize;
    let mut classes = Vec::with_capacity(nclasses);
    for _ in 0..nclasses {
        let size = r.u64()?;
        let nmethods = r.u32()? as usize;
        let mut methods = Vec::with_capacity(nmethods);
        for _ in 0..nmethods {
            let mid = r.u32()?;
            let fidx = r.u32()?;
            if mid as usize >= method_names.len() || fidx as usize >= functions.len() {
                return Err("method table references unknown id".to_string());
            }
            methods.push((mid, fidx));
        }
        classes.push(EmittedClass { size, methods });
    }

    Ok(EmittedModule {
        text,
        functions,
        classes,
        method_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::emit_module;
    use njc_codegen::lower_module;
    use njc_ir::{parse_function, Module, Type};

    fn demo() -> EmittedModule {
        let mut m = Module::new("demo");
        m.add_class("C", &[("x", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int\nbb0:\n  v0 = new class0\n  v1 = const 5\n  putfield v0, field0, v1 [site]\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
            )
            .unwrap(),
        );
        emit_module(&lower_module(&m), 1)
    }

    #[test]
    fn elf_round_trips() {
        let em = demo();
        let elf = write_elf(&em);
        let back = parse_elf(&elf).unwrap();
        assert_eq!(em, back);
    }

    #[test]
    fn elf_is_deterministic() {
        let em = demo();
        assert_eq!(write_elf(&em), write_elf(&em));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_elf(b"not an elf").is_err());
        let mut elf = write_elf(&demo());
        elf[4] = 1; // claim ELF32
        assert!(parse_elf(&elf).is_err());
    }
}
