//! The emitted-code ABI: register roles, frame model, and the runtime
//! service interface.
//!
//! The encoder targets a deliberately small calling convention so that the
//! decoder (and hence the verifier) can reason about every byte:
//!
//! * every virtual register `r{i}` lives in the frame slot `[rbp + 8*i]`
//!   (the frame pointer is a slot cursor into an upward-growing stack, not
//!   the hardware stack);
//! * scratch registers are `rax`/`rcx`/`rdx` and `xmm0`/`xmm1`; no value
//!   lives in a scratch register across a virtual instruction boundary;
//! * calls advance `rbp` by the caller's frame size (`lea rbp, [rbp+8*n]`),
//!   stage arguments directly into the callee's slots, and restore on
//!   return — so unwinding only needs the per-call frame size;
//! * everything the hardware cannot do alone (allocation, dispatch,
//!   exception raising, math library calls) is a `syscall` with the
//!   service id in `eax` and operands in `edi`/`esi`/`rdx`.

use njc_ir::{ExceptionKind, Intrinsic, Type};

/// Service id (`eax` at `syscall`): raise the exception whose tag is in
/// `edi` (and, for [`EXC_TAG_USER`], whose code is in `rdx`).
pub const SVC_RAISE: u32 = 1;
/// Service id: allocate the class whose index is in `edi`; address → `rax`.
pub const SVC_NEWOBJ: u32 = 2;
/// Service id: allocate an array — element tag in `edi`, length slot in
/// `esi`; address → `rax`. Raises `NegativeArraySize` on a negative length.
pub const SVC_NEWARR: u32 = 3;
/// Service id: observe the slot in `esi` with the type tag in `edi`.
pub const SVC_OBSERVE: u32 = 4;
/// Service id: math intrinsic `edi` over the slot in `esi`; bits → `rax`.
pub const SVC_MATH: u32 = 5;
/// Service id: float→int conversion of the slot in `esi` with Java/Rust
/// `as` saturation semantics; bits → `rax`.
pub const SVC_CVT_TO_INT: u32 = 6;
/// Service id: float remainder of slots `edi` and `esi`; bits → `rax`.
pub const SVC_FREM: u32 = 7;
/// Service id: virtual dispatch — method id in `edi`, receiver class tag
/// in `rdx` (loaded by the preceding header access, which is the trapping
/// instruction). The runtime performs the call; return bits → `rax`.
pub const SVC_CALLV: u32 = 8;

/// Exception tag for [`SVC_RAISE`]: `NullPointerException`.
pub const EXC_TAG_NPE: u32 = 0;
/// Exception tag: `ArrayIndexOutOfBoundsException`.
pub const EXC_TAG_BOUNDS: u32 = 1;
/// Exception tag: `ArithmeticException`.
pub const EXC_TAG_ARITH: u32 = 2;
/// Exception tag: `NegativeArraySizeException`.
pub const EXC_TAG_NEGSIZE: u32 = 3;
/// Exception tag: user exception (code in `rdx`).
pub const EXC_TAG_USER: u32 = 4;

/// The raise tag for an exception kind (the user code travels in `rdx`).
pub fn exception_tag(kind: ExceptionKind) -> u32 {
    match kind {
        ExceptionKind::NullPointer => EXC_TAG_NPE,
        ExceptionKind::ArrayIndex => EXC_TAG_BOUNDS,
        ExceptionKind::Arithmetic => EXC_TAG_ARITH,
        ExceptionKind::NegativeArraySize => EXC_TAG_NEGSIZE,
        ExceptionKind::User(_) => EXC_TAG_USER,
    }
}

/// Reconstructs an exception kind from a raise tag and the `rdx` code.
pub fn exception_from_tag(tag: u32, code: i64) -> Option<ExceptionKind> {
    Some(match tag {
        EXC_TAG_NPE => ExceptionKind::NullPointer,
        EXC_TAG_BOUNDS => ExceptionKind::ArrayIndex,
        EXC_TAG_ARITH => ExceptionKind::Arithmetic,
        EXC_TAG_NEGSIZE => ExceptionKind::NegativeArraySize,
        EXC_TAG_USER => ExceptionKind::User(code),
        _ => return None,
    })
}

/// The numeric tag for a type (array element headers, observe calls).
pub fn type_tag(ty: Type) -> u32 {
    match ty {
        Type::Int => 1,
        Type::Float => 2,
        Type::Ref => 3,
    }
}

/// Inverse of [`type_tag`].
pub fn type_from_tag(tag: u32) -> Option<Type> {
    Some(match tag {
        1 => Type::Int,
        2 => Type::Float,
        3 => Type::Ref,
        _ => return None,
    })
}

/// The numeric tag for a math intrinsic.
pub fn intrinsic_tag(op: Intrinsic) -> u32 {
    match op {
        Intrinsic::Exp => 0,
        Intrinsic::Sqrt => 1,
        Intrinsic::Sin => 2,
        Intrinsic::Cos => 3,
        Intrinsic::Abs => 4,
        Intrinsic::Log => 5,
    }
}

/// Inverse of [`intrinsic_tag`].
pub fn intrinsic_from_tag(tag: u32) -> Option<Intrinsic> {
    Some(match tag {
        0 => Intrinsic::Exp,
        1 => Intrinsic::Sqrt,
        2 => Intrinsic::Sin,
        3 => Intrinsic::Cos,
        4 => Intrinsic::Abs,
        5 => Intrinsic::Log,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for kind in [
            ExceptionKind::NullPointer,
            ExceptionKind::ArrayIndex,
            ExceptionKind::Arithmetic,
            ExceptionKind::NegativeArraySize,
            ExceptionKind::User(-77),
        ] {
            assert_eq!(
                exception_from_tag(exception_tag(kind), kind.code()),
                Some(kind)
            );
        }
        for ty in [Type::Int, Type::Float, Type::Ref] {
            assert_eq!(type_from_tag(type_tag(ty)), Some(ty));
        }
        for op in [
            Intrinsic::Exp,
            Intrinsic::Sqrt,
            Intrinsic::Sin,
            Intrinsic::Cos,
            Intrinsic::Abs,
            Intrinsic::Log,
        ] {
            assert_eq!(intrinsic_from_tag(intrinsic_tag(op)), Some(op));
        }
        assert_eq!(exception_from_tag(99, 0), None);
        assert_eq!(type_from_tag(0), None);
        assert_eq!(intrinsic_from_tag(6), None);
    }
}
