//! A decoder for exactly the x86-64 subset [`crate::encode`] emits.
//!
//! The verifier and the byte-level interpreter both run on decoded
//! instructions, so the encoder's output is *proven* self-describing: the
//! round-trip test re-encodes every decoded instruction and demands the
//! original bytes back ([`Dec::encode`]).

use std::fmt;

/// Scratch general-purpose registers the encoder uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scratch {
    /// `rax` (ModRM reg 0).
    Rax,
    /// `rcx` (ModRM reg 1).
    Rcx,
    /// `rdx` (ModRM reg 2).
    Rdx,
}

impl Scratch {
    fn from_modrm(reg: u8) -> Option<Scratch> {
        Some(match reg {
            0 => Scratch::Rax,
            1 => Scratch::Rcx,
            2 => Scratch::Rdx,
            _ => return None,
        })
    }

    fn modrm(self) -> u8 {
        self as u8
    }
}

/// The 32-bit immediate destinations the encoder uses for service calls.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Imm32Reg {
    /// `eax` — the service id.
    Eax,
    /// `edi` — first service operand.
    Edi,
    /// `esi` — second service operand.
    Esi,
}

/// One decoded instruction from the emitted subset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dec {
    /// `mov r64, [rbp + 8*slot]` — a frame slot load.
    LoadSlot {
        /// Destination scratch register.
        reg: Scratch,
        /// Frame slot index.
        slot: u32,
    },
    /// `mov [rbp + 8*slot], r64` — a frame slot store.
    StoreSlot {
        /// Frame slot index.
        slot: u32,
        /// Source scratch register.
        reg: Scratch,
    },
    /// `mov rdx, [rax (+ rcx*8) + disp32]` — a heap load; **the trapping
    /// instruction** implicit null checks resolve to.
    LoadMem {
        /// Byte displacement.
        disp: u32,
        /// Whether the address adds `rcx*8`.
        indexed: bool,
    },
    /// `mov [rax (+ rcx*8) + disp32], rdx` — a heap store.
    StoreMem {
        /// Byte displacement.
        disp: u32,
        /// Whether the address adds `rcx*8`.
        indexed: bool,
    },
    /// `movabs r64, imm64`.
    MovAbs {
        /// Destination.
        reg: Scratch,
        /// The immediate bits.
        imm: u64,
    },
    /// `mov e{ax,di,si}, imm32`.
    MovImm32 {
        /// Destination.
        reg: Imm32Reg,
        /// The immediate.
        imm: u32,
    },
    /// `add rax, rcx`.
    AddRcx,
    /// `add rax, rdx` (large-displacement address folding).
    AddRdx,
    /// `sub rax, rcx`.
    SubRcx,
    /// `imul rax, rcx`.
    MulRcx,
    /// `and rax, rcx`.
    AndRcx,
    /// `or rax, rcx`.
    OrRcx,
    /// `xor rax, rcx`.
    XorRcx,
    /// `xor rax, rax` (zeroing idiom).
    XorSelf,
    /// `xor rax, rdx` (float sign flip).
    XorRdx,
    /// `shl rax, cl`.
    ShlCl,
    /// `sar rax, cl`.
    SarCl,
    /// `shr rax, cl`.
    ShrCl,
    /// `neg rax`.
    NegRax,
    /// `cqo`.
    Cqo,
    /// `idiv rcx`.
    IdivRcx,
    /// `mov rax, rdx`.
    MovRaxRdx,
    /// `test rax, rax` — the explicit null check fingerprint.
    TestRax,
    /// `test rcx, rcx` — the division zero-divisor guard.
    TestRcx,
    /// `cmp rax, rcx`.
    CmpRaxRcx,
    /// `cmp rax, rdx`.
    CmpRaxRdx,
    /// `cmp rcx, -1`.
    CmpRcxM1,
    /// `and rax, 1`.
    AndRax1,
    /// `lea rbp, [rbp + disp32]` — frame push/pop around calls.
    LeaRbp {
        /// Signed frame displacement in bytes.
        disp: i32,
    },
    /// `movsd xmm0/xmm1, [rbp + 8*slot]`.
    MovsdLoad {
        /// 0 or 1.
        xmm: u8,
        /// Frame slot index.
        slot: u32,
    },
    /// `movsd [rbp + 8*slot], xmm0`.
    MovsdStore {
        /// Frame slot index.
        slot: u32,
    },
    /// `addsd xmm0, xmm1`.
    Addsd,
    /// `subsd xmm0, xmm1`.
    Subsd,
    /// `mulsd xmm0, xmm1`.
    Mulsd,
    /// `divsd xmm0, xmm1`.
    Divsd,
    /// `cmpsd xmm0, xmm1, pred`.
    Cmpsd {
        /// SSE compare predicate (0 eq, 1 lt, 2 le, 4 neq).
        pred: u8,
    },
    /// `cvtsi2sd xmm0, rax`.
    Cvtsi2sd,
    /// `movq rax, xmm0`.
    MovqRaxXmm0,
    /// `jcc rel32` (0F 84..8F).
    Jcc {
        /// Second opcode byte (0x84..=0x8F).
        cc: u8,
        /// Relative displacement from the next instruction.
        rel: i32,
    },
    /// `jnz/jb/jmp rel8` (intra-sequence skips).
    Jmp8 {
        /// Opcode byte (0x75 jnz, 0x72 jb, 0xEB jmp).
        opcode: u8,
        /// Relative displacement from the next instruction.
        rel: i8,
    },
    /// `jmp rel32`.
    Jmp {
        /// Relative displacement from the next instruction.
        rel: i32,
    },
    /// `call rel32`.
    Call {
        /// Relative displacement from the next instruction.
        rel: i32,
    },
    /// `ret`.
    Ret,
    /// `syscall` — a runtime service request.
    Syscall,
    /// `int3` — inter-function padding.
    Pad,
}

/// A byte sequence the decoder does not recognise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// Offset of the undecodable instruction.
    pub pos: usize,
    /// Its first byte.
    pub byte: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "undecodable byte {:#04x} at offset {:#x}",
            self.byte, self.pos
        )
    }
}

impl std::error::Error for DecodeError {}

fn rd_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn rd_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn slot_of(disp: u32) -> Option<u32> {
    disp.is_multiple_of(8).then_some(disp / 8)
}

/// Decodes one instruction at `pos`, returning it with its byte length.
///
/// # Errors
/// [`DecodeError`] when the bytes are not in the emitted subset.
#[allow(clippy::too_many_lines)]
pub fn decode_one(bytes: &[u8], pos: usize) -> Result<(Dec, usize), DecodeError> {
    let err = DecodeError {
        pos,
        byte: bytes.get(pos).copied().unwrap_or(0),
    };
    let b = bytes.get(pos..).ok_or(err)?;
    let (dec, len) = match *b.first().ok_or(err)? {
        0xCC => (Dec::Pad, 1),
        0xC3 => (Dec::Ret, 1),
        0xE9 => (
            Dec::Jmp {
                rel: rd_u32(b, 1).ok_or(err)? as i32,
            },
            5,
        ),
        0xE8 => (
            Dec::Call {
                rel: rd_u32(b, 1).ok_or(err)? as i32,
            },
            5,
        ),
        op @ (0x75 | 0x72 | 0xEB) => (
            Dec::Jmp8 {
                opcode: op,
                rel: *b.get(1).ok_or(err)? as i8,
            },
            2,
        ),
        0xB8 => (
            Dec::MovImm32 {
                reg: Imm32Reg::Eax,
                imm: rd_u32(b, 1).ok_or(err)?,
            },
            5,
        ),
        0xBF => (
            Dec::MovImm32 {
                reg: Imm32Reg::Edi,
                imm: rd_u32(b, 1).ok_or(err)?,
            },
            5,
        ),
        0xBE => (
            Dec::MovImm32 {
                reg: Imm32Reg::Esi,
                imm: rd_u32(b, 1).ok_or(err)?,
            },
            5,
        ),
        0x0F => match *b.get(1).ok_or(err)? {
            0x05 => (Dec::Syscall, 2),
            cc @ 0x84..=0x8F => (
                Dec::Jcc {
                    cc,
                    rel: rd_u32(b, 2).ok_or(err)? as i32,
                },
                6,
            ),
            _ => return Err(err),
        },
        0x66 => match b.get(1..5).ok_or(err)? {
            [0x48, 0x0F, 0x7E, 0xC0] => (Dec::MovqRaxXmm0, 5),
            _ => return Err(err),
        },
        0xF2 => match *b.get(1).ok_or(err)? {
            0x48 => match b.get(2..5).ok_or(err)? {
                [0x0F, 0x2A, 0xC0] => (Dec::Cvtsi2sd, 5),
                _ => return Err(err),
            },
            0x0F => match *b.get(2).ok_or(err)? {
                0x10 => {
                    let modrm = *b.get(3).ok_or(err)?;
                    let xmm = (modrm >> 3) & 0x7;
                    if modrm & 0xC7 != 0x85 || xmm > 1 {
                        return Err(err);
                    }
                    let slot = slot_of(rd_u32(b, 4).ok_or(err)?).ok_or(err)?;
                    (Dec::MovsdLoad { xmm, slot }, 8)
                }
                0x11 => {
                    if *b.get(3).ok_or(err)? != 0x85 {
                        return Err(err);
                    }
                    let slot = slot_of(rd_u32(b, 4).ok_or(err)?).ok_or(err)?;
                    (Dec::MovsdStore { slot }, 8)
                }
                0x58 if *b.get(3).ok_or(err)? == 0xC1 => (Dec::Addsd, 4),
                0x5C if *b.get(3).ok_or(err)? == 0xC1 => (Dec::Subsd, 4),
                0x59 if *b.get(3).ok_or(err)? == 0xC1 => (Dec::Mulsd, 4),
                0x5E if *b.get(3).ok_or(err)? == 0xC1 => (Dec::Divsd, 4),
                0xC2 if *b.get(3).ok_or(err)? == 0xC1 => (
                    Dec::Cmpsd {
                        pred: *b.get(4).ok_or(err)?,
                    },
                    5,
                ),
                _ => return Err(err),
            },
            _ => return Err(err),
        },
        0x48 => match *b.get(1).ok_or(err)? {
            0x8B => {
                let modrm = *b.get(2).ok_or(err)?;
                match modrm {
                    // mov r64, [rbp + disp32]
                    0x85 | 0x8D | 0x95 => {
                        let reg = Scratch::from_modrm((modrm >> 3) & 0x7).ok_or(err)?;
                        let slot = slot_of(rd_u32(b, 3).ok_or(err)?).ok_or(err)?;
                        (Dec::LoadSlot { reg, slot }, 7)
                    }
                    // mov rdx, [rax + disp32]
                    0x90 => (
                        Dec::LoadMem {
                            disp: rd_u32(b, 3).ok_or(err)?,
                            indexed: false,
                        },
                        7,
                    ),
                    // mov rdx, [rax + rcx*8 + disp32]
                    0x94 if *b.get(3).ok_or(err)? == 0xC8 => (
                        Dec::LoadMem {
                            disp: rd_u32(b, 4).ok_or(err)?,
                            indexed: true,
                        },
                        8,
                    ),
                    _ => return Err(err),
                }
            }
            0x89 => {
                let modrm = *b.get(2).ok_or(err)?;
                match modrm {
                    0x85 | 0x8D | 0x95 => {
                        let reg = Scratch::from_modrm((modrm >> 3) & 0x7).ok_or(err)?;
                        let slot = slot_of(rd_u32(b, 3).ok_or(err)?).ok_or(err)?;
                        (Dec::StoreSlot { slot, reg }, 7)
                    }
                    0x90 => (
                        Dec::StoreMem {
                            disp: rd_u32(b, 3).ok_or(err)?,
                            indexed: false,
                        },
                        7,
                    ),
                    0x94 if *b.get(3).ok_or(err)? == 0xC8 => (
                        Dec::StoreMem {
                            disp: rd_u32(b, 4).ok_or(err)?,
                            indexed: true,
                        },
                        8,
                    ),
                    0xD0 => (Dec::MovRaxRdx, 3),
                    _ => return Err(err),
                }
            }
            op @ 0xB8..=0xBA => (
                Dec::MovAbs {
                    reg: Scratch::from_modrm(op - 0xB8).ok_or(err)?,
                    imm: rd_u64(b, 2).ok_or(err)?,
                },
                10,
            ),
            0x01 => match *b.get(2).ok_or(err)? {
                0xC8 => (Dec::AddRcx, 3),
                0xD0 => (Dec::AddRdx, 3),
                _ => return Err(err),
            },
            0x29 if *b.get(2).ok_or(err)? == 0xC8 => (Dec::SubRcx, 3),
            0x21 if *b.get(2).ok_or(err)? == 0xC8 => (Dec::AndRcx, 3),
            0x09 if *b.get(2).ok_or(err)? == 0xC8 => (Dec::OrRcx, 3),
            0x31 => match *b.get(2).ok_or(err)? {
                0xC8 => (Dec::XorRcx, 3),
                0xC0 => (Dec::XorSelf, 3),
                0xD0 => (Dec::XorRdx, 3),
                _ => return Err(err),
            },
            0x0F => match b.get(2..4).ok_or(err)? {
                [0xAF, 0xC1] => (Dec::MulRcx, 4),
                _ => return Err(err),
            },
            0xD3 => match *b.get(2).ok_or(err)? {
                0xE0 => (Dec::ShlCl, 3),
                0xF8 => (Dec::SarCl, 3),
                0xE8 => (Dec::ShrCl, 3),
                _ => return Err(err),
            },
            0xF7 => match *b.get(2).ok_or(err)? {
                0xD8 => (Dec::NegRax, 3),
                0xF9 => (Dec::IdivRcx, 3),
                _ => return Err(err),
            },
            0x99 => (Dec::Cqo, 2),
            0x85 => match *b.get(2).ok_or(err)? {
                0xC0 => (Dec::TestRax, 3),
                0xC9 => (Dec::TestRcx, 3),
                _ => return Err(err),
            },
            0x39 => match *b.get(2).ok_or(err)? {
                0xC8 => (Dec::CmpRaxRcx, 3),
                0xD0 => (Dec::CmpRaxRdx, 3),
                _ => return Err(err),
            },
            0x83 => match b.get(2..4).ok_or(err)? {
                [0xF9, 0xFF] => (Dec::CmpRcxM1, 4),
                [0xE0, 0x01] => (Dec::AndRax1, 4),
                _ => return Err(err),
            },
            0x8D if *b.get(2).ok_or(err)? == 0xAD => (
                Dec::LeaRbp {
                    disp: rd_u32(b, 3).ok_or(err)? as i32,
                },
                7,
            ),
            _ => return Err(err),
        },
        _ => return Err(err),
    };
    Ok((dec, len))
}

impl Dec {
    /// Re-encodes the instruction, appending to `out`. The round-trip
    /// property `encode(decode(bytes)) == bytes` is what makes the decoder
    /// trustworthy as a verification oracle.
    #[allow(clippy::too_many_lines)]
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Dec::Pad => out.push(0xCC),
            Dec::Ret => out.push(0xC3),
            Dec::Syscall => out.extend_from_slice(&[0x0F, 0x05]),
            Dec::Jmp { rel } => {
                out.push(0xE9);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Dec::Call { rel } => {
                out.push(0xE8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Dec::Jcc { cc, rel } => {
                out.extend_from_slice(&[0x0F, cc]);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Dec::Jmp8 { opcode, rel } => out.extend_from_slice(&[opcode, rel as u8]),
            Dec::MovImm32 { reg, imm } => {
                out.push(match reg {
                    Imm32Reg::Eax => 0xB8,
                    Imm32Reg::Edi => 0xBF,
                    Imm32Reg::Esi => 0xBE,
                });
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Dec::MovAbs { reg, imm } => {
                out.extend_from_slice(&[0x48, 0xB8 + reg.modrm()]);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Dec::LoadSlot { reg, slot } => {
                out.extend_from_slice(&[0x48, 0x8B, 0x80 | (reg.modrm() << 3) | 0x05]);
                out.extend_from_slice(&(slot * 8).to_le_bytes());
            }
            Dec::StoreSlot { slot, reg } => {
                out.extend_from_slice(&[0x48, 0x89, 0x80 | (reg.modrm() << 3) | 0x05]);
                out.extend_from_slice(&(slot * 8).to_le_bytes());
            }
            Dec::LoadMem { disp, indexed } => {
                if indexed {
                    out.extend_from_slice(&[0x48, 0x8B, 0x94, 0xC8]);
                } else {
                    out.extend_from_slice(&[0x48, 0x8B, 0x90]);
                }
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Dec::StoreMem { disp, indexed } => {
                if indexed {
                    out.extend_from_slice(&[0x48, 0x89, 0x94, 0xC8]);
                } else {
                    out.extend_from_slice(&[0x48, 0x89, 0x90]);
                }
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Dec::AddRcx => out.extend_from_slice(&[0x48, 0x01, 0xC8]),
            Dec::AddRdx => out.extend_from_slice(&[0x48, 0x01, 0xD0]),
            Dec::SubRcx => out.extend_from_slice(&[0x48, 0x29, 0xC8]),
            Dec::MulRcx => out.extend_from_slice(&[0x48, 0x0F, 0xAF, 0xC1]),
            Dec::AndRcx => out.extend_from_slice(&[0x48, 0x21, 0xC8]),
            Dec::OrRcx => out.extend_from_slice(&[0x48, 0x09, 0xC8]),
            Dec::XorRcx => out.extend_from_slice(&[0x48, 0x31, 0xC8]),
            Dec::XorSelf => out.extend_from_slice(&[0x48, 0x31, 0xC0]),
            Dec::XorRdx => out.extend_from_slice(&[0x48, 0x31, 0xD0]),
            Dec::ShlCl => out.extend_from_slice(&[0x48, 0xD3, 0xE0]),
            Dec::SarCl => out.extend_from_slice(&[0x48, 0xD3, 0xF8]),
            Dec::ShrCl => out.extend_from_slice(&[0x48, 0xD3, 0xE8]),
            Dec::NegRax => out.extend_from_slice(&[0x48, 0xF7, 0xD8]),
            Dec::Cqo => out.extend_from_slice(&[0x48, 0x99]),
            Dec::IdivRcx => out.extend_from_slice(&[0x48, 0xF7, 0xF9]),
            Dec::MovRaxRdx => out.extend_from_slice(&[0x48, 0x89, 0xD0]),
            Dec::TestRax => out.extend_from_slice(&[0x48, 0x85, 0xC0]),
            Dec::TestRcx => out.extend_from_slice(&[0x48, 0x85, 0xC9]),
            Dec::CmpRaxRcx => out.extend_from_slice(&[0x48, 0x39, 0xC8]),
            Dec::CmpRaxRdx => out.extend_from_slice(&[0x48, 0x39, 0xD0]),
            Dec::CmpRcxM1 => out.extend_from_slice(&[0x48, 0x83, 0xF9, 0xFF]),
            Dec::AndRax1 => out.extend_from_slice(&[0x48, 0x83, 0xE0, 0x01]),
            Dec::LeaRbp { disp } => {
                out.extend_from_slice(&[0x48, 0x8D, 0xAD]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Dec::MovsdLoad { xmm, slot } => {
                out.extend_from_slice(&[0xF2, 0x0F, 0x10, 0x80 | (xmm << 3) | 0x05]);
                out.extend_from_slice(&(slot * 8).to_le_bytes());
            }
            Dec::MovsdStore { slot } => {
                out.extend_from_slice(&[0xF2, 0x0F, 0x11, 0x85]);
                out.extend_from_slice(&(slot * 8).to_le_bytes());
            }
            Dec::Addsd => out.extend_from_slice(&[0xF2, 0x0F, 0x58, 0xC1]),
            Dec::Subsd => out.extend_from_slice(&[0xF2, 0x0F, 0x5C, 0xC1]),
            Dec::Mulsd => out.extend_from_slice(&[0xF2, 0x0F, 0x59, 0xC1]),
            Dec::Divsd => out.extend_from_slice(&[0xF2, 0x0F, 0x5E, 0xC1]),
            Dec::Cmpsd { pred } => out.extend_from_slice(&[0xF2, 0x0F, 0xC2, 0xC1, pred]),
            Dec::Cvtsi2sd => out.extend_from_slice(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]),
            Dec::MovqRaxXmm0 => out.extend_from_slice(&[0x66, 0x48, 0x0F, 0x7E, 0xC0]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_rejects_unknown_bytes() {
        assert!(decode_one(&[0x90], 0).is_err()); // plain nop: not emitted
        assert!(decode_one(&[0x48, 0xFF, 0xC0], 0).is_err()); // inc rax
        assert!(decode_one(&[], 0).is_err());
        let err = decode_one(&[0xCC, 0x90], 1).unwrap_err();
        assert_eq!(err.pos, 1);
        assert_eq!(err.byte, 0x90);
    }

    #[test]
    fn slot_displacements_must_be_slot_aligned() {
        // mov rax, [rbp + 12] — not a multiple of 8, outside the subset.
        let bytes = [0x48, 0x8B, 0x85, 12, 0, 0, 0];
        assert!(decode_one(&bytes, 0).is_err());
    }
}
