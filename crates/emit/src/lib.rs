//! # njc-emit — native x86-64 emission and binary verification
//!
//! The rest of the workspace stops at the linear virtual ISA of
//! [`njc_codegen::isa`]. This crate completes the paper's story at the
//! byte level:
//!
//! * [`encode`] lowers each [`njc_codegen::MachineFunction`] to real
//!   x86-64 machine bytes. Implicit null checks still emit **no code**;
//!   what they leave behind is a *byte offset* of the faulting memory
//!   access, carried into the binary exception-site table with its
//!   [`njc_codegen::SiteInfo`] provenance (check id, access kind, static
//!   offset). Emission fans out per function with `std::thread::scope`
//!   and merges in function order, so the bytes are identical at any
//!   thread count.
//! * [`elf`] wraps the text in a minimal ELF64 relocatable with the
//!   exception-site table and handler ranges as first-class binary
//!   sections (`.njc.exctab`, `.njc.handlers`) — the artifact a real
//!   runtime would map and consult from its `SIGSEGV` handler.
//! * [`decode`] is a decoder for exactly the subset the encoder emits,
//!   shared by the verifier and the byte-level interpreter.
//! * [`verify`] is the parallel binary verifier: it re-derives the
//!   instruction stream from the bytes and proves, per function, that
//!   (a) every exception-site entry points at a memory access that can
//!   genuinely fault on the null page under the platform trap model,
//!   (b) no eliminated check left a residual compare-and-branch guarding
//!   its access, and (c) handler ranges are well-formed and nest.
//! * [`interp`] executes the emitted bytes directly over the guarded
//!   memory — the encoder-faithful referee the difftest harness replays
//!   fixtures through against the costed machine simulator.

pub mod abi;
pub mod decode;
pub mod elf;
pub mod encode;
pub mod interp;
pub mod verify;

pub use decode::{decode_one, Dec, DecodeError};
pub use elf::{parse_elf, write_elf};
pub use encode::{emit_module, BinHandler, BinSite, EmittedClass, EmittedFunction, EmittedModule};
pub use interp::{ByteMachine, TrapOutcome, TrapSnapshot};
pub use verify::{check_explicit_census, verify_module, FindingKind, VerifyFinding, VerifyReport};
