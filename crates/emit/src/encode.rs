//! The x86-64 encoder: lowers [`njc_codegen::isa::MInst`] code to real
//! machine bytes.
//!
//! Every virtual register lives in a frame slot `[rbp + 8*i]` (see
//! [`crate::abi`]). Each virtual instruction expands to a fixed byte
//! sequence with `rax`/`rcx`/`rdx`/`xmm0`/`xmm1` as scratch, so the byte
//! stream is a pure function of the machine code — emission is
//! **byte-identical across runs and thread counts** by construction, and
//! the decoder can re-derive the exact instruction stream.
//!
//! The paper's core property survives the trip to bytes: an implicit null
//! check emits *nothing*. What the encoder records instead is the byte
//! offset of the access instruction (`mov rdx, [rax+disp32]` and friends)
//! in the function's binary exception-site table, with the
//! [`SiteInfo`] provenance carried over from lowering.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use njc_codegen::isa::{AluOp, FaluOp, MInst, Reg};
use njc_codegen::{MachineFunction, MachineModule, SiteInfo};
use njc_ir::{AccessKind, CatchKind, CheckId, Cond, Type};

use crate::abi;

/// One binary exception-site entry: a function-relative byte offset whose
/// instruction is a memory access doubling as a null check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BinSite {
    /// Byte offset of the access instruction, relative to function start.
    pub byte_off: u32,
    /// The IR check this site discharges ([`CheckId::NONE`] for
    /// over-marking).
    pub check: CheckId,
    /// Read or write.
    pub kind: AccessKind,
    /// Static byte offset from the base register (`None` when
    /// index-scaled).
    pub offset: Option<u64>,
}

/// One binary handler range over function-relative byte offsets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BinHandler {
    /// First covered byte (inclusive).
    pub start: u32,
    /// First byte past the range (exclusive).
    pub end: u32,
    /// Catch filter.
    pub catch: CatchKind,
    /// Handler entry byte offset.
    pub handler: u32,
    /// Frame slot receiving the exception code, if any.
    pub code_slot: Option<u32>,
}

/// One emitted function: where its bytes live in `.text` plus the binary
/// metadata tables.
#[derive(Clone, PartialEq, Debug)]
pub struct EmittedFunction {
    /// Function name.
    pub name: String,
    /// Offset of the first byte in `.text` (16-aligned).
    pub text_off: u32,
    /// Code length in bytes (padding excluded).
    pub text_len: u32,
    /// Frame size in slots.
    pub num_regs: u32,
    /// Leading slots holding parameters.
    pub num_params: u32,
    /// Return type, if non-void.
    pub ret: Option<Type>,
    /// Binary exception-site table, ascending by byte offset.
    pub sites: Vec<BinSite>,
    /// Binary handler ranges (searched in order; first match wins).
    pub handlers: Vec<BinHandler>,
}

/// One emitted class: allocation size and the method table keyed by
/// module-wide method id.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EmittedClass {
    /// Object size in bytes.
    pub size: u64,
    /// `(method id, function index)` pairs, ascending by method id.
    pub methods: Vec<(u32, u32)>,
}

/// A fully emitted module: the text bytes plus everything the runtime
/// (and the binary verifier) needs alongside them.
#[derive(Clone, PartialEq, Debug)]
pub struct EmittedModule {
    /// All function code, 0xCC-padded to 16-byte function alignment.
    pub text: Vec<u8>,
    /// Functions in source order.
    pub functions: Vec<EmittedFunction>,
    /// Classes in source order.
    pub classes: Vec<EmittedClass>,
    /// Module-wide method name table (sorted; ids are indices).
    pub method_names: Vec<String>,
}

impl EmittedModule {
    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// The function whose text range contains the absolute byte `addr`.
    pub fn function_at(&self, addr: u32) -> Option<usize> {
        self.functions
            .iter()
            .position(|f| f.text_off <= addr && addr < f.text_off + f.text_len)
    }

    /// Total site entries across all functions.
    pub fn total_sites(&self) -> usize {
        self.functions.iter().map(|f| f.sites.len()).sum()
    }
}

// ---------------------------------------------------------------------
// Assembler primitives.
// ---------------------------------------------------------------------

/// Scratch general-purpose registers, numbered as in ModRM reg fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Gp {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
}

struct Asm {
    bytes: Vec<u8>,
}

/// A to-be-patched rel8 operand position.
struct Patch8(usize);

impl Asm {
    fn new() -> Self {
        Asm { bytes: Vec::new() }
    }

    fn here(&self) -> usize {
        self.bytes.len()
    }

    fn u8(&mut self, b: u8) {
        self.bytes.push(b);
    }

    fn raw(&mut self, bs: &[u8]) {
        self.bytes.extend_from_slice(bs);
    }

    fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// `mov r64, [rbp + 8*slot]`.
    fn load_slot(&mut self, reg: Gp, slot: u32) {
        self.raw(&[0x48, 0x8B, 0x80 | ((reg as u8) << 3) | 0x05]);
        self.u32(slot * 8);
    }

    /// `mov [rbp + 8*slot], r64`.
    fn store_slot(&mut self, slot: u32, reg: Gp) {
        self.raw(&[0x48, 0x89, 0x80 | ((reg as u8) << 3) | 0x05]);
        self.u32(slot * 8);
    }

    /// `movabs rax/rcx/rdx, imm64`.
    fn movabs(&mut self, reg: Gp, imm: u64) {
        self.raw(&[0x48, 0xB8 + reg as u8]);
        self.u64(imm);
    }

    /// `mov eax, imm32`.
    fn mov_eax(&mut self, imm: u32) {
        self.u8(0xB8);
        self.u32(imm);
    }

    /// `mov edi, imm32`.
    fn mov_edi(&mut self, imm: u32) {
        self.u8(0xBF);
        self.u32(imm);
    }

    /// `mov esi, imm32`.
    fn mov_esi(&mut self, imm: u32) {
        self.u8(0xBE);
        self.u32(imm);
    }

    /// `syscall`.
    fn syscall(&mut self) {
        self.raw(&[0x0F, 0x05]);
    }

    /// `mov edi, tag; [movabs rdx, code;] mov eax, SVC_RAISE; syscall`.
    fn raise(&mut self, tag: u32, user_code: Option<i64>) {
        self.mov_edi(tag);
        if let Some(code) = user_code {
            self.movabs(Gp::Rdx, code as u64);
        }
        self.mov_eax(abi::SVC_RAISE);
        self.syscall();
    }

    /// A short conditional/unconditional jump with a back-patched rel8.
    fn jmp8(&mut self, opcode: u8) -> Patch8 {
        self.raw(&[opcode, 0x00]);
        Patch8(self.bytes.len() - 1)
    }

    /// Points a [`Patch8`] at the current position.
    fn land8(&mut self, p: Patch8) {
        let rel = self.bytes.len() - (p.0 + 1);
        assert!(rel <= 127, "rel8 overflow");
        self.bytes[p.0] = rel as u8;
    }
}

/// The jcc rel32 second opcode byte for a condition (after 0x0F).
fn jcc_opcode(cond: Cond) -> u8 {
    match cond {
        Cond::Eq => 0x84, // je
        Cond::Ne => 0x85, // jne
        Cond::Lt => 0x8C, // jl
        Cond::Le => 0x8E, // jle
        Cond::Gt => 0x8F, // jg
        Cond::Ge => 0x8D, // jge
    }
}

/// The SSE `cmpsd` predicate and operand order for a float compare.
/// `Gt`/`Ge` swap operands (`x > y` ⇔ `y < x`); `Ne` uses CMPNEQ, which is
/// true for unordered operands — exactly Rust/Java `!=` on NaN.
fn fcmp_predicate(cond: Cond) -> (u8, bool) {
    match cond {
        Cond::Eq => (0, false),
        Cond::Lt => (1, false),
        Cond::Le => (2, false),
        Cond::Ne => (4, false),
        Cond::Gt => (1, true),
        Cond::Ge => (2, true),
    }
}

// ---------------------------------------------------------------------
// Per-function encoding.
// ---------------------------------------------------------------------

struct EncodedFunction {
    bytes: Vec<u8>,
    /// Byte offset where each virtual pc's expansion starts, plus a final
    /// entry at the code end (for exclusive handler ranges).
    vstart: Vec<u32>,
    /// Virtual pc → byte offset of the trapping access instruction.
    access_byte: BTreeMap<usize, u32>,
    /// `(rel32 operand position, callee function index)` call fixups.
    call_fixups: Vec<(u32, usize)>,
}

/// Loads a float slot into an xmm register: `movsd xmm, [rbp + 8*slot]`.
fn movsd_load(a: &mut Asm, xmm: u8, slot: u32) {
    a.raw(&[0xF2, 0x0F, 0x10, 0x80 | (xmm << 3) | 0x05]);
    a.u32(slot * 8);
}

/// `movsd [rbp + 8*slot], xmm0`.
fn movsd_store(a: &mut Asm, slot: u32) {
    a.raw(&[0xF2, 0x0F, 0x11, 0x85]);
    a.u32(slot * 8);
}

/// Emits the operand loads and the access instruction for a `Load`/`Store`
/// effective address, returning the byte offset of the access instruction
/// itself. `store_src` is the slot whose value a store writes (`None` for
/// loads, which leave the loaded value in `rdx`).
fn encode_access(
    a: &mut Asm,
    base: Reg,
    index: Option<Reg>,
    imm: u64,
    store_src: Option<Reg>,
) -> u32 {
    a.load_slot(Gp::Rax, base.0);
    // Static displacements must fit in a signed 32-bit field; larger
    // offsets (wild "BigOffset" probes) are folded into the base with
    // 64-bit arithmetic, preserving the simulator's wrapping semantics.
    let disp = if imm <= i32::MAX as u64 {
        imm as u32
    } else {
        a.movabs(Gp::Rdx, imm);
        a.raw(&[0x48, 0x01, 0xD0]); // add rax, rdx
        0
    };
    if let Some(i) = index {
        a.load_slot(Gp::Rcx, i.0);
    }
    if let Some(src) = store_src {
        a.load_slot(Gp::Rdx, src.0);
    }
    let access_at = a.here() as u32;
    let opcode = if store_src.is_some() { 0x89 } else { 0x8B };
    match index {
        // mov rdx, [rax + rcx*8 + disp32] / mov [rax + rcx*8 + disp32], rdx
        Some(_) => a.raw(&[0x48, opcode, 0x94, 0xC8]),
        // mov rdx, [rax + disp32] / mov [rax + disp32], rdx
        None => a.raw(&[0x48, opcode, 0x90]),
    }
    a.u32(disp);
    access_at
}

#[allow(clippy::too_many_lines)]
fn encode_function(
    func: &MachineFunction,
    method_ids: &BTreeMap<&str, u32>,
    rets: &[Option<Type>],
) -> EncodedFunction {
    let mut a = Asm::new();
    let mut vstart = Vec::with_capacity(func.code.len() + 1);
    let mut access_byte = BTreeMap::new();
    let mut call_fixups = Vec::new();
    // (rel32 operand position, target virtual pc) branch fixups.
    let mut branch_fixups: Vec<(usize, usize)> = Vec::new();

    // Prologue: zero the non-parameter slots, matching the simulator's
    // zeroed register file (the stack region may hold stale bytes from an
    // earlier, deeper activation).
    a.raw(&[0x48, 0x31, 0xC0]); // xor rax, rax
    for slot in func.num_params..func.num_regs {
        a.store_slot(slot as u32, Gp::Rax);
    }

    for inst in &func.code {
        vstart.push(a.here() as u32);
        match inst {
            MInst::LoadImm { dst, bits } => {
                a.movabs(Gp::Rax, *bits);
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Mov { dst, src } => {
                a.load_slot(Gp::Rax, src.0);
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Alu {
                op,
                dst,
                a: x,
                b: y,
            } => {
                a.load_slot(Gp::Rax, x.0);
                a.load_slot(Gp::Rcx, y.0);
                match op {
                    AluOp::Add => a.raw(&[0x48, 0x01, 0xC8]),
                    AluOp::Sub => a.raw(&[0x48, 0x29, 0xC8]),
                    AluOp::Mul => a.raw(&[0x48, 0x0F, 0xAF, 0xC1]),
                    AluOp::And => a.raw(&[0x48, 0x21, 0xC8]),
                    AluOp::Or => a.raw(&[0x48, 0x09, 0xC8]),
                    AluOp::Xor => a.raw(&[0x48, 0x31, 0xC8]),
                    // Hardware masks the `cl` count to 6 bits for 64-bit
                    // operands — exactly the `& 63` the simulator applies.
                    AluOp::Shl => a.raw(&[0x48, 0xD3, 0xE0]),
                    AluOp::Shr => a.raw(&[0x48, 0xD3, 0xF8]),
                    AluOp::Ushr => a.raw(&[0x48, 0xD3, 0xE8]),
                    AluOp::Div | AluOp::Rem => {
                        // Java semantics: zero divisor raises, MIN/-1 wraps
                        // instead of faulting in `idiv`.
                        a.raw(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                        let nonzero = a.jmp8(0x75);
                        a.raise(abi::EXC_TAG_ARITH, None);
                        a.land8(nonzero);
                        a.movabs(Gp::Rdx, i64::MIN as u64);
                        a.raw(&[0x48, 0x39, 0xD0]); // cmp rax, rdx
                        let not_min = a.jmp8(0x75);
                        a.raw(&[0x48, 0x83, 0xF9, 0xFF]); // cmp rcx, -1
                        let not_m1 = a.jmp8(0x75);
                        if *op == AluOp::Rem {
                            a.raw(&[0x48, 0x31, 0xC0]); // xor rax, rax
                        }
                        let done = a.jmp8(0xEB);
                        a.land8(not_min);
                        a.land8(not_m1);
                        a.raw(&[0x48, 0x99]); // cqo
                        a.raw(&[0x48, 0xF7, 0xF9]); // idiv rcx
                        if *op == AluOp::Rem {
                            a.raw(&[0x48, 0x89, 0xD0]); // mov rax, rdx
                        }
                        a.land8(done);
                    }
                }
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Falu {
                op,
                dst,
                a: x,
                b: y,
            } => {
                if *op == FaluOp::Rem {
                    // `fprem`-era remainders go through the runtime, like
                    // the libm call a JIT would emit.
                    a.mov_edi(x.0);
                    a.mov_esi(y.0);
                    a.mov_eax(abi::SVC_FREM);
                    a.syscall();
                    a.store_slot(dst.0, Gp::Rax);
                } else {
                    movsd_load(&mut a, 0, x.0);
                    movsd_load(&mut a, 1, y.0);
                    let sse = match op {
                        FaluOp::Add => 0x58,
                        FaluOp::Sub => 0x5C,
                        FaluOp::Mul => 0x59,
                        FaluOp::Div => 0x5E,
                        FaluOp::Rem => unreachable!(),
                    };
                    a.raw(&[0xF2, 0x0F, sse, 0xC1]); // opsd xmm0, xmm1
                    movsd_store(&mut a, dst.0);
                }
            }
            MInst::Neg { dst, a: x, float } => {
                a.load_slot(Gp::Rax, x.0);
                if *float {
                    // IEEE negate is a sign-bit flip — bit-exact with the
                    // simulator's `-f64` including NaN payloads.
                    a.movabs(Gp::Rdx, 0x8000_0000_0000_0000);
                    a.raw(&[0x48, 0x31, 0xD0]); // xor rax, rdx
                } else {
                    a.raw(&[0x48, 0xF7, 0xD8]); // neg rax
                }
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Cvt { dst, src, to_int } => {
                if *to_int {
                    // `cvttsd2si` traps to 0x8000.. on overflow; the
                    // simulator (Rust `as`) saturates. Routed through the
                    // runtime to keep the two bit-identical.
                    a.mov_esi(src.0);
                    a.mov_eax(abi::SVC_CVT_TO_INT);
                    a.syscall();
                } else {
                    a.load_slot(Gp::Rax, src.0);
                    a.raw(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]); // cvtsi2sd xmm0, rax
                    movsd_store(&mut a, dst.0);
                    continue;
                }
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Fcmp {
                dst,
                cond,
                a: x,
                b: y,
            } => {
                let (pred, swap) = fcmp_predicate(*cond);
                let (lo, hi) = if swap { (y, x) } else { (x, y) };
                movsd_load(&mut a, 0, lo.0);
                movsd_load(&mut a, 1, hi.0);
                a.raw(&[0xF2, 0x0F, 0xC2, 0xC1, pred]); // cmpsd xmm0, xmm1, pred
                a.raw(&[0x66, 0x48, 0x0F, 0x7E, 0xC0]); // movq rax, xmm0
                a.raw(&[0x48, 0x83, 0xE0, 0x01]); // and rax, 1
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Load {
                dst,
                base,
                index,
                imm,
            } => {
                let at = encode_access(&mut a, *base, *index, *imm, None);
                access_byte.insert(vstart.len() - 1, at);
                a.store_slot(dst.0, Gp::Rdx);
            }
            MInst::Store {
                src,
                base,
                index,
                imm,
            } => {
                let at = encode_access(&mut a, *base, *index, *imm, Some(*src));
                access_byte.insert(vstart.len() - 1, at);
            }
            MInst::Br {
                cond,
                a: x,
                b: y,
                target,
            } => {
                a.load_slot(Gp::Rax, x.0);
                a.load_slot(Gp::Rcx, y.0);
                a.raw(&[0x48, 0x39, 0xC8]); // cmp rax, rcx
                a.raw(&[0x0F, jcc_opcode(*cond)]);
                branch_fixups.push((a.here(), *target));
                a.u32(0);
            }
            MInst::Jmp { target } => {
                a.u8(0xE9);
                branch_fixups.push((a.here(), *target));
                a.u32(0);
            }
            MInst::CheckNull { reg } => {
                // THE residual pattern the binary verifier hunts for: an
                // eliminated check must leave none of these behind.
                a.load_slot(Gp::Rax, reg.0);
                a.raw(&[0x48, 0x85, 0xC0]); // test rax, rax
                let ok = a.jmp8(0x75);
                a.raise(abi::EXC_TAG_NPE, None);
                a.land8(ok);
            }
            MInst::CheckBounds { index, length } => {
                a.load_slot(Gp::Rax, index.0);
                a.load_slot(Gp::Rcx, length.0);
                a.raw(&[0x48, 0x39, 0xC8]); // cmp rax, rcx
                                            // Unsigned below folds both bounds into one branch: a
                                            // negative index is a huge unsigned value (lengths are
                                            // non-negative by construction — `NewArr` raises first).
                let ok = a.jmp8(0x72); // jb
                a.raise(abi::EXC_TAG_BOUNDS, None);
                a.land8(ok);
            }
            MInst::NewObj { dst, class } => {
                a.mov_edi(class.index() as u32);
                a.mov_eax(abi::SVC_NEWOBJ);
                a.syscall();
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::NewArr { dst, elem, len } => {
                a.mov_edi(abi::type_tag(*elem));
                a.mov_esi(len.0);
                a.mov_eax(abi::SVC_NEWARR);
                a.syscall();
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Call { target, args, dst } => {
                for (j, arg) in args.iter().enumerate() {
                    a.load_slot(Gp::Rax, arg.0);
                    a.store_slot((func.num_regs + j) as u32, Gp::Rax);
                }
                let frame = (func.num_regs * 8) as u32;
                a.raw(&[0x48, 0x8D, 0xAD]); // lea rbp, [rbp + frame]
                a.u32(frame);
                a.u8(0xE8); // call rel32
                call_fixups.push((a.here() as u32, target.index()));
                a.u32(0);
                a.raw(&[0x48, 0x8D, 0xAD]); // lea rbp, [rbp - frame]
                a.u32(frame.wrapping_neg());
                // The simulator only stores a result the callee produced.
                if let (Some(d), Some(_)) = (dst, rets[target.index()]) {
                    a.store_slot(d.0, Gp::Rax);
                }
            }
            MInst::CallVirtual {
                method,
                receiver,
                args,
                dst,
            } => {
                // The dispatch header load is the trapping access: the
                // class tag lands in rdx and rides into the service call.
                let at = encode_access(&mut a, *receiver, None, 0, None);
                access_byte.insert(vstart.len() - 1, at);
                a.load_slot(Gp::Rax, receiver.0);
                a.store_slot(func.num_regs as u32, Gp::Rax);
                for (j, arg) in args.iter().enumerate() {
                    a.load_slot(Gp::Rax, arg.0);
                    a.store_slot((func.num_regs + 1 + j) as u32, Gp::Rax);
                }
                let frame = (func.num_regs * 8) as u32;
                a.raw(&[0x48, 0x8D, 0xAD]); // lea rbp, [rbp + frame]
                a.u32(frame);
                a.mov_edi(method_ids[method.as_str()]);
                a.mov_eax(abi::SVC_CALLV);
                a.syscall();
                a.raw(&[0x48, 0x8D, 0xAD]); // lea rbp, [rbp - frame]
                a.u32(frame.wrapping_neg());
                if let Some(d) = dst {
                    a.store_slot(d.0, Gp::Rax);
                }
            }
            MInst::Math { op, dst, src } => {
                a.mov_edi(abi::intrinsic_tag(*op));
                a.mov_esi(src.0);
                a.mov_eax(abi::SVC_MATH);
                a.syscall();
                a.store_slot(dst.0, Gp::Rax);
            }
            MInst::Ret { src } => {
                match src {
                    Some(r) => a.load_slot(Gp::Rax, r.0),
                    None => a.raw(&[0x48, 0x31, 0xC0]), // xor rax, rax
                }
                a.u8(0xC3); // ret
            }
            MInst::Throw { kind } => {
                let code = matches!(kind, njc_ir::ExceptionKind::User(_)).then(|| kind.code());
                a.raise(abi::exception_tag(*kind), code);
            }
            MInst::Observe { src, ty } => {
                a.mov_edi(abi::type_tag(*ty));
                a.mov_esi(src.0);
                a.mov_eax(abi::SVC_OBSERVE);
                a.syscall();
            }
        }
    }
    vstart.push(a.here() as u32);

    for (pos, target) in branch_fixups {
        let rel = vstart[target] as i64 - (pos as i64 + 4);
        a.bytes[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
    }

    EncodedFunction {
        bytes: a.bytes,
        vstart,
        access_byte,
        call_fixups,
    }
}

// ---------------------------------------------------------------------
// Module assembly.
// ---------------------------------------------------------------------

/// Emits a whole module to bytes, fanning the per-function encoding out
/// over `threads` workers. The result is identical for every thread
/// count: workers pull function indices from a shared counter and the
/// assembler merges strictly in function order.
pub fn emit_module(module: &MachineModule, threads: usize) -> EmittedModule {
    // Module-wide method id table: sorted names, deterministically.
    let mut names: Vec<&str> = module
        .classes
        .iter()
        .flat_map(|c| c.methods.keys().map(String::as_str))
        .collect();
    names.sort_unstable();
    names.dedup();
    let method_ids: BTreeMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (*n, i as u32))
        .collect();

    let rets: Vec<Option<Type>> = module.functions.iter().map(|f| f.ret).collect();
    let n = module.functions.len();
    let mut encoded: Vec<Option<EncodedFunction>> = (0..n).map(|_| None).collect();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        for (i, slot) in encoded.iter_mut().enumerate() {
            *slot = Some(encode_function(&module.functions[i], &method_ids, &rets));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<EncodedFunction>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let enc = encode_function(&module.functions[i], &method_ids, &rets);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(enc);
                });
            }
        });
        for (slot, cell) in encoded.iter_mut().zip(slots) {
            *slot = cell
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    // Sequential layout: 16-aligned functions, 0xCC padding between.
    let mut text = Vec::new();
    let mut functions = Vec::with_capacity(n);
    let mut fixups: Vec<(usize, usize)> = Vec::new(); // (absolute pos, callee)
    for (i, enc) in encoded.iter().enumerate() {
        let enc = enc.as_ref().expect("every function encoded");
        while text.len() % 16 != 0 {
            text.push(0xCC);
        }
        let text_off = text.len() as u32;
        text.extend_from_slice(&enc.bytes);
        let mf = &module.functions[i];
        let sites = mf
            .sites
            .iter()
            .map(|(vpc, info)| site_entry(enc, vpc, info))
            .collect();
        let handlers = mf
            .handlers
            .entries
            .iter()
            .map(|h| BinHandler {
                start: enc.vstart[h.start_pc],
                end: enc.vstart[h.end_pc],
                catch: h.catch,
                handler: enc.vstart[h.handler_pc],
                code_slot: h.code_reg.map(|r| r.0),
            })
            .collect();
        for (pos, callee) in &enc.call_fixups {
            fixups.push((text_off as usize + *pos as usize, *callee));
        }
        functions.push(EmittedFunction {
            name: mf.name.clone(),
            text_off,
            text_len: enc.bytes.len() as u32,
            num_regs: mf.num_regs as u32,
            num_params: mf.num_params as u32,
            ret: mf.ret,
            sites,
            handlers,
        });
    }
    for (pos, callee) in fixups {
        let rel = functions[callee].text_off as i64 - (pos as i64 + 4);
        text[pos..pos + 4].copy_from_slice(&(rel as i32).to_le_bytes());
    }

    let classes = module
        .classes
        .iter()
        .map(|c| {
            let mut methods: Vec<(u32, u32)> = c
                .methods
                .iter()
                .map(|(name, fidx)| (method_ids[name.as_str()], *fidx as u32))
                .collect();
            methods.sort_unstable();
            EmittedClass {
                size: c.size,
                methods,
            }
        })
        .collect();

    EmittedModule {
        text,
        functions,
        classes,
        method_names: names.iter().map(|n| (*n).to_string()).collect(),
    }
}

fn site_entry(enc: &EncodedFunction, vpc: usize, info: &SiteInfo) -> BinSite {
    BinSite {
        byte_off: *enc
            .access_byte
            .get(&vpc)
            .expect("site registered on a memory access"),
        check: info.check,
        kind: info.kind,
        offset: info.offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use njc_codegen::lower_module;
    use njc_ir::{parse_function, Module, Type};

    fn demo_module() -> MachineModule {
        let mut m = Module::new("demo");
        m.add_class("C", &[("x", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int v2: int\nbb0:\n  v0 = new class0\n  v1 = const 21\n  putfield v0, field0, v1\n  v2 = getfield v0, field0 [site]\n  v2 = add.int v2, v2\n  return v2\n}",
            )
            .unwrap(),
        );
        lower_module(&m)
    }

    #[test]
    fn emission_is_thread_count_invariant() {
        let mm = demo_module();
        let one = emit_module(&mm, 1);
        let eight = emit_module(&mm, 8);
        assert_eq!(one, eight);
        assert!(!one.text.is_empty());
    }

    #[test]
    fn functions_are_16_aligned_and_sites_carry_provenance() {
        let mm = demo_module();
        let em = emit_module(&mm, 2);
        for f in &em.functions {
            assert_eq!(f.text_off % 16, 0);
        }
        let main = &em.functions[em.function_by_name("main").unwrap()];
        assert_eq!(main.sites.len(), mm.functions[0].sites.len());
        for s in &main.sites {
            assert!((s.byte_off as usize) < main.text_len as usize);
        }
    }

    #[test]
    fn method_ids_are_sorted_and_dense() {
        let mm = demo_module();
        let em = emit_module(&mm, 1);
        let mut sorted = em.method_names.clone();
        sorted.sort();
        assert_eq!(em.method_names, sorted);
    }
}
