//! The parallel binary verifier: proves, from the bytes alone, that the
//! emitted artifact upholds the paper's soundness contract.
//!
//! Per function (fanned out with `std::thread::scope`, findings merged in
//! function order):
//!
//! * **Claim (a)** — every `.njc.exctab` entry's byte offset decodes to a
//!   real memory access whose null-base fault lands inside the platform's
//!   trap area: direction matches the recorded access kind, the static
//!   displacement matches the recorded offset and is **strictly less**
//!   than `trap_area_bytes` (offset == area size must never be an
//!   implicit site — the trap would not fire), and the platform can trap
//!   that access kind at all. Read sites on silent-read models (AIX) are
//!   tallied separately: they are the §5.4 "Illegal Implicit" hazard, a
//!   policy question the caller judges, not a malformation.
//! * **Claim (b)** — no eliminated check left a residual explicit test
//!   behind: the instruction window before each site access must not
//!   contain the `test rax, rax; jnz; raise-NPE` expansion guarding the
//!   same base slot; and the per-function census of explicit check
//!   fingerprints is reported for reconciliation against the optimizer's
//!   check ledger.
//! * **Claim (c)** — handler ranges are in-bounds, start before they end,
//!   begin and end on instruction boundaries, nest or stay disjoint, and
//!   their handler entry points are instruction boundaries outside the
//!   covered range.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use njc_arch::Platform;
use njc_ir::{AccessKind, CheckId};

use crate::abi;
use crate::decode::{decode_one, Dec, Imm32Reg, Scratch};
use crate::encode::{EmittedFunction, EmittedModule};

/// What a finding is about.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FindingKind {
    /// Bytes at the given offset are outside the emitted subset.
    Undecodable,
    /// A site's byte offset is not an instruction boundary.
    SiteNotOnBoundary,
    /// A site's instruction is not a memory access.
    SiteNotMemoryAccess,
    /// A site's access direction contradicts its recorded kind.
    SiteKindMismatch,
    /// A site's decoded displacement contradicts its recorded offset.
    SiteOffsetMismatch {
        /// The displacement actually encoded.
        decoded: u64,
    },
    /// A site's static offset does not fall strictly inside the trap
    /// area — the hardware would never deliver the fault.
    SiteOffsetOutsideTrapArea {
        /// The recorded offset.
        offset: u64,
        /// The platform trap-area size.
        area: u64,
    },
    /// The platform cannot trap this access kind at all.
    SiteCannotTrap,
    /// A residual explicit null check still guards a site's access.
    ResidualNullCheck {
        /// The frame slot both the check and the access use.
        slot: u32,
    },
    /// Two sites claim the same (non-`NONE`) check id.
    DuplicateCheck,
    /// A handler range is structurally broken.
    HandlerMalformed,
    /// Two handler ranges partially overlap (neither nested nor disjoint).
    HandlerOverlap,
    /// The binary explicit check census disagrees with the ledger.
    ExplicitCountMismatch {
        /// Checks the ledger expects.
        expected: u64,
        /// Fingerprints found in the bytes.
        actual: u64,
    },
}

/// One verification finding, carrying the site provenance it concerns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyFinding {
    /// The function.
    pub function: String,
    /// Function-relative byte offset the finding anchors at.
    pub byte_off: u32,
    /// The IR check involved ([`CheckId::NONE`] when not site-specific).
    pub check: CheckId,
    /// What went wrong.
    pub kind: FindingKind,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for VerifyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {:#x}", self.function, self.byte_off)?;
        if self.check.is_some() {
            write!(f, " (check {})", self.check)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The verifier's aggregate result.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VerifyReport {
    /// Functions verified.
    pub functions: usize,
    /// Site entries checked.
    pub sites: usize,
    /// Handler ranges checked.
    pub handlers: usize,
    /// Read sites on a platform whose reads do not trap (the AIX silent
    /// read hazard — a policy matter, not a malformation).
    pub silent_read_sites: usize,
    /// Per-function explicit null check fingerprint counts, in function
    /// order — the binary side of the check ledger.
    pub explicit_checks: Vec<(String, u64)>,
    /// All findings, in function order.
    pub findings: Vec<VerifyFinding>,
}

struct FnResult {
    silent_read_sites: usize,
    explicit_checks: u64,
    findings: Vec<VerifyFinding>,
}

/// Verifies one function's bytes and tables.
#[allow(clippy::too_many_lines)]
fn verify_function(f: &EmittedFunction, text: &[u8], platform: &Platform) -> FnResult {
    let mut findings = Vec::new();
    let finding =
        |byte_off: u32, check: CheckId, kind: FindingKind, detail: String| VerifyFinding {
            function: f.name.clone(),
            byte_off,
            check,
            kind,
            detail,
        };

    // Full decode: every byte of the function must be in the subset.
    let code = &text[f.text_off as usize..(f.text_off + f.text_len) as usize];
    let mut decoded: Vec<(u32, Dec)> = Vec::new();
    let mut boundaries: BTreeMap<u32, usize> = BTreeMap::new();
    let mut pos = 0usize;
    while pos < code.len() {
        match decode_one(code, pos) {
            Ok((dec, len)) => {
                boundaries.insert(pos as u32, decoded.len());
                decoded.push((pos as u32, dec));
                pos += len;
            }
            Err(e) => {
                findings.push(finding(
                    pos as u32,
                    CheckId::NONE,
                    FindingKind::Undecodable,
                    format!("undecodable byte {:#04x}", e.byte),
                ));
                return FnResult {
                    silent_read_sites: 0,
                    explicit_checks: 0,
                    findings,
                };
            }
        }
    }

    let explicit_checks = decoded
        .iter()
        .filter(|(_, d)| matches!(d, Dec::TestRax))
        .count() as u64;

    // Claim (a): every site is a genuinely faulting access.
    let mut silent_read_sites = 0usize;
    let area = platform.trap.trap_area_bytes;
    let mut seen_checks: BTreeMap<u32, u32> = BTreeMap::new();
    for site in &f.sites {
        if site.check.is_some() {
            if let Some(prev) = seen_checks.insert(site.check.0, site.byte_off) {
                findings.push(finding(
                    site.byte_off,
                    site.check,
                    FindingKind::DuplicateCheck,
                    format!("check already discharged at byte {prev:#x}"),
                ));
            }
        }
        let Some(&idx) = boundaries.get(&site.byte_off) else {
            findings.push(finding(
                site.byte_off,
                site.check,
                FindingKind::SiteNotOnBoundary,
                "site offset is not an instruction boundary".to_string(),
            ));
            continue;
        };
        let (kind, disp, indexed) = match decoded[idx].1 {
            Dec::LoadMem { disp, indexed } => (AccessKind::Read, disp, indexed),
            Dec::StoreMem { disp, indexed } => (AccessKind::Write, disp, indexed),
            other => {
                findings.push(finding(
                    site.byte_off,
                    site.check,
                    FindingKind::SiteNotMemoryAccess,
                    format!("site instruction is {other:?}, not a memory access"),
                ));
                continue;
            }
        };
        if kind != site.kind {
            findings.push(finding(
                site.byte_off,
                site.check,
                FindingKind::SiteKindMismatch,
                format!("table records a {:?}, bytes perform a {kind:?}", site.kind),
            ));
            continue;
        }
        // The displacement that must fall inside the trap area: the
        // static offset for field accesses, the elements base for
        // index-scaled accesses (index 0 is the null-page witness).
        match site.offset {
            Some(off) => {
                if indexed || u64::from(disp) != off {
                    findings.push(finding(
                        site.byte_off,
                        site.check,
                        FindingKind::SiteOffsetMismatch {
                            decoded: u64::from(disp),
                        },
                        format!(
                            "table records static offset {off}, bytes encode {}{}",
                            disp,
                            if indexed { " (index-scaled)" } else { "" }
                        ),
                    ));
                    continue;
                }
                if off >= area {
                    findings.push(finding(
                        site.byte_off,
                        site.check,
                        FindingKind::SiteOffsetOutsideTrapArea { offset: off, area },
                        format!(
                            "offset {off} does not fall strictly inside the {area}-byte trap area"
                        ),
                    ));
                    continue;
                }
            }
            None => {
                if !indexed {
                    findings.push(finding(
                        site.byte_off,
                        site.check,
                        FindingKind::SiteOffsetMismatch {
                            decoded: u64::from(disp),
                        },
                        "table records a dynamic offset, bytes encode a static access".to_string(),
                    ));
                    continue;
                }
                if u64::from(disp) >= area {
                    findings.push(finding(
                        site.byte_off,
                        site.check,
                        FindingKind::SiteOffsetOutsideTrapArea {
                            offset: u64::from(disp),
                            area,
                        },
                        format!(
                            "elements base {disp} does not fall strictly inside the {area}-byte trap area"
                        ),
                    ));
                    continue;
                }
            }
        }
        // Capability: the platform must trap this kind at this offset.
        if area == 0 {
            findings.push(finding(
                site.byte_off,
                site.check,
                FindingKind::SiteCannotTrap,
                "platform has no trap area; implicit sites can never fire".to_string(),
            ));
            continue;
        }
        match kind {
            AccessKind::Write if !platform.trap.traps_on_write => {
                findings.push(finding(
                    site.byte_off,
                    site.check,
                    FindingKind::SiteCannotTrap,
                    "platform does not trap writes".to_string(),
                ));
                continue;
            }
            AccessKind::Read if !platform.trap.traps_on_read => {
                // AIX: null reads complete silently — the site never
                // fires and the NPE is missed. Whether that is legal is
                // the optimizer configuration's call; tally it.
                silent_read_sites += 1;
            }
            _ => {}
        }

        // Claim (b): no residual explicit check may guard this access.
        if let Some(slot) = residual_check_slot(&decoded, idx) {
            findings.push(finding(
                site.byte_off,
                site.check,
                FindingKind::ResidualNullCheck { slot },
                format!("explicit null check on slot {slot} still guards the site access"),
            ));
        }
    }

    // Claim (c): handler ranges.
    for (i, h) in f.handlers.iter().enumerate() {
        let bad = |detail: String| {
            finding(
                h.start,
                CheckId::NONE,
                FindingKind::HandlerMalformed,
                detail,
            )
        };
        if h.start >= h.end {
            findings.push(bad(format!("empty handler range {}..{}", h.start, h.end)));
            continue;
        }
        if h.end > f.text_len {
            findings.push(bad(format!(
                "handler range {}..{} extends past the {}-byte function",
                h.start, h.end, f.text_len
            )));
            continue;
        }
        for (what, off) in [("start", h.start), ("handler entry", h.handler)] {
            if !boundaries.contains_key(&off) {
                findings.push(bad(format!(
                    "{what} {off:#x} is not an instruction boundary"
                )));
            }
        }
        if h.end < f.text_len && !boundaries.contains_key(&h.end) {
            findings.push(bad(format!(
                "end {:#x} is not an instruction boundary",
                h.end
            )));
        }
        if h.start <= h.handler && h.handler < h.end {
            findings.push(bad(format!(
                "handler entry {:#x} lies inside its own protected range",
                h.handler
            )));
        }
        for other in &f.handlers[i + 1..] {
            let disjoint = h.end <= other.start || other.end <= h.start;
            let nested = (h.start <= other.start && other.end <= h.end)
                || (other.start <= h.start && h.end <= other.end);
            if !disjoint && !nested {
                findings.push(finding(
                    h.start,
                    CheckId::NONE,
                    FindingKind::HandlerOverlap,
                    format!(
                        "ranges {}..{} and {}..{} partially overlap",
                        h.start, h.end, other.start, other.end
                    ),
                ));
            }
        }
    }

    FnResult {
        silent_read_sites,
        explicit_checks,
        findings,
    }
}

/// Looks backwards from the site access at `idx` for the explicit null
/// check expansion guarding the same base slot. Returns the slot if the
/// residual pattern is present.
fn residual_check_slot(decoded: &[(u32, Dec)], idx: usize) -> Option<u32> {
    // The access group starts at the nearest preceding `mov rax, [rbp+..]`
    // (the base-slot load); operand loads in between are rcx/rdx.
    let mut at = idx;
    let mut base_slot = None;
    while at > 0 && idx - at <= 4 {
        at -= 1;
        match decoded[at].1 {
            Dec::LoadSlot {
                reg: Scratch::Rax,
                slot,
            } => {
                base_slot = Some(slot);
                break;
            }
            Dec::LoadSlot { .. } | Dec::MovAbs { .. } | Dec::AddRdx => {}
            _ => return None,
        }
    }
    let base_slot = base_slot?;
    // The six instructions before the base load would be:
    //   mov rax,[rbp+slot]; test rax,rax; jnz; mov edi,NPE; mov eax,RAISE; syscall
    if at < 6 {
        return None;
    }
    let w = &decoded[at - 6..at];
    let check_slot = match w[0].1 {
        Dec::LoadSlot {
            reg: Scratch::Rax,
            slot,
        } => slot,
        _ => return None,
    };
    let is_residual = check_slot == base_slot
        && matches!(w[1].1, Dec::TestRax)
        && matches!(w[2].1, Dec::Jmp8 { opcode: 0x75, .. })
        && matches!(
            w[3].1,
            Dec::MovImm32 {
                reg: Imm32Reg::Edi,
                imm: abi::EXC_TAG_NPE
            }
        )
        && matches!(
            w[4].1,
            Dec::MovImm32 {
                reg: Imm32Reg::Eax,
                imm: abi::SVC_RAISE
            }
        )
        && matches!(w[5].1, Dec::Syscall);
    is_residual.then_some(base_slot)
}

/// Verifies a whole module in parallel, merging per-function results in
/// function order (the report is identical for every thread count).
pub fn verify_module(em: &EmittedModule, platform: &Platform, threads: usize) -> VerifyReport {
    let n = em.functions.len();
    let workers = threads.max(1).min(n.max(1));
    let mut results: Vec<Option<FnResult>> = (0..n).map(|_| None).collect();
    if workers <= 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = Some(verify_function(&em.functions[i], &em.text, platform));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<FnResult>>> =
            (0..n).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = verify_function(&em.functions[i], &em.text, platform);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
                });
            }
        });
        for (slot, cell) in results.iter_mut().zip(slots) {
            *slot = cell
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    let mut report = VerifyReport {
        functions: n,
        sites: em.total_sites(),
        handlers: em.functions.iter().map(|f| f.handlers.len()).sum(),
        ..VerifyReport::default()
    };
    for (f, r) in em.functions.iter().zip(results) {
        let r = r.expect("every function verified");
        report.silent_read_sites += r.silent_read_sites;
        report
            .explicit_checks
            .push((f.name.clone(), r.explicit_checks));
        report.findings.extend(r.findings);
    }
    report
}

/// Cross-checks the binary explicit check census against the optimizer's
/// ledger expectation (claim (b), module side): per function, the number
/// of `test rax, rax` fingerprints must equal the checks the ledger says
/// remained explicit.
pub fn check_explicit_census(
    report: &VerifyReport,
    expected: &BTreeMap<String, u64>,
) -> Vec<VerifyFinding> {
    let mut findings = Vec::new();
    for (name, actual) in &report.explicit_checks {
        if let Some(&exp) = expected.get(name) {
            if exp != *actual {
                findings.push(VerifyFinding {
                    function: name.clone(),
                    byte_off: 0,
                    check: CheckId::NONE,
                    kind: FindingKind::ExplicitCountMismatch {
                        expected: exp,
                        actual: *actual,
                    },
                    detail: format!("ledger expects {exp} explicit checks, bytes carry {actual}"),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{emit_module, BinSite};
    use njc_codegen::lower_module;
    use njc_ir::{parse_function, Module, Type};

    fn demo() -> EmittedModule {
        let mut m = Module::new("demo");
        m.add_class("C", &[("x", Type::Int)]);
        m.add_function(
            parse_function(
                "func main() -> int {\n  locals v0: ref v1: int\nbb0:\n  v0 = new class0\n  v1 = const 5\n  putfield v0, field0, v1 [site]\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
            )
            .unwrap(),
        );
        emit_module(&lower_module(&m), 1)
    }

    #[test]
    fn clean_module_verifies_clean() {
        let em = demo();
        let report = verify_module(&em, &Platform::windows_ia32(), 2);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.sites, 2);
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let em = demo();
        let one = verify_module(&em, &Platform::windows_ia32(), 1);
        let eight = verify_module(&em, &Platform::windows_ia32(), 8);
        assert_eq!(one, eight);
    }

    #[test]
    fn corrupted_site_offset_is_found() {
        let mut em = demo();
        em.functions[0].sites[0].byte_off += 1; // point inside an instruction
        let report = verify_module(&em, &Platform::windows_ia32(), 1);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::SiteNotOnBoundary));
    }

    #[test]
    fn boundary_offset_site_is_rejected() {
        // A site whose static offset equals the trap-area size can never
        // fire: the fault lands one byte past the guard region.
        let mut em = demo();
        let f = &mut em.functions[0];
        let real = f.sites[0];
        f.sites[0] = BinSite {
            offset: Some(4096),
            ..real
        };
        let report = verify_module(&em, &Platform::windows_ia32(), 1);
        assert!(report.findings.iter().any(|f| matches!(
            f.kind,
            FindingKind::SiteOffsetMismatch { .. }
                | FindingKind::SiteOffsetOutsideTrapArea {
                    offset: 4096,
                    area: 4096
                }
        )));
    }

    #[test]
    fn census_mismatch_is_reported() {
        let em = demo();
        let report = verify_module(&em, &Platform::windows_ia32(), 1);
        let mut expected = BTreeMap::new();
        expected.insert("main".to_string(), 7u64);
        let findings = check_explicit_census(&report, &expected);
        assert_eq!(findings.len(), 1);
        assert!(matches!(
            findings[0].kind,
            FindingKind::ExplicitCountMismatch { expected: 7, .. }
        ));
    }
}
