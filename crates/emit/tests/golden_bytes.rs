//! Golden-byte tests: every [`njc_codegen::MInst`] opcode pins its exact
//! x86-64 expansion, byte for byte, so any encoding change is a conscious
//! decision — the binary exception-site tables, the verifier's pattern
//! matcher, and the committed fixture hashes all depend on these
//! sequences. Plus the decoder round-trip: over the whole workload and
//! committed-fixture corpus, decoding the emitted text and re-encoding
//! every instruction must reproduce the byte stream exactly.

use njc_codegen::{
    AluOp, ExceptionSiteTable, FaluOp, HandlerTable, MInst, MachineClass, MachineFunction,
    MachineModule, Reg,
};
use njc_emit::{decode_one, emit_module, Dec};
use njc_ir::{ClassId, Cond, ExceptionKind, FunctionId, Intrinsic, Type};

/// Little byte-string builder so expectations stay literal but readable.
#[derive(Default)]
struct B(Vec<u8>);

impl B {
    fn op(mut self, bs: &[u8]) -> Self {
        self.0.extend_from_slice(bs);
        self
    }
    fn d32(mut self, v: u32) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    fn d64(mut self, v: u64) -> Self {
        self.0.extend_from_slice(&v.to_le_bytes());
        self
    }
    /// The prologue of a function with no non-parameter slots.
    fn pro() -> Self {
        B::default().op(&[0x48, 0x31, 0xC0])
    }
    /// `mov rax, [rbp + 8*slot]`.
    fn ldax(self, slot: u32) -> Self {
        self.op(&[0x48, 0x8B, 0x85]).d32(slot * 8)
    }
    /// `mov rcx, [rbp + 8*slot]`.
    fn ldcx(self, slot: u32) -> Self {
        self.op(&[0x48, 0x8B, 0x8D]).d32(slot * 8)
    }
    /// `mov rdx, [rbp + 8*slot]`.
    fn lddx(self, slot: u32) -> Self {
        self.op(&[0x48, 0x8B, 0x95]).d32(slot * 8)
    }
    /// `mov [rbp + 8*slot], rax`.
    fn stax(self, slot: u32) -> Self {
        self.op(&[0x48, 0x89, 0x85]).d32(slot * 8)
    }
    /// `mov [rbp + 8*slot], rdx`.
    fn stdx(self, slot: u32) -> Self {
        self.op(&[0x48, 0x89, 0x95]).d32(slot * 8)
    }
}

fn r(i: u32) -> Reg {
    Reg(i)
}

/// Emits a single function (all slots are parameters, so the prologue is
/// just `xor rax, rax`) and returns its unpadded text bytes.
fn golden(code: Vec<MInst>, num_regs: usize) -> Vec<u8> {
    golden_ret(code, num_regs, Some(Type::Int))
}

fn golden_ret(code: Vec<MInst>, num_regs: usize, ret: Option<Type>) -> Vec<u8> {
    let f = MachineFunction {
        name: "f".to_string(),
        code,
        num_regs,
        num_params: num_regs,
        ret,
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let mm = MachineModule {
        functions: vec![f],
        classes: vec![],
    };
    let em = emit_module(&mm, 1);
    let f = &em.functions[0];
    em.text[f.text_off as usize..(f.text_off + f.text_len) as usize].to_vec()
}

#[test]
fn golden_prologue_zeroes_non_param_slots() {
    let got = golden_ret(vec![MInst::Ret { src: None }], 3, None);
    // Only slots 1 and 2 are zeroed: slot 0 is the parameter.
    let f = MachineFunction {
        name: "f".to_string(),
        code: vec![MInst::Ret { src: None }],
        num_regs: 3,
        num_params: 1,
        ret: None,
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let mm = MachineModule {
        functions: vec![f],
        classes: vec![],
    };
    let em = emit_module(&mm, 1);
    let with_zeroing = em.text[..em.functions[0].text_len as usize].to_vec();
    assert_eq!(
        with_zeroing,
        B::pro().stax(1).stax(2).op(&[0x48, 0x31, 0xC0, 0xC3]).0
    );
    // And with every slot a parameter, no zeroing stores at all.
    assert_eq!(got, B::pro().op(&[0x48, 0x31, 0xC0, 0xC3]).0);
}

#[test]
fn golden_load_imm_and_mov() {
    let got = golden(
        vec![
            MInst::LoadImm {
                dst: r(2),
                bits: 42,
            },
            MInst::Mov {
                dst: r(3),
                src: r(2),
            },
            MInst::Ret { src: Some(r(3)) },
        ],
        4,
    );
    let want = B::pro()
        .op(&[0x48, 0xB8])
        .d64(42)
        .stax(2)
        .ldax(2)
        .stax(3)
        .ldax(3)
        .op(&[0xC3]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_simple_alu_ops() {
    for (op, bytes) in [
        (AluOp::Add, &[0x48, 0x01, 0xC8][..]),
        (AluOp::Sub, &[0x48, 0x29, 0xC8]),
        (AluOp::Mul, &[0x48, 0x0F, 0xAF, 0xC1]),
        (AluOp::And, &[0x48, 0x21, 0xC8]),
        (AluOp::Or, &[0x48, 0x09, 0xC8]),
        (AluOp::Xor, &[0x48, 0x31, 0xC8]),
        (AluOp::Shl, &[0x48, 0xD3, 0xE0]),
        (AluOp::Shr, &[0x48, 0xD3, 0xF8]),
        (AluOp::Ushr, &[0x48, 0xD3, 0xE8]),
    ] {
        let got = golden(
            vec![MInst::Alu {
                op,
                dst: r(2),
                a: r(0),
                b: r(1),
            }],
            3,
        );
        let want = B::pro().ldax(0).ldcx(1).op(bytes).stax(2);
        assert_eq!(got, want.0, "{op:?}");
    }
}

#[test]
fn golden_div_expansion() {
    // Java semantics in full: zero-divisor raise, MIN/-1 wrap, cqo+idiv.
    let got = golden(
        vec![MInst::Alu {
            op: AluOp::Div,
            dst: r(2),
            a: r(0),
            b: r(1),
        }],
        3,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .op(&[0x48, 0x85, 0xC9]) // test rcx, rcx
        .op(&[0x75, 0x0C]) // jnz past the raise
        .op(&[0xBF]) // mov edi, ARITH
        .d32(2)
        .op(&[0xB8]) // mov eax, SVC_RAISE
        .d32(1)
        .op(&[0x0F, 0x05]) // syscall
        .op(&[0x48, 0xBA]) // movabs rdx, i64::MIN
        .d64(i64::MIN as u64)
        .op(&[0x48, 0x39, 0xD0]) // cmp rax, rdx
        .op(&[0x75, 0x08]) // jne → cqo
        .op(&[0x48, 0x83, 0xF9, 0xFF]) // cmp rcx, -1
        .op(&[0x75, 0x02]) // jne → cqo
        .op(&[0xEB, 0x05]) // jmp done (result is rax = MIN)
        .op(&[0x48, 0x99]) // cqo
        .op(&[0x48, 0xF7, 0xF9]) // idiv rcx
        .stax(2);
    assert_eq!(got, want.0);
}

#[test]
fn golden_rem_expansion() {
    let got = golden(
        vec![MInst::Alu {
            op: AluOp::Rem,
            dst: r(2),
            a: r(0),
            b: r(1),
        }],
        3,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .op(&[0x48, 0x85, 0xC9])
        .op(&[0x75, 0x0C])
        .op(&[0xBF])
        .d32(2)
        .op(&[0xB8])
        .d32(1)
        .op(&[0x0F, 0x05])
        .op(&[0x48, 0xBA])
        .d64(i64::MIN as u64)
        .op(&[0x48, 0x39, 0xD0])
        .op(&[0x75, 0x0B])
        .op(&[0x48, 0x83, 0xF9, 0xFF])
        .op(&[0x75, 0x05])
        .op(&[0x48, 0x31, 0xC0]) // MIN % -1 == 0
        .op(&[0xEB, 0x08])
        .op(&[0x48, 0x99])
        .op(&[0x48, 0xF7, 0xF9])
        .op(&[0x48, 0x89, 0xD0]) // remainder lives in rdx
        .stax(2);
    assert_eq!(got, want.0);
}

#[test]
fn golden_float_alu_ops() {
    for (op, sse) in [
        (FaluOp::Add, 0x58u8),
        (FaluOp::Sub, 0x5C),
        (FaluOp::Mul, 0x59),
        (FaluOp::Div, 0x5E),
    ] {
        let got = golden(
            vec![MInst::Falu {
                op,
                dst: r(2),
                a: r(0),
                b: r(1),
            }],
            3,
        );
        let want = B::pro()
            .op(&[0xF2, 0x0F, 0x10, 0x85])
            .d32(0)
            .op(&[0xF2, 0x0F, 0x10, 0x8D])
            .d32(8)
            .op(&[0xF2, 0x0F, sse, 0xC1])
            .op(&[0xF2, 0x0F, 0x11, 0x85])
            .d32(16);
        assert_eq!(got, want.0, "{op:?}");
    }
    // Remainder rides the runtime service, like a libm call.
    let got = golden(
        vec![MInst::Falu {
            op: FaluOp::Rem,
            dst: r(2),
            a: r(0),
            b: r(1),
        }],
        3,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(0)
        .op(&[0xBE])
        .d32(1)
        .op(&[0xB8])
        .d32(7) // SVC_FREM
        .op(&[0x0F, 0x05])
        .stax(2);
    assert_eq!(got, want.0);
}

#[test]
fn golden_neg() {
    let got = golden(
        vec![MInst::Neg {
            dst: r(1),
            a: r(0),
            float: false,
        }],
        2,
    );
    assert_eq!(got, B::pro().ldax(0).op(&[0x48, 0xF7, 0xD8]).stax(1).0);

    // Float negate is a sign-bit xor — bit-exact for NaN payloads.
    let got = golden(
        vec![MInst::Neg {
            dst: r(1),
            a: r(0),
            float: true,
        }],
        2,
    );
    let want = B::pro()
        .ldax(0)
        .op(&[0x48, 0xBA])
        .d64(0x8000_0000_0000_0000)
        .op(&[0x48, 0x31, 0xD0])
        .stax(1);
    assert_eq!(got, want.0);
}

#[test]
fn golden_cvt() {
    // Float → int saturates through the runtime (cvttsd2si would trap).
    let got = golden(
        vec![MInst::Cvt {
            dst: r(1),
            src: r(0),
            to_int: true,
        }],
        2,
    );
    let want = B::pro()
        .op(&[0xBE])
        .d32(0)
        .op(&[0xB8])
        .d32(6) // SVC_CVT_TO_INT
        .op(&[0x0F, 0x05])
        .stax(1);
    assert_eq!(got, want.0);

    // Int → float is a real cvtsi2sd.
    let got = golden(
        vec![MInst::Cvt {
            dst: r(1),
            src: r(0),
            to_int: false,
        }],
        2,
    );
    let want = B::pro()
        .ldax(0)
        .op(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0])
        .op(&[0xF2, 0x0F, 0x11, 0x85])
        .d32(8);
    assert_eq!(got, want.0);
}

#[test]
fn golden_fcmp_and_operand_swap() {
    let got = golden(
        vec![MInst::Fcmp {
            dst: r(2),
            cond: Cond::Lt,
            a: r(0),
            b: r(1),
        }],
        3,
    );
    let want = B::pro()
        .op(&[0xF2, 0x0F, 0x10, 0x85])
        .d32(0)
        .op(&[0xF2, 0x0F, 0x10, 0x8D])
        .d32(8)
        .op(&[0xF2, 0x0F, 0xC2, 0xC1, 0x01]) // cmpltsd
        .op(&[0x66, 0x48, 0x0F, 0x7E, 0xC0]) // movq rax, xmm0
        .op(&[0x48, 0x83, 0xE0, 0x01]) // and rax, 1
        .stax(2);
    assert_eq!(got, want.0);

    // x > y flips to y < x: the operand loads swap, the predicate stays.
    let got = golden(
        vec![MInst::Fcmp {
            dst: r(2),
            cond: Cond::Gt,
            a: r(0),
            b: r(1),
        }],
        3,
    );
    let want = B::pro()
        .op(&[0xF2, 0x0F, 0x10, 0x85])
        .d32(8)
        .op(&[0xF2, 0x0F, 0x10, 0x8D])
        .d32(0)
        .op(&[0xF2, 0x0F, 0xC2, 0xC1, 0x01])
        .op(&[0x66, 0x48, 0x0F, 0x7E, 0xC0])
        .op(&[0x48, 0x83, 0xE0, 0x01])
        .stax(2);
    assert_eq!(got, want.0);
}

#[test]
fn golden_memory_accesses() {
    // Static field load: the access instruction is `mov rdx, [rax+disp]`.
    let got = golden(
        vec![MInst::Load {
            dst: r(1),
            base: r(0),
            index: None,
            imm: 8,
        }],
        2,
    );
    let want = B::pro().ldax(0).op(&[0x48, 0x8B, 0x90]).d32(8).stdx(1);
    assert_eq!(got, want.0);

    // Index-scaled array load: `mov rdx, [rax + rcx*8 + disp]`.
    let got = golden(
        vec![MInst::Load {
            dst: r(2),
            base: r(0),
            index: Some(r(1)),
            imm: 16,
        }],
        3,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .op(&[0x48, 0x8B, 0x94, 0xC8])
        .d32(16)
        .stdx(2);
    assert_eq!(got, want.0);

    // A displacement past i32::MAX folds into the base with wrapping
    // 64-bit arithmetic (the wild "BigOffset" probes).
    let got = golden(
        vec![MInst::Load {
            dst: r(1),
            base: r(0),
            index: None,
            imm: 0x8000_0000,
        }],
        2,
    );
    let want = B::pro()
        .ldax(0)
        .op(&[0x48, 0xBA])
        .d64(0x8000_0000)
        .op(&[0x48, 0x01, 0xD0]) // add rax, rdx
        .op(&[0x48, 0x8B, 0x90])
        .d32(0)
        .stdx(1);
    assert_eq!(got, want.0);

    // Static store: value staged in rdx, `mov [rax+disp], rdx`.
    let got = golden(
        vec![MInst::Store {
            src: r(1),
            base: r(0),
            index: None,
            imm: 8,
        }],
        2,
    );
    let want = B::pro().ldax(0).lddx(1).op(&[0x48, 0x89, 0x90]).d32(8);
    assert_eq!(got, want.0);

    // Index-scaled store.
    let got = golden(
        vec![MInst::Store {
            src: r(2),
            base: r(0),
            index: Some(r(1)),
            imm: 16,
        }],
        3,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .lddx(2)
        .op(&[0x48, 0x89, 0x94, 0xC8])
        .d32(16);
    assert_eq!(got, want.0);
}

#[test]
fn golden_branches() {
    // Forward conditional + backward unconditional, rel32s patched.
    let got = golden(
        vec![
            MInst::Br {
                cond: Cond::Eq,
                a: r(0),
                b: r(1),
                target: 2,
            },
            MInst::Jmp { target: 0 },
            MInst::Ret { src: Some(r(0)) },
        ],
        2,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .op(&[0x48, 0x39, 0xC8]) // cmp rax, rcx
        .op(&[0x0F, 0x84]) // je
        .d32(5) // over the jmp, to vpc 2
        .op(&[0xE9]) // jmp
        .d32((-28i32) as u32) // back to vpc 0
        .ldax(0)
        .op(&[0xC3]);
    assert_eq!(got, want.0);

    // Every condition's jcc opcode byte.
    for (cond, cc) in [
        (Cond::Eq, 0x84u8),
        (Cond::Ne, 0x85),
        (Cond::Lt, 0x8C),
        (Cond::Le, 0x8E),
        (Cond::Gt, 0x8F),
        (Cond::Ge, 0x8D),
    ] {
        let got = golden(
            vec![
                MInst::Br {
                    cond,
                    a: r(0),
                    b: r(1),
                    target: 1,
                },
                MInst::Ret { src: Some(r(0)) },
            ],
            2,
        );
        assert_eq!(got[20..22], [0x0F, cc], "{cond:?}");
    }
}

#[test]
fn golden_explicit_checks() {
    // THE explicit null check fingerprint: `test rax, rax` appears here
    // and nowhere else — the verifier's census counts on it.
    let got = golden(vec![MInst::CheckNull { reg: r(0) }], 1);
    let want = B::pro()
        .ldax(0)
        .op(&[0x48, 0x85, 0xC0]) // test rax, rax
        .op(&[0x75, 0x0C]) // jnz past the raise
        .op(&[0xBF])
        .d32(0) // EXC_TAG_NPE
        .op(&[0xB8])
        .d32(1) // SVC_RAISE
        .op(&[0x0F, 0x05]);
    assert_eq!(got, want.0);

    // Bounds check folds both bounds into one unsigned branch.
    let got = golden(
        vec![MInst::CheckBounds {
            index: r(0),
            length: r(1),
        }],
        2,
    );
    let want = B::pro()
        .ldax(0)
        .ldcx(1)
        .op(&[0x48, 0x39, 0xC8]) // cmp rax, rcx
        .op(&[0x72, 0x0C]) // jb past the raise
        .op(&[0xBF])
        .d32(1) // EXC_TAG_BOUNDS
        .op(&[0xB8])
        .d32(1)
        .op(&[0x0F, 0x05]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_allocation_and_services() {
    let got = golden(
        vec![MInst::NewObj {
            dst: r(0),
            class: ClassId::new(3),
        }],
        1,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(3)
        .op(&[0xB8])
        .d32(2) // SVC_NEWOBJ
        .op(&[0x0F, 0x05])
        .stax(0);
    assert_eq!(got, want.0);

    let got = golden(
        vec![MInst::NewArr {
            dst: r(1),
            elem: Type::Int,
            len: r(0),
        }],
        2,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(1) // element tag: Int
        .op(&[0xBE])
        .d32(0) // length slot
        .op(&[0xB8])
        .d32(3) // SVC_NEWARR
        .op(&[0x0F, 0x05])
        .stax(1);
    assert_eq!(got, want.0);

    let got = golden(
        vec![MInst::Math {
            op: Intrinsic::Sqrt,
            dst: r(1),
            src: r(0),
        }],
        2,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(1) // Sqrt tag
        .op(&[0xBE])
        .d32(0)
        .op(&[0xB8])
        .d32(5) // SVC_MATH
        .op(&[0x0F, 0x05])
        .stax(1);
    assert_eq!(got, want.0);

    let got = golden(
        vec![MInst::Observe {
            src: r(0),
            ty: Type::Float,
        }],
        1,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(2) // Float tag
        .op(&[0xBE])
        .d32(0)
        .op(&[0xB8])
        .d32(4) // SVC_OBSERVE
        .op(&[0x0F, 0x05]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_throw() {
    let got = golden(
        vec![MInst::Throw {
            kind: ExceptionKind::Arithmetic,
        }],
        1,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(2)
        .op(&[0xB8])
        .d32(1)
        .op(&[0x0F, 0x05]);
    assert_eq!(got, want.0);

    // User exceptions carry their code in rdx.
    let got = golden(
        vec![MInst::Throw {
            kind: ExceptionKind::User(9),
        }],
        1,
    );
    let want = B::pro()
        .op(&[0xBF])
        .d32(4)
        .op(&[0x48, 0xBA])
        .d64(9)
        .op(&[0xB8])
        .d32(1)
        .op(&[0x0F, 0x05]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_static_call() {
    let callee = MachineFunction {
        name: "callee".to_string(),
        code: vec![MInst::Ret { src: Some(r(0)) }],
        num_regs: 1,
        num_params: 1,
        ret: Some(Type::Int),
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let main = MachineFunction {
        name: "main".to_string(),
        code: vec![
            MInst::LoadImm { dst: r(0), bits: 7 },
            MInst::Call {
                target: FunctionId::new(0),
                args: vec![r(0)],
                dst: Some(r(1)),
            },
            MInst::Ret { src: Some(r(1)) },
        ],
        num_regs: 2,
        num_params: 2,
        ret: Some(Type::Int),
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let mm = MachineModule {
        functions: vec![callee, main],
        classes: vec![],
    };
    let em = emit_module(&mm, 1);
    let mf = &em.functions[1];
    assert_eq!(mf.text_off, 16); // callee is 11 bytes, padded to 16
    let got = em.text[mf.text_off as usize..(mf.text_off + mf.text_len) as usize].to_vec();
    let want = B::pro()
        .op(&[0x48, 0xB8])
        .d64(7)
        .stax(0)
        .ldax(0)
        .stax(2) // arg staged past the caller frame
        .op(&[0x48, 0x8D, 0xAD]) // lea rbp, [rbp + 16]
        .d32(16)
        .op(&[0xE8]) // call rel32 → callee at absolute 0
        .d32((-62i32) as u32)
        .op(&[0x48, 0x8D, 0xAD]) // lea rbp, [rbp - 16]
        .d32((-16i32) as u32)
        .stax(1) // callee returns a value → store it
        .ldax(1)
        .op(&[0xC3]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_void_call_stores_nothing() {
    // A callee with no return type must leave the destination untouched,
    // exactly like the simulator.
    let callee = MachineFunction {
        name: "callee".to_string(),
        code: vec![MInst::Ret { src: None }],
        num_regs: 0,
        num_params: 0,
        ret: None,
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let main = MachineFunction {
        name: "main".to_string(),
        code: vec![
            MInst::Call {
                target: FunctionId::new(0),
                args: vec![],
                dst: Some(r(0)),
            },
            MInst::Ret { src: Some(r(0)) },
        ],
        num_regs: 1,
        num_params: 1,
        ret: Some(Type::Int),
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let mm = MachineModule {
        functions: vec![callee, main],
        classes: vec![],
    };
    let em = emit_module(&mm, 1);
    let mf = &em.functions[1];
    let got = em.text[mf.text_off as usize..(mf.text_off + mf.text_len) as usize].to_vec();
    let want = B::pro()
        .op(&[0x48, 0x8D, 0xAD])
        .d32(8)
        .op(&[0xE8])
        .d32((-31i32) as u32)
        .op(&[0x48, 0x8D, 0xAD])
        .d32((-8i32) as u32)
        // no store: the callee is void
        .ldax(0)
        .op(&[0xC3]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_virtual_call() {
    let target = MachineFunction {
        name: "m_impl".to_string(),
        code: vec![MInst::Ret { src: Some(r(0)) }],
        num_regs: 1,
        num_params: 1,
        ret: Some(Type::Int),
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let main = MachineFunction {
        name: "main".to_string(),
        code: vec![
            MInst::CallVirtual {
                method: "m".to_string(),
                receiver: r(0),
                args: vec![r(1)],
                dst: Some(r(1)),
            },
            MInst::Ret { src: Some(r(1)) },
        ],
        num_regs: 2,
        num_params: 2,
        ret: Some(Type::Int),
        sites: ExceptionSiteTable::new(),
        handlers: HandlerTable::default(),
    };
    let mut methods = std::collections::HashMap::new();
    methods.insert("m".to_string(), 0usize);
    let mm = MachineModule {
        functions: vec![target, main],
        classes: vec![MachineClass { size: 16, methods }],
    };
    let em = emit_module(&mm, 1);
    let mf = &em.functions[1];
    let got = em.text[mf.text_off as usize..(mf.text_off + mf.text_len) as usize].to_vec();
    let want = B::pro()
        // Dispatch header load — THE trapping access of a virtual call.
        .ldax(0)
        .op(&[0x48, 0x8B, 0x90])
        .d32(0)
        // Receiver + args staged into the callee frame.
        .ldax(0)
        .stax(2)
        .ldax(1)
        .stax(3)
        .op(&[0x48, 0x8D, 0xAD])
        .d32(16)
        .op(&[0xBF])
        .d32(0) // method id 0 ("m")
        .op(&[0xB8])
        .d32(8) // SVC_CALLV
        .op(&[0x0F, 0x05])
        .op(&[0x48, 0x8D, 0xAD])
        .d32((-16i32) as u32)
        .stax(1)
        .ldax(1)
        .op(&[0xC3]);
    assert_eq!(got, want.0);
}

#[test]
fn golden_return_expansion() {
    let got = golden_ret(vec![MInst::Ret { src: None }], 1, None);
    assert_eq!(got, B::pro().op(&[0x48, 0x31, 0xC0, 0xC3]).0);

    let got = golden(vec![MInst::Ret { src: Some(r(0)) }], 1);
    assert_eq!(got, B::pro().ldax(0).op(&[0xC3]).0);
}

// ---------------------------------------------------------------------
// Decoder round-trip over the full corpus.
// ---------------------------------------------------------------------

/// Replicates the CLI's `.njc` fixture loader.
fn load_fixture(path: &std::path::Path) -> njc_ir::Module {
    let source = std::fs::read_to_string(path).unwrap();
    let mut module = njc_ir::Module::new("fixture");
    for c in 0..8 {
        let fields: Vec<(String, Type)> = (0..8).map(|f| (format!("f{f}"), Type::Int)).collect();
        let refs: Vec<(&str, Type)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        module.add_class(format!("C{c}"), &refs);
    }
    let mut chunks: Vec<String> = Vec::new();
    for line in source.lines() {
        if line.trim_start().starts_with("func ") {
            chunks.push(String::new());
        }
        if let Some(cur) = chunks.last_mut() {
            cur.push_str(line);
            cur.push('\n');
        }
    }
    for chunk in &chunks {
        module.add_function(njc_ir::parse_function(chunk).unwrap());
    }
    njc_ir::verify_module(&module).unwrap();
    module
}

/// Decodes the entire text stream and re-encodes every instruction: the
/// verifier's decoder must re-derive the exact byte stream the encoder
/// produced, padding included.
fn assert_round_trips(em: &njc_emit::EmittedModule, what: &str) {
    let mut rebuilt = Vec::with_capacity(em.text.len());
    let mut pos = 0usize;
    let mut insts = 0usize;
    while pos < em.text.len() {
        let (dec, len) = decode_one(&em.text, pos)
            .unwrap_or_else(|e| panic!("{what}: undecodable at {pos}: {e:?}"));
        dec.encode(&mut rebuilt);
        assert_eq!(
            rebuilt.len(),
            pos + len,
            "{what}: {dec:?} re-encoded to a different length"
        );
        pos += len;
        insts += 1;
    }
    assert_eq!(rebuilt, em.text, "{what}: re-encoded bytes differ");
    assert!(insts > 0);
    // Pad bytes only ever appear between functions, never inside one.
    for f in &em.functions {
        let code = &em.text[f.text_off as usize..(f.text_off + f.text_len) as usize];
        let mut p = 0usize;
        while p < code.len() {
            let (dec, len) = decode_one(code, p).unwrap();
            assert!(
                !matches!(dec, Dec::Pad),
                "{what}: pad byte inside {}",
                f.name
            );
            p += len;
        }
    }
}

#[test]
fn decoder_round_trips_whole_corpus() {
    use njc_opt::{optimize_module, ConfigKind};

    let platform = njc_arch::Platform::windows_ia32();
    // Every workload under the paper's full configuration...
    for w in njc_workloads::all() {
        let mut m = w.module.clone();
        optimize_module(&mut m, &platform, &ConfigKind::Full.to_config(&platform));
        let em = emit_module(&njc_codegen::lower_module(&m), 2);
        assert_round_trips(&em, w.name);
    }
    // ...and every committed difftest fixture, unoptimized (maximally
    // explicit code exercises the check expansions).
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(fixtures).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "njc") {
            let m = load_fixture(&path);
            let em = emit_module(&njc_codegen::lower_module(&m), 2);
            assert_round_trips(&em, &path.display().to_string());
            seen += 1;
        }
    }
    assert!(
        seen >= 3,
        "expected the committed fixture corpus, saw {seen}"
    );
}
