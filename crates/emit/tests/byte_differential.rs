//! End-to-end byte-level differential: every workload, on every platform
//! trap model, under representative optimizer configurations, is lowered,
//! emitted to real x86-64 bytes, round-tripped through the ELF writer,
//! proven clean by the binary verifier, and executed instruction-by-
//! instruction by the byte interpreter — whose observable behavior must
//! match the costed machine simulator exactly.

use njc_arch::Platform;
use njc_codegen::{lower_module, Machine};
use njc_emit::{emit_module, parse_elf, verify_module, write_elf, ByteMachine};
use njc_opt::{optimize_module, ConfigKind};

fn platforms() -> [Platform; 3] {
    [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ]
}

/// Sound configurations spanning the interesting emission shapes:
/// all-explicit, trivially converted, and fully implicit.
fn kinds(platform: &Platform) -> Vec<ConfigKind> {
    if platform.trap.traps_on_read {
        vec![
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Full,
        ]
    } else {
        vec![
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
        ]
    }
}

#[test]
fn bytes_match_simulator_on_every_workload() {
    let mut cells = 0usize;
    for platform in platforms() {
        for kind in kinds(&platform) {
            for w in njc_workloads::all() {
                let mut m = w.module.clone();
                optimize_module(&mut m, &platform, &kind.to_config(&platform));
                let mm = lower_module(&m);
                let em = emit_module(&mm, 4);

                // Emission is deterministic across thread counts.
                assert_eq!(
                    em,
                    emit_module(&mm, 1),
                    "{} on {}: thread-count-dependent emission",
                    w.name,
                    platform.name
                );

                // The ELF container preserves everything.
                let parsed = parse_elf(&write_elf(&em)).expect("elf parses");
                assert_eq!(em, parsed, "{}: elf round-trip", w.name);

                // The binary verifier proves the artifact clean.
                let report = verify_module(&em, &platform, 4);
                assert!(
                    report.findings.is_empty(),
                    "{} on {} ({:?}): {:?}",
                    w.name,
                    platform.name,
                    kind,
                    report.findings
                );

                // Byte-level execution matches the simulator observably.
                let sim = Machine::new(&mm, platform).run(w.entry);
                let byte = ByteMachine::new(&em, platform).run(w.entry);
                match (&sim, &byte) {
                    (Ok(s), Ok(b)) => {
                        assert_eq!(s.result, b.result, "{}: result", w.name);
                        assert_eq!(s.exception, b.exception, "{}: exception", w.name);
                        assert_eq!(s.trace, b.trace, "{}: trace", w.name);
                        assert_eq!(
                            s.stats.explicit_null_checks, b.stats.explicit_null_checks,
                            "{} on {} ({:?}): explicit checks",
                            w.name, platform.name, kind
                        );
                        assert_eq!(
                            s.stats.traps_taken, b.stats.traps_taken,
                            "{} on {} ({:?}): traps",
                            w.name, platform.name, kind
                        );
                        assert_eq!(
                            s.stats.missed_npes, b.stats.missed_npes,
                            "{} on {} ({:?}): missed NPEs",
                            w.name, platform.name, kind
                        );
                    }
                    (Err(se), Err(be)) => {
                        assert_eq!(
                            std::mem::discriminant(se),
                            std::mem::discriminant(be),
                            "{}: fault kind ({se:?} vs {be:?})",
                            w.name
                        );
                    }
                    _ => panic!(
                        "{} on {} ({:?}): simulator {sim:?} vs bytes {byte:?}",
                        w.name, platform.name, kind
                    ),
                }
                cells += 1;
            }
        }
    }
    assert!(cells >= 100, "expected a real matrix, ran {cells} cells");
}
