//! # njc-jit — compile-and-run driver for the experiments
//!
//! Glues the pieces together the way the paper's evaluation does: a
//! workload is compiled under one of the [`ConfigKind`] configurations
//! (with thread-CPU per-pass metering for the Tables 3–5 compile-time
//! experiments, via [`njc_observe::PassTimer`] — matching the pipeline's
//! own timers, so a concurrent sibling can't inflate the numbers),
//! executed on the [`njc_vm`] interpreter, and checked for observational
//! equivalence against its unoptimized form.
//!
//! ```
//! use njc_arch::Platform;
//! use njc_jit::{compile, execute, jbm_index};
//! use njc_opt::ConfigKind;
//!
//! let w = &njc_workloads::jbytemark()[5]; // Assignment
//! let p = Platform::windows_ia32();
//! let full = compile(w, &p, ConfigKind::Full);
//! let base = compile(w, &p, ConfigKind::NoNullOptNoTrap);
//! let out_full = execute(&full, &p).unwrap();
//! let out_base = execute(&base, &p).unwrap();
//! out_full.assert_equivalent(&out_base).unwrap();
//! assert!(out_full.stats.cycles < out_base.stats.cycles);
//! let _ = jbm_index(w.work_units, out_full.stats.cycles, &p);
//! ```

use std::time::Duration;

use njc_analysis::ValidationReport;
use njc_arch::Platform;
use njc_observe::PassTimer;
use njc_opt::{optimize_module, ConfigKind, OptConfig, PipelineStats};
use njc_vm::{Fault, Outcome, Vm, VmConfig};
use njc_workloads::Workload;

pub use njc_opt::ConfigKind as Config;

/// A workload compiled under one configuration.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Workload name.
    pub name: &'static str,
    /// The configuration used.
    pub kind: ConfigKind,
    /// The optimized module.
    pub module: njc_ir::Module,
    /// Per-pass statistics and timings.
    pub stats: PipelineStats,
    /// Total compile time, measured as this thread's CPU time (falling back
    /// to wall clock off Linux) so the figure agrees with the per-pass
    /// [`PassTimer`] breakdown in [`PipelineStats`].
    pub wall: Duration,
}

/// Compiles `workload` under `kind` on `platform`.
pub fn compile(workload: &Workload, platform: &Platform, kind: ConfigKind) -> Compiled {
    compile_config(workload, platform, kind, &kind.to_config(platform))
}

/// [`compile`] with an explicit, possibly customized [`OptConfig`] — the
/// compile-time bench uses this to sweep [`OptConfig::threads`] while
/// keeping `kind` as the display label.
pub fn compile_config(
    workload: &Workload,
    platform: &Platform,
    kind: ConfigKind,
    config: &OptConfig,
) -> Compiled {
    let mut module = workload.module.clone();
    let t = PassTimer::start();
    let stats = optimize_module(&mut module, platform, config);
    let wall = t.elapsed();
    Compiled {
        name: workload.name,
        kind,
        module,
        stats,
        wall,
    }
}

/// Compiles `workload` under `kind` with the static validator running
/// between passes (debug builds of a JIT would ship this mode): any
/// soundness violation a pass introduces becomes an `Err` naming the pass.
///
/// # Errors
/// One line per validator finding, each tagged `[stage]`.
pub fn compile_validated(
    workload: &Workload,
    platform: &Platform,
    kind: ConfigKind,
) -> Result<Compiled, String> {
    let mut module = workload.module.clone();
    let config = OptConfig {
        validate: true,
        ..kind.to_config(platform)
    };
    let t = PassTimer::start();
    let stats = njc_opt::optimize_module_validated(&mut module, platform, &config)?;
    let wall = t.elapsed();
    Ok(Compiled {
        name: workload.name,
        kind,
        module,
        stats,
        wall,
    })
}

/// Statically validates an already-compiled workload against the trap
/// model of the machine it will run on — the end-to-end coverage proof,
/// without executing anything.
pub fn validate_compiled(compiled: &Compiled, platform: &Platform) -> ValidationReport {
    njc_analysis::validate_module(&compiled.module, platform.trap)
}

/// Executes a compiled workload on the platform's VM.
///
/// # Errors
/// Propagates VM [`Fault`]s — which indicate compiler bugs, not benchmark
/// outcomes.
pub fn execute(compiled: &Compiled, platform: &Platform) -> Result<Outcome, Fault> {
    Vm::new(&compiled.module, *platform)
        .with_config(VmConfig::default())
        .run("main", &[])
}

/// Executes the *unoptimized* workload (full explicit checks, as built).
///
/// # Errors
/// Propagates VM [`Fault`]s.
pub fn execute_unoptimized(workload: &Workload, platform: &Platform) -> Result<Outcome, Fault> {
    Vm::new(&workload.module, *platform).run("main", &[])
}

/// Whether a configuration is *expected* to violate the Java specification
/// (only the §5.4 "Illegal Implicit" experiment).
pub fn config_may_miss_npes(kind: ConfigKind) -> bool {
    kind == ConfigKind::AixIllegalImplicit
}

/// Compiles under `kind`, runs both optimized and unoptimized forms, and
/// checks observational equivalence. Returns the optimized outcome.
///
/// # Errors
/// Returns a description when the optimized program faults or observably
/// diverges (except under [`config_may_miss_npes`] configurations, where
/// missed NPEs are tolerated by design).
pub fn check_equivalence(
    workload: &Workload,
    platform: &Platform,
    kind: ConfigKind,
) -> Result<Outcome, String> {
    let compiled = compile(workload, platform, kind);
    let opt = execute(&compiled, platform)
        .map_err(|f| format!("{} [{kind:?}]: optimized run faulted: {f}", workload.name))?;
    let base = execute_unoptimized(workload, platform)
        .map_err(|f| format!("{}: baseline run faulted: {f}", workload.name))?;
    match base.assert_equivalent(&opt) {
        Ok(()) => Ok(opt),
        Err(e) if config_may_miss_npes(kind) && opt.stats.missed_npes > 0 => {
            // The Illegal Implicit configuration knowingly misses NPEs; a
            // divergence accompanied by recorded misses is the documented
            // §5.4 behaviour.
            let _ = e;
            Ok(opt)
        }
        Err(e) => Err(format!("{} [{kind:?}]: {e}", workload.name)),
    }
}

/// jBYTEmark-style index: abstract work units retired per simulated
/// second, scaled down for readable magnitudes (larger is better).
pub fn jbm_index(work_units: u64, cycles: u64, platform: &Platform) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = platform.cycles_to_seconds(cycles);
    work_units as f64 / seconds / 1000.0
}

/// SPECjvm98-style seconds (smaller is better). The simulated run is much
/// smaller than the real benchmark, so the cycle count is scaled by a
/// constant factor to land in a readable range; only ratios matter.
pub fn spec_seconds(cycles: u64, platform: &Platform) -> f64 {
    platform.cycles_to_seconds(cycles) * 400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment() -> Workload {
        njc_workloads::jbytemark().remove(5)
    }

    #[test]
    fn compile_records_timings() {
        let w = assignment();
        let p = Platform::windows_ia32();
        let c = compile(&w, &p, ConfigKind::Full);
        assert!(c.wall > Duration::ZERO);
        assert!(c.stats.nullcheck_time() > Duration::ZERO);
        assert!(c.stats.total_time() >= c.stats.nullcheck_time());
    }

    #[test]
    fn full_config_beats_baseline_on_assignment() {
        let w = assignment();
        let p = Platform::windows_ia32();
        let full = check_equivalence(&w, &p, ConfigKind::Full).unwrap();
        let base = check_equivalence(&w, &p, ConfigKind::NoNullOptNoTrap).unwrap();
        assert!(
            full.stats.cycles < base.stats.cycles,
            "full {} !< base {}",
            full.stats.cycles,
            base.stats.cycles
        );
        assert!(full.stats.explicit_null_checks < base.stats.explicit_null_checks);
    }

    #[test]
    fn index_larger_for_fewer_cycles() {
        let p = Platform::windows_ia32();
        assert!(jbm_index(100, 1_000_000, &p) > jbm_index(100, 2_000_000, &p));
        assert!(spec_seconds(2_000_000, &p) > spec_seconds(1_000_000, &p));
        assert_eq!(jbm_index(100, 0, &p), 0.0, "zero cycles is not infinite");
    }

    #[test]
    fn only_illegal_implicit_may_miss_npes() {
        for kind in [
            ConfigKind::Full,
            ConfigKind::Phase1Only,
            ConfigKind::OldNullCheck,
            ConfigKind::NoNullOptTrap,
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::RefJit,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
            ConfigKind::AixNoNullOpt,
        ] {
            assert!(!config_may_miss_npes(kind), "{kind:?}");
        }
        assert!(config_may_miss_npes(ConfigKind::AixIllegalImplicit));
    }

    #[test]
    fn validated_compile_accepts_full_and_flags_illegal_implicit() {
        let w = assignment();
        let p = Platform::windows_ia32();
        let c = compile_validated(&w, &p, ConfigKind::Full).unwrap();
        assert!(validate_compiled(&c, &p).is_sound());

        let aix = Platform::aix_ppc();
        let err = compile_validated(&w, &aix, ConfigKind::AixIllegalImplicit)
            .expect_err("illegal implicit must fail static validation");
        assert!(err.contains("missed-exception"), "{err}");
        // The same verdict from the end-to-end module check.
        let c = compile(&w, &aix, ConfigKind::AixIllegalImplicit);
        let report = validate_compiled(&c, &aix);
        assert!(
            report.count(njc_analysis::ViolationKind::MissedException) > 0,
            "{report}"
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let w = assignment();
        let p = Platform::windows_ia32();
        let a = compile(&w, &p, ConfigKind::Full);
        let b = compile(&w, &p, ConfigKind::Full);
        assert_eq!(a.module, b.module, "same input, same optimized module");
    }

    #[test]
    fn unoptimized_run_matches_noopt_compile_closely() {
        // The NoNullOptNoTrap configuration still runs the *other*
        // optimizations, so it should never be slower than the raw module.
        let w = assignment();
        let p = Platform::windows_ia32();
        let raw = execute_unoptimized(&w, &p).unwrap();
        let compiled = compile(&w, &p, ConfigKind::NoNullOptNoTrap);
        let opt = execute(&compiled, &p).unwrap();
        assert!(opt.stats.cycles <= raw.stats.cycles);
        raw.assert_equivalent(&opt).unwrap();
    }
}
