//! The paper's Figure 1 / Figure 7 story, end to end.
//!
//! A small virtual method is devirtualized and inlined. Because the
//! inlined body only touches the receiver on one branch, an explicit
//! `nullcheck` must survive inlining (Figure 1) — and the architecture
//! dependent optimization then pushes it down each path: implicit
//! (hardware trap) where the object is dereferenced, explicit only where
//! it is not (Figure 7).
//!
//! ```text
//! cargo run --example inlining_traps
//! ```

use njc_arch::Platform;
use njc_jit::{compile, execute, execute_unoptimized};
use njc_opt::ConfigKind;
use njc_workloads::{micro, Suite, Workload};

fn main() {
    let w = Workload {
        name: "figure1",
        suite: Suite::Micro,
        module: micro::figure1(),
        entry: "main",
        work_units: 1,
    };
    let p = Platform::windows_ia32();

    println!("== source (before optimization) ==");
    let main_id = w.module.function_by_name("main").unwrap();
    println!("{}", w.module.function(main_id));

    for kind in [
        ConfigKind::NoNullOptNoTrap,
        ConfigKind::OldNullCheck,
        ConfigKind::Full,
    ] {
        let compiled = compile(&w, &p, kind);
        let out = execute(&compiled, &p).unwrap();
        println!(
            "{:20} cycles={:8}  explicit-checks={:5}  trap-covered-sites={:5}  inlined={} devirtualized={}",
            format!("{kind:?}"),
            out.stats.cycles,
            out.stats.explicit_null_checks,
            out.stats.implicit_site_hits,
            compiled.stats.inline.inlined,
            compiled.stats.inline.devirtualized,
        );
    }

    // The null-receiver call inside the try region still throws its NPE in
    // every configuration — the Figure 1 requirement.
    let base = execute_unoptimized(&w, &p).unwrap();
    let full = execute(&compile(&w, &p, ConfigKind::Full), &p).unwrap();
    base.assert_equivalent(&full).unwrap();
    println!(
        "\nobservable outcome identical across configurations: {:?} (trace {:?})",
        full.result, full.trace
    );
}
