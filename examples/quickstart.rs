//! Quickstart: build a small program, run the two-phase null check
//! optimization, and watch the checks disappear.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use njc_arch::Platform;
use njc_core::ctx::AnalysisCtx;
use njc_core::{phase1, phase2};
use njc_ir::{parse_function, Module, Type};
use njc_vm::{run_module, Value};

fn main() {
    // A module with one class and one method summing a field in a loop —
    // the paper's Figure 4 situation: the object's first access is inside
    // the loop.
    let mut module = Module::new("quickstart");
    module.add_class("Counter", &[("count", Type::Int)]);
    let src = "\
func sum(v0: ref, v1: int) -> int {
  locals v2: int v3: int
bb0:
  v2 = const 0
  goto bb1
bb1:
  nullcheck v0
  v3 = getfield v0, field0
  v2 = add.int v2, v3
  if lt v2, v1 then bb1 else bb2
bb2:
  return v2
}";
    let mut func = parse_function(src).unwrap();
    println!("== before optimization ==\n{func}");

    let platform = Platform::windows_ia32();
    let ctx = AnalysisCtx::new(&module, platform.trap);

    // Phase 1 (architecture independent): the loop-invariant null check
    // moves backward, out of the loop.
    let s1 = phase1::run(&ctx, &mut func);
    println!(
        "== after phase 1 == ({} eliminated, {} inserted)\n{func}",
        s1.eliminated, s1.inserted
    );

    // Phase 2 (architecture dependent): the hoisted check moves forward to
    // the access and becomes a hardware trap — zero instructions.
    let s2 = phase2::run(&ctx, &mut func);
    println!(
        "== after phase 2 == ({} converted to implicit, {} explicit remain)\n{func}",
        s2.converted_implicit,
        njc_core::phase2::count_explicit(&func)
    );

    // Run it: the driver allocates a Counter with count = 3 and calls sum.
    module.add_function(func);
    let driver = parse_function(
        "func main() -> int {\n  locals v0: ref v1: int v2: int v3: int\nbb0:\n  v0 = new class0\n  v1 = const 3\n  putfield v0, field0, v1\n  v2 = const 30\n  v3 = call fn0(v0, v2)\n  observe v3\n  return v3\n}",
    )
    .unwrap();
    module.add_function(driver);

    let out = run_module(&module, platform, "main", &[]).unwrap();
    println!("result = {:?}", out.result);
    println!(
        "cycles = {}, explicit null checks executed = {}, hardware-covered sites crossed = {}",
        out.stats.cycles, out.stats.explicit_null_checks, out.stats.implicit_site_hits
    );
    assert_eq!(out.result, Some(Value::Int(30)));
    assert_eq!(out.stats.explicit_null_checks, 0, "all checks are free now");
}
