//! Prints a compact version of the paper's headline comparison (Table 1 /
//! Table 2 orderings) for a few representative workloads — a fast preview
//! of what `cargo run --release -p njc-bench --bin report` produces in
//! full.
//!
//! ```text
//! cargo run --release --example paper_tables
//! ```

use njc_arch::Platform;
use njc_jit::{compile, execute, jbm_index};
use njc_opt::ConfigKind;

fn main() {
    let p = Platform::windows_ia32();
    let picks = ["Assignment", "LU Decomposition", "Neural Net", "Fourier"];
    println!(
        "{:20} {:>10} {:>10} {:>10} {:>10}",
        "jBYTEmark index", "Full", "Old", "NoOptTrap", "NoOptNoTr"
    );
    for w in njc_workloads::jbytemark() {
        if !picks.contains(&w.name) {
            continue;
        }
        let mut row = format!("{:20}", w.name);
        for kind in [
            ConfigKind::Full,
            ConfigKind::OldNullCheck,
            ConfigKind::NoNullOptTrap,
            ConfigKind::NoNullOptNoTrap,
        ] {
            let out = execute(&compile(&w, &p, kind), &p).unwrap();
            row += &format!(" {:>10.2}", jbm_index(w.work_units, out.stats.cycles, &p));
        }
        println!("{row}");
    }
    println!("\nLarger is better. The two-phase algorithm (Full) should lead on the");
    println!("multidimensional-array kernels and tie on Fourier, as in the paper's Table 1.");
}
