//! The paper's §3.3.1 / §5.4 AIX story: reads of the protected page do not
//! trap, so null checks for reads stay explicit — but reads may be
//! *speculated* above their checks and out of loops (Figure 6), and
//! applying the Intel phase 2 anyway ("Illegal Implicit") runs fastest of
//! all while silently violating the Java specification.
//!
//! ```text
//! cargo run --example aix_speculation
//! ```

use njc_arch::Platform;
use njc_jit::{compile, execute};
use njc_opt::ConfigKind;
use njc_workloads::{micro, Suite, Workload};

fn main() {
    let aix = Platform::aix_ppc();
    let w = Workload {
        name: "figure6",
        suite: Suite::Micro,
        module: micro::figure6(),
        entry: "main",
        work_units: 1,
    };

    println!("Figure 6 kernel (total += b[a.I++]) on {}:", aix.name);
    for kind in [
        ConfigKind::AixNoNullOpt,
        ConfigKind::AixNoSpeculation,
        ConfigKind::AixSpeculation,
        ConfigKind::AixIllegalImplicit,
    ] {
        let compiled = compile(&w, &aix, kind);
        let out = execute(&compiled, &aix).unwrap();
        println!(
            "  {:36} cycles={:7} explicit-checks={:5} speculative-loads-hoisted={} missed-NPEs={}",
            format!("{kind:?}"),
            out.stats.cycles,
            out.stats.explicit_null_checks,
            compiled.stats.scalar.speculative_loads,
            out.stats.missed_npes,
        );
    }

    // Now the dark side: run the null-seeded stress program under the
    // Illegal Implicit configuration — NullPointerExceptions are silently
    // skipped (the VM counts them), exactly the §5.4 caveat.
    let w = Workload {
        name: "null_seeded",
        suite: Suite::Micro,
        module: micro::null_seeded(),
        entry: "main",
        work_units: 1,
    };
    let legal = execute(&compile(&w, &aix, ConfigKind::AixSpeculation), &aix).unwrap();
    let illegal = execute(&compile(&w, &aix, ConfigKind::AixIllegalImplicit), &aix).unwrap();
    println!("\nnull-seeded stress program:");
    println!(
        "  legal (Speculation):      trace={:?}, missed NPEs = {}",
        legal.trace, legal.stats.missed_npes
    );
    println!(
        "  Illegal Implicit:         trace={:?}, missed NPEs = {}  <- spec violation",
        illegal.trace, illegal.stats.missed_npes
    );
    assert_eq!(legal.stats.missed_npes, 0);
    assert!(illegal.stats.missed_npes > 0);
}
