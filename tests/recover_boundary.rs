//! Recovery dispatch at the trap-area boundary.
//!
//! The trap models guard exactly `[0, trap_area_bytes)` of the null
//! page, and recovery only ever dispatches on a hardware trap at a
//! *registered* implicit site. These tests pin the three edges of that
//! rule on the paper's two trap-area platforms:
//!
//! * IA32/Windows: a read at static offset `area - 8` — the maximum
//!   valid displacement — is an implicit site; a trap there must enter
//!   recovery dispatch (per-slot and uniform policies alike), while the
//!   fence offset `area` keeps its explicit check and never consults
//!   the policy.
//! * AIX/PowerPC under the `AixIllegalImplicit` negative-control
//!   config: the implicit *write* at `area - 8` traps (writes trap on
//!   AIX) and recovers; the implicit *read* of the guard page silently
//!   yields zero — no trap, hence **no recovery dispatch**, and the
//!   missed NPE stays missed whatever the policy says.
//! * AIX sound configs have no implicit sites at all, so an active
//!   policy is a observable no-op.
//!
//! The same dispatch rule is then checked end to end through the tiered
//! runtime and the multi-tenant service: recoveries are counted per
//! strategy, reconcile() accepts them (every recovered trap has site
//! provenance), and a Strict fleet is observationally identical to an
//! Abort fleet.

use njc_arch::Platform;
use njc_ir::{AccessKind, CatchKind, ExceptionKind, FuncBuilder, Module, Op, Type};
use njc_opt::ConfigKind;
use njc_recover::{RecoveryPolicy, RecoveryStrategy};
use njc_runtime::{hot_field_workload, ServiceRuntime, TenantSpec, TieredRuntime};
use njc_vm::{Value, Vm};

/// The trap-area straddle module of `tests/trap_boundary.rs`: one field
/// at the last protected offset (`area - 8`), one at the first
/// unprotected offset (exactly `area`), four leaf accessors, and a
/// `main` that sends null into each accessor inside its own NPE-catching
/// try region. The last traced value is the handler count.
fn boundary_module(area: u64) -> Module {
    let mut m = Module::new("recover_boundary");
    let class = m.add_class_with_offsets(
        "Straddle",
        &[("inside", Type::Int, area - 8), ("edge", Type::Int, area)],
    );
    let f_inside = m.field(class, "inside").unwrap();
    let f_edge = m.field(class, "edge").unwrap();

    let read_inside = {
        let mut b = FuncBuilder::new("read_inside", &[Type::Ref], Type::Int);
        let o = b.param(0);
        let v = b.get_field(o, f_inside);
        b.ret(Some(v));
        m.add_function(b.finish())
    };
    let read_edge = {
        let mut b = FuncBuilder::new("read_edge", &[Type::Ref], Type::Int);
        let o = b.param(0);
        let v = b.get_field(o, f_edge);
        b.ret(Some(v));
        m.add_function(b.finish())
    };
    let write_inside = {
        let mut b = FuncBuilder::new_void("write_inside", &[Type::Ref, Type::Int]);
        let o = b.param(0);
        let v = b.param(1);
        b.put_field(o, f_inside, v);
        b.ret(None);
        m.add_function(b.finish())
    };
    let write_edge = {
        let mut b = FuncBuilder::new_void("write_edge", &[Type::Ref, Type::Int]);
        let o = b.param(0);
        let v = b.param(1);
        b.put_field(o, f_edge, v);
        b.ret(None);
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let a = b.iconst(17);
    let c = b.iconst(25);
    b.call_static(write_inside, &[obj, a], None);
    b.call_static(write_edge, &[obj, c], None);
    let ri = b.call_static(read_inside, &[obj], Some(Type::Int)).unwrap();
    let re = b.call_static(read_edge, &[obj], Some(Type::Int)).unwrap();
    let acc = b.add(ri, re);

    let npes = b.var(Type::Int);
    let zero = b.iconst(0);
    b.assign(npes, zero);
    for callee in [read_inside, read_edge] {
        let handler = b.new_block();
        let after = b.new_block();
        let tryb = b.new_block();
        let region = b.add_try_region(handler, CatchKind::Only(ExceptionKind::NullPointer), None);
        b.goto(tryb);
        b.set_try_region(Some(region));
        b.switch_to(tryb);
        let nul = b.null_ref();
        let v = b.call_static(callee, &[nul], Some(Type::Int)).unwrap();
        b.binop_into(acc, Op::Add, acc, v);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        let one = b.iconst(1);
        b.binop_into(npes, Op::Add, npes, one);
        b.goto(after);
        b.switch_to(after);
    }
    for callee in [write_inside, write_edge] {
        let handler = b.new_block();
        let after = b.new_block();
        let tryb = b.new_block();
        let region = b.add_try_region(handler, CatchKind::Only(ExceptionKind::NullPointer), None);
        b.goto(tryb);
        b.set_try_region(Some(region));
        b.switch_to(tryb);
        let nul = b.null_ref();
        let seven = b.iconst(7);
        b.call_static(callee, &[nul, seven], None);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        let one = b.iconst(1);
        b.binop_into(npes, Op::Add, npes, one);
        b.goto(after);
        b.switch_to(after);
    }
    let sixteen = b.iconst(16);
    let hi = b.binop(Op::Shl, npes, sixteen);
    let out = b.add(acc, hi);
    b.observe(acc);
    b.observe(npes);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

fn optimized(platform: &Platform, kind: ConfigKind) -> Module {
    let mut m = boundary_module(platform.trap.trap_area_bytes);
    njc_opt::optimize_module(&mut m, platform, &kind.to_config(platform));
    m
}

fn run(m: &Module, p: Platform, policy: Option<&RecoveryPolicy>) -> njc_vm::Outcome {
    let vm = Vm::new(m, p);
    let vm = match policy {
        Some(pol) => vm.with_recovery(pol),
        None => vm,
    };
    vm.run("main", &[]).unwrap()
}

/// IA32: traps at the maximum valid displacement (`area - 8`) enter
/// Strict recovery — deopt-and-recheck, observationally invisible —
/// while the fence offset resolves through its explicit check without
/// consulting the policy. Reads and writes both trap on IA32, so both
/// inside-area null arrivals recover.
#[test]
fn ia32_strict_recovery_at_max_displacement_is_invisible() {
    let p = Platform::windows_ia32();
    assert_eq!(p.trap.trap_area_bytes, 4096);
    let m = optimized(&p, ConfigKind::Full);
    let base = run(&m, p, None);
    let policy = RecoveryPolicy::uniform(RecoveryStrategy::Strict);
    let strict = run(&m, p, Some(&policy));

    base.assert_equivalent(&strict)
        .expect("strict recovery must be observationally invisible");
    assert_eq!(
        strict.stats.recoveries.strict, 2,
        "both inside-area null arrivals (read and write) recover"
    );
    assert_eq!(strict.stats.recoveries.total(), 2);
    assert_eq!(
        strict.stats.explicit_null_checks,
        base.stats.explicit_null_checks + 2,
        "each recovery path pays one extra explicit check"
    );
    assert_eq!(
        strict.stats.traps_taken, base.stats.traps_taken,
        "recovered traps still count as traps"
    );
    assert_eq!(strict.stats.missed_npes, 0);
}

/// IA32 per-slot policy: pinning NullObject at exactly `(read_inside,
/// area - 8, Read)` recovers that one site; a pin at the fence offset
/// (`area`) is dead weight — there is no registered site there, so the
/// explicit check raises its NPE as always.
#[test]
fn ia32_slot_policy_recovers_only_the_registered_boundary_site() {
    let p = Platform::windows_ia32();
    let area = p.trap.trap_area_bytes;
    // Inlining would fold the accessors into `main` and move the slot
    // key's owning function; pin it off so the per-function key is exact.
    let mut m = boundary_module(area);
    let cfg = njc_opt::OptConfig {
        inline: false,
        ..ConfigKind::Full.to_config(&p)
    };
    njc_opt::optimize_module(&mut m, &p, &cfg);
    let inside_fn = m.function_by_name("read_inside").unwrap().index() as u32;
    let edge_fn = m.function_by_name("read_edge").unwrap().index() as u32;

    let mut policy = RecoveryPolicy::abort();
    policy.set_slot(
        inside_fn,
        area - 8,
        AccessKind::Read,
        RecoveryStrategy::NullObject,
    );
    // A pin beyond the fence can never fire: offset == area is not a site.
    policy.set_slot(
        edge_fn,
        area,
        AccessKind::Read,
        RecoveryStrategy::NullObject,
    );
    let out = run(&m, p, Some(&policy));

    assert_eq!(
        out.stats.recoveries.null_object, 1,
        "only the inside slot dispatches"
    );
    assert_eq!(out.stats.recoveries.total(), 1);
    // The substituted default suppresses the inside read's NPE: three of
    // the four null arrivals still reach their handlers.
    assert_eq!(
        out.trace.last(),
        Some(&Value::Int(3)),
        "fence read, both writes still raise: {:?}",
        out.trace
    );
    let base = run(&m, p, None);
    assert_eq!(base.trace.last(), Some(&Value::Int(4)), "{:?}", base.trace);
    assert_eq!(out.stats.missed_npes, 0, "a recovery is not a miss");
}

/// AIX under the negative-control config: the implicit *write* at the
/// maximum valid displacement traps and recovers, while the implicit
/// *read* of the guard page silently yields zero — a registered site
/// with no trap never enters recovery dispatch, and its missed NPE
/// stays missed no matter the policy.
#[test]
fn aix_write_site_recovers_and_silent_read_never_dispatches() {
    let p = Platform::aix_ppc();
    assert!(!p.trap.traps_on_read && p.trap.traps_on_write);
    let m = optimized(&p, ConfigKind::AixIllegalImplicit);

    let base = run(&m, p, None);
    assert_eq!(base.stats.missed_npes, 1, "the silent read escapes");
    assert_eq!(base.trace.last(), Some(&Value::Int(3)), "{:?}", base.trace);

    for strategy in [RecoveryStrategy::SkipEffect, RecoveryStrategy::NullObject] {
        let policy = RecoveryPolicy::uniform(strategy);
        let out = run(&m, p, Some(&policy));
        assert_eq!(
            out.stats.recoveries.total(),
            1,
            "{strategy}: exactly the trapping write recovers"
        );
        // Both strategies suppress the write's NPE (for a store,
        // substituting and skipping are the same no-op), dropping one
        // handler run relative to the abort baseline.
        assert_eq!(
            out.trace.last(),
            Some(&Value::Int(2)),
            "{strategy}: {:?}",
            out.trace
        );
        assert_eq!(
            out.stats.missed_npes, 1,
            "{strategy}: the silent read is untouched by recovery"
        );
        assert_eq!(
            out.stats.traps_taken, base.stats.traps_taken,
            "{strategy}: recovered traps still count as traps"
        );
    }
}

/// AIX sound configs have no implicit sites, so even a maximally
/// aggressive policy never dispatches and the run is untouched.
#[test]
fn aix_sound_configs_never_dispatch_recovery() {
    let p = Platform::aix_ppc();
    for kind in [ConfigKind::AixSpeculation, ConfigKind::AixNoSpeculation] {
        let m = optimized(&p, kind);
        let base = run(&m, p, None);
        let policy = RecoveryPolicy::uniform(RecoveryStrategy::NullObject);
        let out = run(&m, p, Some(&policy));
        assert_eq!(
            out.stats.recoveries.total(),
            0,
            "{kind:?}: no sites, no dispatch"
        );
        base.assert_equivalent(&out)
            .expect("an undispatched policy is a no-op");
        assert_eq!(out.stats.missed_npes, 0, "{kind:?}");
    }
}

/// End to end through the tiered runtime: a Strict policy recovers the
/// adaptive run's hardware traps, the outcome counts them per strategy,
/// reconcile() accepts every recovered trap against site provenance, and
/// the steady state matches the no-policy reference observationally.
#[test]
fn tiered_runtime_counts_and_reconciles_strict_recoveries() {
    let platform = Platform::windows_ia32();
    let args = [Value::Int(3_000), Value::Ref(0)];
    let reference = TieredRuntime::new(hot_field_workload(), platform)
        .run("main", &args)
        .unwrap();
    let out = TieredRuntime::new(hot_field_workload(), platform)
        .with_recovery(RecoveryPolicy::uniform(RecoveryStrategy::Strict))
        .run("main", &args)
        .unwrap();

    assert!(
        out.recoveries.strict > 0,
        "the null burst's traps must recover: {:?}",
        out.recoveries
    );
    assert_eq!(out.recoveries.null_object, 0);
    assert_eq!(out.recoveries.skip_effect, 0);
    out.reconcile()
        .expect("every recovered trap resolves to site provenance");
    out.verify_convergence().unwrap();
    reference
        .steady
        .assert_equivalent(&out.steady)
        .expect("strict recovery must not change steady-state behavior");
    assert_eq!(reference.overrides, out.overrides, "tier-up is undisturbed");
    assert_eq!(reference.recoveries.total(), 0, "no policy, no recoveries");
}

/// Per-tenant policies through the service: a mixed fleet (Strict,
/// Abort) over the same workload counts recoveries only for the tenants
/// whose policy is active, the fleet total aggregates them, and every
/// tenant still reconciles and converges.
#[test]
fn service_counts_recoveries_per_tenant_and_aggregates() {
    let platform = Platform::windows_ia32();
    let module = hot_field_workload();
    let args = vec![Value::Int(3_000), Value::Ref(0)];
    let specs: Vec<TenantSpec> = (0..4)
        .map(|i| TenantSpec {
            name: format!("tenant-{i}"),
            module: module.clone(),
            entry: "main".to_string(),
            args: args.clone(),
            recovery: if i % 2 == 0 {
                RecoveryPolicy::uniform(RecoveryStrategy::Strict)
            } else {
                RecoveryPolicy::abort()
            },
        })
        .collect();
    let out = ServiceRuntime::new(platform).run(&specs).unwrap();
    out.verify().expect("every tenant reconciles and converges");

    let mut fleet_strict = 0;
    for t in &out.tenants {
        let r = &t.outcome.recoveries;
        if t.name.ends_with('0') || t.name.ends_with('2') {
            assert!(r.strict > 0, "{}: active policy must recover", t.name);
        } else {
            assert_eq!(r.total(), 0, "{}: abort policy never recovers", t.name);
        }
        assert_eq!(r.null_object + r.skip_effect, 0, "{}", t.name);
        fleet_strict += r.strict;
    }
    assert_eq!(
        out.recoveries.strict, fleet_strict,
        "fleet total aggregates per-tenant counts"
    );
    assert_eq!(out.recoveries.null_object + out.recoveries.skip_effect, 0);
}
