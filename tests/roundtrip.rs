//! Print → parse round-trip property tests over the textual IR, plus
//! pass-level invariants (idempotence, verifiability) on randomly shaped
//! functions.

use njc::prop::{run_cases, Rng};
use njc_arch::TrapModel;
use njc_core::ctx::AnalysisCtx;
use njc_core::{phase1, phase2, whaley};
use njc_ir::{
    parse_function, verify, CatchKind, Cond, ExceptionKind, FuncBuilder, Module, Op, Type,
};

/// A compact generator of structurally diverse single functions: a chain
/// of segments, each one of a few shapes.
#[derive(Clone, Debug)]
enum Segment {
    Arith(u8),
    FieldRead(u8),
    FieldWrite(u8),
    ArrayTouch(u8),
    Branch(u8),
    CountedLoop(u8),
    TryNpe(u8),
}

fn gen_segments(rng: &mut Rng) -> Vec<Segment> {
    let len = rng.below(12);
    (0..len)
        .map(|_| {
            let k = rng.next_u64() as u8;
            match rng.below(7) {
                0 => Segment::Arith(k),
                1 => Segment::FieldRead(k),
                2 => Segment::FieldWrite(k),
                3 => Segment::ArrayTouch(k),
                4 => Segment::Branch(k),
                5 => Segment::CountedLoop(k),
                _ => Segment::TryNpe(k),
            }
        })
        .collect()
}

fn build(segments: &[Segment]) -> njc_ir::Function {
    let mut b = FuncBuilder::new("gen", &[Type::Ref, Type::Int], Type::Int);
    let obj = b.param(0);
    let x = b.param(1);
    let mut acc = b.iconst(1);
    for s in segments {
        match s {
            Segment::Arith(k) => {
                let c = b.iconst(*k as i64);
                let op = [Op::Add, Op::Sub, Op::Mul, Op::Xor, Op::And, Op::Or][*k as usize % 6];
                acc = b.binop(op, acc, c);
            }
            Segment::FieldRead(k) => {
                let f = njc_ir::FieldId(*k as u32 % 2);
                let v = b.get_field(obj, f);
                acc = b.add(acc, v);
            }
            Segment::FieldWrite(k) => {
                let f = njc_ir::FieldId(*k as u32 % 2);
                b.put_field(obj, f, acc);
            }
            Segment::ArrayTouch(k) => {
                let len = b.iconst((*k as i64 % 7) + 1);
                let arr = b.new_array(Type::Int, len);
                let zero = b.iconst(0);
                b.array_store(arr, zero, acc, Type::Int);
                let v = b.array_load(arr, zero, Type::Int);
                acc = b.add(acc, v);
            }
            Segment::Branch(k) => {
                let c = b.iconst(*k as i64);
                let t = b.new_block();
                let e = b.new_block();
                let j = b.new_block();
                b.br_if(Cond::Lt, x, c, t, e);
                b.switch_to(t);
                let one = b.iconst(1);
                let accn = b.add(acc, one);
                b.goto(j);
                b.switch_to(e);
                b.goto(j);
                b.switch_to(j);
                // `accn` defined only on one path: keep using `acc` (join-
                // safe) but read accn through a second branch to keep it
                // live and structurally interesting.
                let t2 = b.new_block();
                let j2 = b.new_block();
                b.br_if(Cond::Ge, x, c, t2, j2);
                b.switch_to(t2);
                b.observe(acc);
                let _ = accn;
                b.goto(j2);
                b.switch_to(j2);
            }
            Segment::CountedLoop(k) => {
                let zero = b.iconst(0);
                let n = b.iconst((*k as i64 % 5) + 1);
                let sum = b.var(Type::Int);
                b.assign(sum, acc);
                b.for_loop(zero, n, 1, |b, i| {
                    b.binop_into(sum, Op::Add, sum, i);
                });
                acc = sum;
            }
            Segment::TryNpe(k) => {
                let handler = b.new_block();
                let after = b.new_block();
                let inner = b.new_block();
                let code = b.var(Type::Int);
                let region = b.add_try_region(
                    handler,
                    CatchKind::Only(ExceptionKind::NullPointer),
                    Some(code),
                );
                b.goto(inner);
                b.set_try_region(Some(region));
                b.switch_to(inner);
                let f = njc_ir::FieldId(*k as u32 % 2);
                let v = b.get_field(obj, f);
                let acc2 = b.add(acc, v);
                b.observe(acc2);
                b.goto(after);
                b.set_try_region(None);
                b.switch_to(handler);
                b.observe(code);
                b.goto(after);
                b.switch_to(after);
            }
        }
    }
    b.ret(Some(acc));
    b.finish()
}

fn test_module() -> Module {
    let mut m = Module::new("rt");
    m.add_class("C", &[("a", Type::Int), ("b", Type::Int)]);
    m
}

/// Display → parse is the identity on generated functions.
#[test]
fn print_parse_round_trip() {
    run_cases("print_parse_round_trip", 96, |rng| {
        let f = build(&gen_segments(rng));
        verify(&f).unwrap();
        let printed = f.to_string();
        let reparsed =
            parse_function(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        if reparsed != f {
            return Err(format!("round trip mismatch:\n{printed}"));
        }
        Ok(())
    });
}

/// Phase 1 is idempotent and preserves verifiability.
#[test]
fn phase1_idempotent() {
    run_cases("phase1_idempotent", 96, |rng| {
        let m = test_module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = build(&gen_segments(rng));
        phase1::run(&ctx, &mut f);
        verify(&f).unwrap();
        let once = f.to_string();
        let stats = phase1::run(&ctx, &mut f);
        if stats.eliminated != 0 || stats.inserted != 0 || f.to_string() != once {
            return Err(format!("second phase 1 changed the function:\n{once}"));
        }
        Ok(())
    });
}

/// Phase 2 leaves no explicit check that is trivially substitutable,
/// and a second run performs no further conversions.
#[test]
fn phase2_stable() {
    run_cases("phase2_stable", 96, |rng| {
        let m = test_module();
        let ctx = AnalysisCtx::new(&m, TrapModel::windows_ia32());
        let mut f = build(&gen_segments(rng));
        phase1::run(&ctx, &mut f);
        phase2::run(&ctx, &mut f);
        verify(&f).unwrap();
        let once = f.to_string();
        let stats = phase2::run(&ctx, &mut f);
        if stats.converted_implicit != 0 {
            return Err(format!("second phase 2 re-converted:\n{once}"));
        }
        verify(&f).unwrap();
        Ok(())
    });
}

/// Whaley never inserts and never increases the check count.
#[test]
fn whaley_only_removes() {
    run_cases("whaley_only_removes", 96, |rng| {
        let mut f = build(&gen_segments(rng));
        let before = phase1::count_checks(&f);
        whaley::run(&mut f);
        let after = phase1::count_checks(&f);
        if after > before {
            return Err(format!("whaley increased checks {before} -> {after}"));
        }
        verify(&f).unwrap();
        Ok(())
    });
}
