//! Oracle sensitivity: the correctness net (VM faults + observational
//! equivalence) must *catch* deliberately injected compiler bugs. A net
//! that never fires proves nothing — these tests sabotage the optimizer's
//! output in the ways a buggy null check optimization would, and assert
//! detection.

use njc_arch::Platform;
use njc_ir::{Inst, Module, NullCheckKind};
use njc_jit::{execute_unoptimized, Compiled};
use njc_opt::ConfigKind;
use njc_vm::{Fault, Vm};
use njc_workloads::{micro, Suite, Workload};

fn null_seeded() -> Workload {
    Workload {
        name: "null_seeded",
        suite: Suite::Micro,
        module: micro::null_seeded(),
        entry: "main",
        work_units: 1,
    }
}

fn sabotage<F: FnMut(&mut Inst) -> bool>(module: &Module, mut f: F) -> (Module, usize) {
    let mut m = module.clone();
    let mut hits = 0;
    for fi in m.function_ids().collect::<Vec<_>>() {
        let func = m.function_mut(fi);
        for bi in 0..func.num_blocks() {
            let block = func.block_mut(njc_ir::BlockId::new(bi));
            let mut kept = Vec::new();
            for mut inst in block.insts.drain(..) {
                if f(&mut inst) {
                    hits += 1;
                    continue; // dropped
                }
                kept.push(inst);
            }
            block.insts = kept;
        }
    }
    (m, hits)
}

/// Dropping an explicit null check (without marking anything) must surface
/// as an UnexpectedTrap fault on Windows — the crash a real JIT would take.
#[test]
fn dropped_check_faults_on_windows() {
    let w = null_seeded();
    let p = Platform::windows_ia32();
    // Drop every explicit null check, mark nothing.
    let (bad, dropped) = sabotage(&w.module, |i| {
        matches!(
            i,
            Inst::NullCheck {
                kind: NullCheckKind::Explicit,
                ..
            }
        )
    });
    assert!(dropped > 0);
    let err = Vm::new(&bad, p).run("main", &[]).unwrap_err();
    assert!(
        matches!(err, Fault::UnexpectedTrap { .. }),
        "expected an unexpected-trap fault, got {err}"
    );
}

/// Dropping checks on AIX (where reads do not trap) must surface as an
/// observable divergence instead: the NPE paths silently disappear.
#[test]
fn dropped_check_diverges_on_aix() {
    let w = null_seeded();
    let p = Platform::aix_ppc();
    let base = execute_unoptimized(&w, &p).unwrap();
    let (bad, dropped) = sabotage(&w.module, |i| {
        matches!(
            i,
            Inst::NullCheck {
                kind: NullCheckKind::Explicit,
                ..
            }
        )
    });
    assert!(dropped > 0);
    let out = Vm::new(&bad, p).run("main", &[]).unwrap();
    assert!(
        base.assert_equivalent(&out).is_err(),
        "silently-missed NPEs must diverge the trace"
    );
}

/// Unmarking the exception sites of a correctly optimized program (keeping
/// the checks deleted) must fault: the trap lands at an unknown site.
#[test]
fn unmarked_sites_fault() {
    let w = null_seeded();
    let p = Platform::windows_ia32();
    let compiled: Compiled = njc_jit::compile(&w, &p, ConfigKind::Full);
    // Sanity: the optimized module runs fine as produced.
    njc_jit::execute(&compiled, &p).unwrap();
    // Now strip every exception-site mark.
    let mut bad = compiled.module.clone();
    let mut stripped = 0;
    for fi in bad.function_ids().collect::<Vec<_>>() {
        let func = bad.function_mut(fi);
        for b in func.blocks_mut() {
            for inst in &mut b.insts {
                if inst.is_exception_site() {
                    inst.set_exception_site(false);
                    stripped += 1;
                }
            }
        }
    }
    assert!(stripped > 0);
    let err = Vm::new(&bad, p).run("main", &[]).unwrap_err();
    assert!(matches!(err, Fault::UnexpectedTrap { .. }), "{err}");
}

/// Dropping a bounds check must be caught: the out-of-range store lands in
/// a neighbor allocation and corrupts the checksum (divergence), or walks
/// off the heap (wild-access fault).
#[test]
fn dropped_bound_check_is_caught() {
    // A program whose index genuinely goes out of range.
    let mut m = Module::new("oob");
    let mut b = njc_ir::FuncBuilder::new("main", &[], njc_ir::Type::Int);
    let handler = b.new_block();
    let after = b.new_block();
    let body = b.new_block();
    let code = b.var(njc_ir::Type::Int);
    let out = b.var(njc_ir::Type::Int);
    let z = b.iconst(0);
    b.assign(out, z);
    let region = b.add_try_region(handler, njc_ir::CatchKind::Any, Some(code));
    b.goto(body);
    b.set_try_region(Some(region));
    b.switch_to(body);
    let three = b.iconst(3);
    let arr = b.new_array(njc_ir::Type::Int, three);
    let nine = b.iconst(9); // out of range
    let v = b.array_load(arr, nine, njc_ir::Type::Int);
    b.assign(out, v);
    b.goto(after);
    b.set_try_region(None);
    b.switch_to(handler);
    b.observe(code);
    b.assign(out, code);
    b.goto(after);
    b.switch_to(after);
    b.ret(Some(out));
    m.add_function(b.finish());

    let p = Platform::windows_ia32();
    let good = Vm::new(&m, p).run("main", &[]).unwrap();
    assert_eq!(good.trace.len(), 1, "AIOOBE observed");

    let (bad, dropped) = sabotage(&m, |i| matches!(i, Inst::BoundCheck { .. }));
    assert!(dropped > 0);
    match Vm::new(&bad, p).run("main", &[]) {
        Err(_) => {} // wild access — caught
        Ok(out) => {
            assert!(
                good.assert_equivalent(&out).is_err(),
                "dropped bounds check must be observable"
            );
        }
    }
}

/// The null-seeded equivalence is tight: even reordering which of two
/// *different* exception kinds fires is caught. Replace a bounds check's
/// operands to flip its outcome and observe the divergence.
#[test]
fn exception_identity_is_part_of_the_oracle() {
    let w = null_seeded();
    let p = Platform::windows_ia32();
    let base = execute_unoptimized(&w, &p).unwrap();
    // Sabotage: turn every explicit NullCheck into a no-op by retargeting
    // it at a freshly allocated (non-null) object... simplest equivalent:
    // drop checks but mark every access as a site, converting NPE throw
    // *points* (checks) into NPE throw points (accesses). On this workload
    // the checks and accesses are adjacent, so outcomes should actually
    // match — the oracle accepts a *correct* transformation.
    let mut m = w.module.clone();
    for fi in m.function_ids().collect::<Vec<_>>() {
        let func = m.function_mut(fi);
        for b in func.blocks_mut() {
            let mut kept = Vec::new();
            for mut inst in b.insts.drain(..) {
                if matches!(inst, Inst::NullCheck { .. }) {
                    continue;
                }
                inst.set_exception_site(true);
                kept.push(inst);
            }
            b.insts = kept;
        }
    }
    let out = Vm::new(&m, p).run("main", &[]).unwrap();
    base.assert_equivalent(&out)
        .expect("trap-everything is a legal implementation on a read+write-trap platform");
    assert!(out.stats.traps_taken > 0, "NPEs now arrive via traps");
}
