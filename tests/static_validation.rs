//! Integration tests for the static translation validator (`njc-analysis`)
//! against real pipeline output.
//!
//! Three angles:
//! * **Completeness on sound output** — the validator accepts every
//!   workload × configuration × platform the pipeline can produce, both as
//!   an end-to-end module check and in the between-passes mode.
//! * **The §5.4 negative control** — "Illegal Implicit" on AIX must be
//!   flagged *statically*, and the static verdict must agree with (in fact
//!   dominate) the VM's dynamic missed-NPE counter.
//! * **Mutation adequacy** — deleting any one explicit check or unmarking
//!   any one exception site in optimized output must either be rejected by
//!   the validator or be provably redundant, which we confirm by running
//!   the mutant on the VM and demanding observational equivalence. The
//!   validator proves exception *preservation*, so a genuinely redundant
//!   check (already dominated by another check of the same value) is
//!   rightly accepted — but then the mutant must behave identically.

use njc_analysis::{validate_function, validate_module, validate_pair, ViolationKind};
use njc_arch::Platform;
use njc_ir::{FunctionId, Inst, NullCheckKind};
use njc_jit::{compile, compile_validated, execute, Compiled};
use njc_opt::ConfigKind;

/// The platform rows of the paper's tables, minus the deliberately
/// unsound negative control.
fn sound_suites() -> Vec<(Platform, Vec<ConfigKind>)> {
    vec![
        (
            Platform::windows_ia32(),
            ConfigKind::table12_rows().to_vec(),
        ),
        (
            Platform::aix_ppc(),
            ConfigKind::table67_rows()[..3].to_vec(),
        ),
        (Platform::linux_s390(), ConfigKind::table12_rows().to_vec()),
    ]
}

#[test]
fn validator_accepts_every_pipeline_output() {
    for (platform, kinds) in sound_suites() {
        for kind in kinds {
            for w in njc_workloads::all() {
                let c = compile(&w, &platform, kind);
                let report = validate_module(&c.module, platform.trap);
                assert!(
                    report.is_sound(),
                    "{} under {kind:?} on {}:\n{report}",
                    w.name,
                    platform.name
                );
            }
        }
    }
}

#[test]
fn between_passes_mode_accepts_sound_configs() {
    // The per-stage mode is heavier (it validates after every pass of
    // every iteration), so it runs on a representative subset.
    let small = ["Numeric Sort", "Bitfield", "db", "mtrt"];
    let suites = [
        (
            Platform::windows_ia32(),
            vec![
                ConfigKind::Full,
                ConfigKind::Phase1Only,
                ConfigKind::OldNullCheck,
            ],
        ),
        (
            Platform::aix_ppc(),
            vec![ConfigKind::AixSpeculation, ConfigKind::AixNoSpeculation],
        ),
    ];
    for (platform, kinds) in suites {
        for &kind in &kinds {
            for w in njc_workloads::all() {
                if !small.contains(&w.name) {
                    continue;
                }
                compile_validated(&w, &platform, kind).unwrap_or_else(|e| {
                    panic!("{} under {kind:?} on {}:\n{e}", w.name, platform.name)
                });
            }
        }
    }
}

#[test]
fn illegal_implicit_is_flagged_statically() {
    let aix = Platform::aix_ppc();
    let mut flagged = 0usize;
    for w in njc_workloads::all() {
        let c = compile(&w, &aix, ConfigKind::AixIllegalImplicit);
        let report = validate_module(&c.module, aix.trap);
        if !report.is_sound() {
            flagged += 1;
        }
        // The static verdict must dominate the dynamic one: whenever the
        // VM observes a missed NullPointerException (or faults outright),
        // the validator must have predicted it without running anything.
        match execute(&c, &aix) {
            Ok(out) => {
                if out.stats.missed_npes > 0 {
                    assert!(
                        report.count(ViolationKind::MissedException) > 0,
                        "{}: VM missed {} NPEs but the validator was silent",
                        w.name,
                        out.stats.missed_npes
                    );
                }
            }
            Err(fault) => {
                assert!(
                    !report.is_sound(),
                    "{}: VM faulted ({fault}) but the validator was silent",
                    w.name
                );
            }
        }
    }
    assert!(
        flagged > 0,
        "no workload was statically flagged under Illegal Implicit"
    );
}

/// Runs the compiled module and the mutant module, demanding identical
/// observable behaviour — the oracle for mutants the validator accepts.
fn assert_mutant_equivalent(
    compiled: &Compiled,
    mutant: njc_ir::Module,
    platform: &Platform,
    what: &str,
) {
    let base =
        execute(compiled, platform).unwrap_or_else(|f| panic!("{what}: baseline faulted: {f}"));
    let mut m = compiled.clone();
    m.module = mutant;
    match execute(&m, platform) {
        Ok(out) => base
            .assert_equivalent(&out)
            .unwrap_or_else(|e| panic!("{what}: accepted mutant diverges: {e}")),
        Err(f) => panic!("{what}: accepted mutant faults: {f}"),
    }
}

#[test]
fn deleting_any_explicit_check_is_caught_or_provably_redundant() {
    let p = Platform::windows_ia32();
    let workloads = ["Numeric Sort", "Assignment", "db", "Huffman Compression"];
    let mut mutants = 0usize;
    let mut rejected = 0usize;
    for kind in [ConfigKind::Full, ConfigKind::NoNullOptNoTrap] {
        for w in njc_workloads::all() {
            if !workloads.contains(&w.name) {
                continue;
            }
            let c = compile(&w, &p, kind);
            for fi in 0..c.module.num_functions() {
                let func = c.module.function(FunctionId::new(fi));
                for (bi, block) in func.blocks().iter().enumerate() {
                    for (ii, inst) in block.insts.iter().enumerate() {
                        if !matches!(
                            inst,
                            Inst::NullCheck {
                                kind: NullCheckKind::Explicit,
                                ..
                            }
                        ) {
                            continue;
                        }
                        mutants += 1;
                        let mut mutant = func.clone();
                        mutant
                            .block_mut(njc_ir::BlockId(bi as u32))
                            .insts
                            .remove(ii);
                        let mut viol = validate_pair(&c.module, p.trap, func, &mutant);
                        viol.extend(validate_function(&c.module, p.trap, &mutant));
                        if viol.is_empty() {
                            // Accepted: the deleted check must have been
                            // redundant. Prove it dynamically.
                            let mut module = c.module.clone();
                            *module.function_mut(FunctionId::new(fi)) = mutant;
                            assert_mutant_equivalent(
                                &c,
                                module,
                                &p,
                                &format!("{} [{kind:?}] {} bb{bi} inst {ii}", w.name, func.name()),
                            );
                        } else {
                            rejected += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(mutants > 0, "no deletion mutants were generated");
    assert!(
        rejected > 0,
        "every deletion mutant was accepted — the validator is toothless"
    );
}

#[test]
fn unmarking_any_exception_site_is_caught_or_provably_redundant() {
    let p = Platform::windows_ia32();
    let workloads = ["Numeric Sort", "Assignment", "db", "Huffman Compression"];
    let mut mutants = 0usize;
    let mut rejected = 0usize;
    for w in njc_workloads::all() {
        if !workloads.contains(&w.name) {
            continue;
        }
        let c = compile(&w, &p, ConfigKind::Full);
        for fi in 0..c.module.num_functions() {
            let func = c.module.function(FunctionId::new(fi));
            for (bi, block) in func.blocks().iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if !inst.is_exception_site() {
                        continue;
                    }
                    mutants += 1;
                    let mut mutant = func.clone();
                    mutant.block_mut(njc_ir::BlockId(bi as u32)).insts[ii]
                        .set_exception_site(false);
                    let mut viol = validate_function(&c.module, p.trap, &mutant);
                    viol.extend(validate_pair(&c.module, p.trap, func, &mutant));
                    if viol.is_empty() {
                        // Accepted: the dereference must be covered by an
                        // earlier check or trapping site of the same value.
                        let mut module = c.module.clone();
                        *module.function_mut(FunctionId::new(fi)) = mutant;
                        assert_mutant_equivalent(
                            &c,
                            module,
                            &p,
                            &format!("{} {} bb{bi} inst {ii}", w.name, func.name()),
                        );
                    } else {
                        rejected += 1;
                    }
                }
            }
        }
    }
    assert!(mutants > 0, "no unmark mutants were generated");
    assert!(
        rejected > 0,
        "every unmark mutant was accepted — the validator is toothless"
    );
}
