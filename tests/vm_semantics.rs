//! VM semantic depth tests: exception propagation across frames, Java
//! arithmetic edge cases, catch-kind selectivity, determinism, and cost
//! model invariants.

use njc_arch::Platform;
use njc_ir::{parse_function, ExceptionKind, Module, Type};
use njc_vm::{run_module, Value, Vm, VmConfig};

fn module_with(funcs: &[&str]) -> Module {
    let mut m = Module::new("t");
    m.add_class("C", &[("x", Type::Int), ("y", Type::Ref)]);
    for f in funcs {
        m.add_function(parse_function(f).unwrap());
    }
    njc_ir::verify_module(&m).unwrap();
    m
}

fn win() -> Platform {
    Platform::windows_ia32()
}

#[test]
fn exception_propagates_through_frames_to_callers_handler() {
    let m = module_with(&[
        // fn0: dereferences its (null) argument.
        "func deref(v0: ref) -> int {\n  locals v1: int\nbb0:\n  nullcheck v0\n  v1 = getfield v0, field0\n  return v1\n}",
        // fn1: calls fn0 inside a try region catching NPE.
        "func main() -> int {\n  locals v0: ref v1: int v2: int\n  try0: handler bb2 catch npe -> v2\nbb0:\n  v0 = const null\n  goto bb1\nbb1: [try0]\n  v1 = call fn0(v0)\n  return v1\nbb2:\n  return v2\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(out.exception, None);
    assert_eq!(
        out.result,
        Some(Value::Int(ExceptionKind::NullPointer.code()))
    );
}

#[test]
fn catch_kind_selectivity_across_frames() {
    // The callee throws Arithmetic; the caller's NPE handler must NOT
    // catch it.
    let m = module_with(&[
        "func boom(v0: int) -> int {\n  locals v1: int v2: int\nbb0:\n  v1 = const 0\n  v2 = div.int v0, v1\n  return v2\n}",
        "func main() -> int {\n  locals v0: int v1: int v2: int\n  try0: handler bb2 catch npe -> v2\nbb0:\n  v0 = const 7\n  goto bb1\nbb1: [try0]\n  v1 = call fn0(v0)\n  return v1\nbb2:\n  return v2\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(out.exception, Some(ExceptionKind::Arithmetic));
    assert_eq!(out.result, None);
}

#[test]
fn java_division_edge_cases() {
    let m = module_with(&[
        "func main(v0: int, v1: int) -> int {\n  locals v2: int\nbb0:\n  v2 = div.int v0, v1\n  return v2\n}",
    ]);
    // i64::MIN / -1 does not trap (Java wraps).
    let out = run_module(&m, win(), "main", &[Value::Int(i64::MIN), Value::Int(-1)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(i64::MIN)));
    // Remainder of MIN % -1 is 0.
    let m2 = module_with(&[
        "func main(v0: int, v1: int) -> int {\n  locals v2: int\nbb0:\n  v2 = rem.int v0, v1\n  return v2\n}",
    ]);
    let out = run_module(&m2, win(), "main", &[Value::Int(i64::MIN), Value::Int(-1)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(0)));
}

#[test]
fn shift_amounts_are_masked() {
    let m = module_with(&[
        "func main(v0: int, v1: int) -> int {\n  locals v2: int\nbb0:\n  v2 = shl.int v0, v1\n  return v2\n}",
    ]);
    // Shifting by 64 is shifting by 0 (Java semantics).
    let out = run_module(&m, win(), "main", &[Value::Int(5), Value::Int(64)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(5)));
    let out = run_module(&m, win(), "main", &[Value::Int(5), Value::Int(65)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(10)));
}

#[test]
fn float_to_int_conversion_saturates() {
    let m = module_with(&[
        "func main(v0: float) -> int {\n  locals v1: int\nbb0:\n  v1 = convert.int v0\n  return v1\n}",
    ]);
    let out = run_module(&m, win(), "main", &[Value::Float(f64::NAN)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(0)), "NaN converts to 0");
    let out = run_module(&m, win(), "main", &[Value::Float(1e300)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(i64::MAX)));
    let out = run_module(&m, win(), "main", &[Value::Float(-1e300)]).unwrap();
    assert_eq!(out.result, Some(Value::Int(i64::MIN)));
}

#[test]
fn runs_are_deterministic() {
    for w in njc_workloads::jbytemark().into_iter().take(3) {
        let a = run_module(&w.module, win(), "main", &[]).unwrap();
        let b = run_module(&w.module, win(), "main", &[]).unwrap();
        assert_eq!(a.result, b.result, "{}", w.name);
        assert_eq!(a.trace, b.trace, "{}", w.name);
        assert_eq!(
            a.stats, b.stats,
            "{}: cycle accounting must be exact",
            w.name
        );
    }
}

#[test]
fn ppc_run_costs_more_wall_cycles_at_lower_clock() {
    // Same workload, same explicit-check counts under the no-opt config:
    // the PPC's cheaper explicit check must show up in the cycle totals.
    let w = njc_workloads::jbytemark()
        .into_iter()
        .find(|w| w.name == "Numeric Sort")
        .unwrap();
    let win_out = run_module(&w.module, Platform::windows_ia32(), "main", &[]).unwrap();
    let aix_out = run_module(&w.module, Platform::aix_ppc(), "main", &[]).unwrap();
    assert_eq!(
        win_out.stats.explicit_null_checks,
        aix_out.stats.explicit_null_checks
    );
    assert!(
        aix_out.stats.cycles < win_out.stats.cycles,
        "1-cycle tw checks + cheaper divides: {} vs {}",
        aix_out.stats.cycles,
        win_out.stats.cycles
    );
}

#[test]
fn fuel_is_shared_across_frames() {
    let m = module_with(&[
        "func spin(v0: int) -> int {\n  locals v1: int v2: int\nbb0:\n  v1 = const 0\n  goto bb1\nbb1:\n  v1 = add.int v1, v0\n  v2 = const 1000000\n  if lt v1, v2 then bb1 else bb2\nbb2:\n  return v1\n}",
        "func main() -> int {\n  locals v0: int v1: int\nbb0:\n  v0 = const 1\n  v1 = call fn0(v0)\n  return v1\n}",
    ]);
    let err = Vm::new(&m, win())
        .with_config(VmConfig {
            max_insts: 5_000,
            max_depth: 8,
            ..VmConfig::default()
        })
        .run("main", &[])
        .unwrap_err();
    assert_eq!(err, njc_vm::Fault::OutOfFuel);
}

#[test]
fn observation_order_crosses_call_boundaries() {
    let m = module_with(&[
        "func helper(v0: int) -> int {\n  locals v1: int\nbb0:\n  observe v0\n  v1 = add.int v0, v0\n  observe v1\n  return v1\n}",
        "func main() -> int {\n  locals v0: int v1: int\nbb0:\n  v0 = const 3\n  observe v0\n  v1 = call fn0(v0)\n  observe v1\n  return v1\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(
        out.trace,
        vec![Value::Int(3), Value::Int(3), Value::Int(6), Value::Int(6)]
    );
}

#[test]
fn heap_effects_of_callee_visible_to_caller() {
    let m = module_with(&[
        "func set(v0: ref, v1: int) -> int {\nbb0:\n  nullcheck v0\n  putfield v0, field0, v1\n  return v1\n}",
        "func main() -> int {\n  locals v0: ref v1: int v2: int v3: int\nbb0:\n  v0 = new class0\n  v1 = const 11\n  v2 = call fn0(v0, v1)\n  nullcheck v0\n  v3 = getfield v0, field0\n  return v3\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(out.result, Some(Value::Int(11)));
}

#[test]
fn ref_fields_store_references() {
    let m = module_with(&[
        "func main() -> int {\n  locals v0: ref v1: ref v2: ref v3: int v4: int\nbb0:\n  v0 = new class0\n  v1 = new class0\n  v3 = const 42\n  nullcheck v1\n  putfield v1, field0, v3\n  nullcheck v0\n  putfield v0, field1, v1\n  nullcheck v0\n  v2 = getfield v0, field1\n  nullcheck v2\n  v4 = getfield v2, field0\n  return v4\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(out.result, Some(Value::Int(42)));
}

#[test]
fn uncaught_exception_escapes_with_empty_result() {
    let m = module_with(&["func main() -> int {\nbb0:\n  throw user 99\n}"]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(out.exception, Some(ExceptionKind::User(99)));
    assert_eq!(out.result, None);
}

#[test]
fn getfield_typed_ref_reads_null_default() {
    // A fresh object's ref field is null; dereferencing it throws.
    let m = module_with(&[
        "func main() -> int {\n  locals v0: ref v1: ref v2: int v3: int\n  try0: handler bb2 catch npe -> v3\nbb0:\n  v0 = new class0\n  goto bb1\nbb1: [try0]\n  nullcheck v0\n  v1 = getfield v0, field1\n  nullcheck v1\n  v2 = getfield v1, field0\n  return v2\nbb2:\n  return v3\n}",
    ]);
    let out = run_module(&m, win(), "main", &[]).unwrap();
    assert_eq!(
        out.result,
        Some(Value::Int(ExceptionKind::NullPointer.code()))
    );
}

// ---------------------------------------------------------------------------
// Hardening regressions: ill-typed operands and wrap-around addressing.
// These pin the two VM fixes the differential harness gates on; see
// DESIGN.md §9.

/// Builds an (intentionally unverifiable) module straight from the
/// builder, skipping `verify_module` — the point is what the VM does when
/// fed IR the verifier would reject.
fn unverified<F: FnOnce(&mut njc_ir::FuncBuilder)>(body: F) -> Module {
    let mut m = Module::new("hostile");
    let mut b = njc_ir::FuncBuilder::new("main", &[], Type::Int);
    body(&mut b);
    m.add_function(b.finish());
    m
}

#[test]
fn ill_typed_binop_over_refs_is_a_structured_fault_not_a_panic() {
    // Regression: the interpreter used to panic (`unreachable!`-style
    // operand unwraps) on a binop whose operands are references.
    let m = unverified(|b| {
        let r = b.null_ref();
        let bogus = b.binop(njc_ir::Op::Add, r, r);
        b.ret(Some(bogus));
    });
    let fault = run_module(&m, win(), "main", &[]).unwrap_err();
    assert!(
        matches!(fault, njc_vm::Fault::IllTyped { .. }),
        "expected IllTyped, got {fault:?}"
    );
}

#[test]
fn ill_typed_convert_of_ref_is_a_structured_fault() {
    let m = unverified(|b| {
        let r = b.null_ref();
        let bogus = b.convert(r, Type::Int);
        b.ret(Some(bogus));
    });
    let fault = run_module(&m, win(), "main", &[]).unwrap_err();
    assert!(
        matches!(fault, njc_vm::Fault::IllTyped { .. }),
        "expected IllTyped, got {fault:?}"
    );
}

/// An unmarked array load off a null base whose effective address
/// mathematically overflows u64 (index 2^61 + 14 → EA 2^64 + 128).
fn wrap_around_load() -> Module {
    let mut m = Module::new("wrap");
    let mut b = njc_ir::FuncBuilder::new("main", &[], Type::Int);
    let base = b.null_ref();
    let idx = b.iconst((1i64 << 61) + 14);
    let dst = b.var(Type::Int);
    b.emit(njc_ir::Inst::ArrayLoad {
        dst,
        arr: base,
        index: idx,
        ty: Type::Int,
        exception_site: false,
    });
    b.ret(Some(dst));
    m.add_function(b.finish());
    m
}

#[test]
fn wrap_around_index_traps_on_every_platform_model() {
    // Regression: wrapping address arithmetic let the effective address
    // wrap PAST the guard page (EA 128 lands inside it), so the AIX model
    // silently read zero while Windows/S390 trapped — a cross-platform
    // behavioral split on identical input. Checked addressing must turn
    // the overflow into a trap against the guard page on every model that
    // protects the null page.
    for platform in [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ] {
        let fault = run_module(&wrap_around_load(), platform, "main", &[]).unwrap_err();
        assert!(
            matches!(fault, njc_vm::Fault::UnexpectedTrap { .. }),
            "{}: expected UnexpectedTrap, got {fault:?}",
            platform.name
        );
    }
}

#[test]
fn legacy_wrapping_flag_reproduces_the_platform_split() {
    // The fault-injection escape hatch: with the old wrapping arithmetic
    // re-enabled, the wrapped address (128) is inside the guard page, so
    // Windows traps but AIX — whose first-page reads are silent — returns
    // the zero it read. This is exactly the divergence the differential
    // harness detects when the checked-addressing fix is reverted.
    let cfg = VmConfig {
        legacy_wrapping_addressing: true,
        ..VmConfig::default()
    };
    let m = wrap_around_load();
    let fault = Vm::new(&m, Platform::windows_ia32())
        .with_config(cfg)
        .run("main", &[])
        .unwrap_err();
    assert!(matches!(fault, njc_vm::Fault::UnexpectedTrap { .. }));
    let out = Vm::new(&m, Platform::aix_ppc())
        .with_config(cfg)
        .run("main", &[])
        .unwrap();
    assert_eq!(out.result, Some(Value::Int(0)), "AIX silently reads zero");
    assert_eq!(out.stats.silent_null_reads, 1);
}
