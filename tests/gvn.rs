//! Integration tests for the value-numbered forward non-nullness
//! (`OptConfig::gvn`): congruence classes must kill checks the
//! per-variable analysis cannot, stay behaviorally invisible on every
//! trap model, and vanish without a trace when the feature is off.

use njc_arch::Platform;
use njc_ir::{FuncBuilder, Module, Type};
use njc_observe::{CheckEvent, ModuleTrace, Redundancy};
use njc_opt::{optimize_module, optimize_module_traced, ConfigKind, OptConfig};
use njc_vm::run_module;
use njc_workloads::gen::{build_call_module, gen_call_actions, Rng};

/// Eliminations justified by a congruence class rather than a
/// per-variable fact — the provenance-true count of "checks only the
/// value numbering killed" (phase 1 and the Whaley baseline alike).
fn gvn_kills(trace: &ModuleTrace) -> usize {
    trace
        .functions
        .iter()
        .flat_map(|ft| &ft.events)
        .filter(|e| {
            matches!(
                e,
                CheckEvent::Phase1Eliminated {
                    why: Redundancy::Gvn { .. },
                    ..
                } | CheckEvent::WhaleyEliminated {
                    why: Redundancy::Gvn { .. },
                    ..
                }
            )
        })
        .count()
}

/// Explicit checks left in `name` after optimizing.
fn explicit_in(m: &Module, name: &str) -> usize {
    m.functions()
        .iter()
        .filter(|f| f.name() == name)
        .map(njc_core::phase2::count_explicit)
        .sum()
}

/// A bare config: one phase-1 pass, no inlining, no phase 2 — the IR
/// after optimization shows exactly which explicit checks phase 1 kept.
fn bare(p: &Platform) -> OptConfig {
    OptConfig {
        inline: false,
        phase2: false,
        trivial_trap: false,
        iterations: 1,
        ..ConfigKind::Full.to_config(p)
    }
}

/// A module whose final check only dies in value-number space: the two
/// branches prove non-nullness of the *same value* under different
/// names (`v0` directly vs. its copy), so the per-variable intersection
/// at the join is empty while the congruence class keeps the fact.
fn merge_module() -> Module {
    let mut m = Module::new("gvn-merge");
    let c = m.add_class("C", &[("f", Type::Int)]);
    let f = m.field(c, "f").unwrap();

    let helper = {
        let mut b = FuncBuilder::new("helper", &[Type::Ref, Type::Int], Type::Int);
        let p = b.param(0);
        let sel = b.param(1);
        let zero = b.iconst(0);
        let then_bb = b.new_block();
        let else_bb = b.new_block();
        let join = b.new_block();
        b.br_if(njc_ir::Cond::Lt, sel, zero, then_bb, else_bb);
        b.switch_to(then_bb);
        b.null_check(p);
        b.goto(join);
        b.switch_to(else_bb);
        let copy = b.var(Type::Ref);
        b.assign(copy, p);
        b.null_check(copy);
        b.goto(join);
        b.switch_to(join);
        let v = b.get_field(p, f); // nullcheck p — dead only via the class
        b.ret(Some(v));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let o = b.new_object(c);
    let k = b.iconst(7);
    b.put_field(o, f, k);
    let one = b.iconst(1);
    let a = b.call_static(helper, &[o, one], Some(Type::Int)).unwrap();
    let neg = b.iconst(-1);
    let c2 = b.call_static(helper, &[o, neg], Some(Type::Int)).unwrap();
    let s = b.add(a, c2);
    b.observe(s);
    b.ret(Some(s));
    m.add_function(b.finish());
    m
}

/// A module whose final check only dies through re-load congruence: the
/// same field of the same object is loaded twice with no intervening
/// store or call, so the second load shares the first's value number —
/// and the first load's target was checked.
fn reload_module() -> Module {
    reload_module_with(false)
}

/// [`reload_module`], optionally with a function that stores null into
/// `C.g` — which poisons the interprocedural *field* fact while leaving
/// the parameter facts intact, so the re-load congruence stays the only
/// justification for the second check even under `interproc: true`.
fn reload_module_with(spoil_field: bool) -> Module {
    let mut m = Module::new("gvn-reload");
    let d = m.add_class("D", &[("x", Type::Int)]);
    let c = m.add_class("C", &[("g", Type::Ref)]);
    let g = m.field(c, "g").unwrap();
    let x = m.field(d, "x").unwrap();

    let helper = {
        let mut b = FuncBuilder::new("helper", &[Type::Ref], Type::Int);
        let p = b.param(0);
        let v1 = b.get_field_typed(p, g, Type::Ref);
        let a = b.get_field(v1, x); // nullcheck v1: the first load's fact
        let v3 = b.get_field_typed(p, g, Type::Ref); // congruent re-load
        let bv = b.get_field(v3, x); // nullcheck v3 — dead only via the class
        let s = b.add(a, bv);
        b.ret(Some(s));
        m.add_function(b.finish())
    };

    let spoil = spoil_field.then(|| {
        let mut b = FuncBuilder::new_void("spoil", &[Type::Ref]);
        let p = b.param(0);
        let n = b.null_ref();
        b.put_field(p, g, n);
        b.ret(None);
        m.add_function(b.finish())
    });

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let inner = b.new_object(d);
    let k = b.iconst(5);
    b.put_field(inner, x, k);
    let o = b.new_object(c);
    b.put_field(o, g, inner);
    let r = b.call_static(helper, &[o], Some(Type::Int)).unwrap();
    b.observe(r);
    if let Some(spoil) = spoil {
        b.call_static(spoil, &[o], None);
    }
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

#[test]
fn gvn_kills_phi_merged_fact_on_every_trap_model() {
    // Under the Whaley baseline (pure forward dataflow, no motion) the
    // join check is exactly the fact-loss bug: each branch proves the
    // same value non-null under a different name, the per-variable
    // intersection drops it, and only the congruence class keeps it.
    // (Phase 1 instead *hoists* the obligation — backward motion plus
    // insertion covers this shape without needing the class.)
    let m = merge_module();
    for p in [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ] {
        let base = OptConfig {
            inline: false,
            phase2: false,
            trivial_trap: false,
            iterations: 1,
            ..ConfigKind::OldNullCheck.to_config(&p)
        };
        let mut off = m.clone();
        let stats_off = optimize_module(&mut off, &p, &base);
        let mut on = m.clone();
        let (stats_on, trace) =
            optimize_module_traced(&mut on, &p, &OptConfig { gvn: true, ..base });
        assert!(
            gvn_kills(&trace) >= 1,
            "{}: the merged fact must kill the join check",
            p.name
        );
        assert_eq!(
            stats_on.null_checks.whaley.gvn_eliminated,
            gvn_kills(&trace),
            "{}: stats and provenance must agree",
            p.name
        );
        assert!(
            stats_on.null_checks.whaley.eliminated > stats_off.null_checks.whaley.eliminated,
            "{}: GVN-on must eliminate strictly more (off {}, on {})",
            p.name,
            stats_off.null_checks.whaley.eliminated,
            stats_on.null_checks.whaley.eliminated
        );
        assert_eq!(
            explicit_in(&off, "helper"),
            explicit_in(&on, "helper") + 1,
            "{}: exactly the join check must die in the IR",
            p.name
        );

        // And the optimized modules behave identically.
        let a = run_module(&off, p, "main", &[]).unwrap();
        let b = run_module(&on, p, "main", &[]).unwrap();
        a.assert_equivalent(&b).unwrap();
    }
}

#[test]
fn gvn_kills_reloaded_field_check_on_every_trap_model() {
    let m = reload_module();
    for p in [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ] {
        let base = bare(&p);
        let mut off = m.clone();
        let stats_off = optimize_module(&mut off, &p, &base);
        let mut on = m.clone();
        let (stats_on, trace) =
            optimize_module_traced(&mut on, &p, &OptConfig { gvn: true, ..base });
        assert!(
            gvn_kills(&trace) >= 1,
            "{}: the re-load's check must die via congruence",
            p.name
        );
        assert!(
            stats_on.null_checks.phase1.eliminated > stats_off.null_checks.phase1.eliminated,
            "{}: GVN-on must eliminate strictly more (off {}, on {})",
            p.name,
            stats_off.null_checks.phase1.eliminated,
            stats_on.null_checks.phase1.eliminated
        );

        let a = run_module(&off, p, "main", &[]).unwrap();
        let b = run_module(&on, p, "main", &[]).unwrap();
        a.assert_equivalent(&b).unwrap();
    }
}

#[test]
fn store_kills_reload_congruence_in_the_pipeline() {
    // The negative control for re-load congruence: a store to the same
    // field between the two loads bumps the memory epoch, so the second
    // load is *not* congruent and its check must survive even with GVN on.
    let mut m = Module::new("gvn-store-kill");
    let d = m.add_class("D", &[("x", Type::Int)]);
    let c = m.add_class("C", &[("g", Type::Ref)]);
    let g = m.field(c, "g").unwrap();
    let x = m.field(d, "x").unwrap();

    {
        let mut b = FuncBuilder::new("helper", &[Type::Ref, Type::Ref], Type::Int);
        let p = b.param(0);
        let q = b.param(1);
        let v1 = b.get_field_typed(p, g, Type::Ref);
        let a = b.get_field(v1, x);
        b.put_field(p, g, q); // epoch bump: v3 below is a different value
        let v3 = b.get_field_typed(p, g, Type::Ref);
        let bv = b.get_field(v3, x);
        let s = b.add(a, bv);
        b.ret(Some(s));
        m.add_function(b.finish());
    }

    let p = Platform::windows_ia32();
    let base = bare(&p);
    let mut off = m.clone();
    optimize_module(&mut off, &p, &base);
    let mut on = m.clone();
    let (_, trace) = optimize_module_traced(&mut on, &p, &OptConfig { gvn: true, ..base });
    assert_eq!(
        gvn_kills(&trace),
        0,
        "no congruence survives the intervening store"
    );
    assert_eq!(
        explicit_in(&off, "helper"),
        explicit_in(&on, "helper"),
        "GVN must not remove the re-load's check across the store"
    );
}

#[test]
fn disabled_gvn_is_byte_identical() {
    // `gvn: false` must produce the same module as every preset (all of
    // which leave the flag off) — the feature leaves no residue.
    let p = Platform::windows_ia32();
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed ^ 0x6716);
        let len = rng.range(1, 10);
        let actions = gen_call_actions(&mut rng, len, 2);
        let m = build_call_module(&actions);
        let mut flag_off = m.clone();
        optimize_module(
            &mut flag_off,
            &p,
            &OptConfig {
                gvn: false,
                ..ConfigKind::Full.to_config(&p)
            },
        );
        let mut plain = m.clone();
        optimize_module(&mut plain, &p, &ConfigKind::Full.to_config(&p));
        assert_eq!(flag_off, plain, "seed {seed}");
    }
}

#[test]
fn gvn_composes_with_interproc_facts() {
    // Interprocedural facts seed the congruence classes: with both on,
    // everything the two features kill separately dies together, the
    // ledgers still reconcile, and behavior is unchanged. (The spoiler
    // keeps the field fact away so the re-load's check stays a
    // congruence-only kill even with the inference running.)
    let m = reload_module_with(true);
    let p = Platform::windows_ia32();
    let base = bare(&p);
    let mut both = m.clone();
    let (stats, trace) = optimize_module_traced(
        &mut both,
        &p,
        &OptConfig {
            interproc: true,
            gvn: true,
            ..base
        },
    );
    trace.check_conservation().unwrap();
    assert!(
        stats.null_checks.phase1.gvn_eliminated >= 1,
        "congruence kills must survive the interprocedural seeding"
    );
    let mut off = m.clone();
    optimize_module(&mut off, &p, &base);
    let a = run_module(&off, p, "main", &[]).unwrap();
    let b = run_module(&both, p, "main", &[]).unwrap();
    a.assert_equivalent(&b).unwrap();
}

#[test]
fn gvn_conservation_ledger_balances() {
    // Every GVN-attributed elimination must enter the conservation ledger
    // like any other: origins − eliminations − conversions = survivors.
    for m in [merge_module(), reload_module()] {
        let p = Platform::windows_ia32();
        let mut on = m.clone();
        let (_, trace) = optimize_module_traced(
            &mut on,
            &p,
            &OptConfig {
                gvn: true,
                ..ConfigKind::Full.to_config(&p)
            },
        );
        trace.check_conservation().unwrap();
    }
}
