//! End-to-end tests of the differential execution & fault-injection
//! harness (`njc::bench::difftest`): the smoke corpus must be
//! divergence-free on a healthy tree, the harness must detect and
//! minimize the wrapping-addressing bug when it is re-enabled, and the
//! committed minimized fixtures must replay with the fixed (uniform)
//! behavior on every platform model.

use njc::bench::difftest::{run_difftest, DiffOptions, Divergence};
use njc_arch::Platform;
use njc_ir::{Module, Type};
use njc_opt::{optimize_module, ConfigKind, OptConfig};
use njc_vm::{run_module, Fault};

fn quick(smoke: bool, seeds: u64) -> DiffOptions {
    DiffOptions {
        seeds,
        smoke,
        ..DiffOptions::default()
    }
}

#[test]
fn smoke_corpus_is_divergence_free() {
    let report = run_difftest(&quick(true, 2));
    assert!(
        report.is_clean(),
        "healthy tree must diff clean: {:?}",
        report.divergences.first()
    );
    assert_eq!(report.panicked_cells, 0);
    // Two ill-typed probes × three platform baselines, all surviving as
    // structured faults.
    assert_eq!(report.ill_typed_cells, 6);
    // The expected-unsound AixIllegalImplicit config misses NPEs on the
    // null-exercising programs — the paper's claim 9, reproduced
    // automatically on every run.
    assert!(
        report.claim9_confirmations >= 1,
        "claim 9 should reproduce: {report:?}"
    );
}

#[test]
fn reverted_addressing_fix_is_detected_and_minimized() {
    // `legacy_wrapping` simulates reverting the checked-addressing fix in
    // the heap: the harness must detect the cross-platform split (AIX
    // silently reads the guard page, Windows/S390 trap) and shrink the
    // offending generated program down to the single culprit action.
    let fixtures = std::env::temp_dir().join("njc-difftest-test-fixtures");
    let _ = std::fs::remove_dir_all(&fixtures);
    let opts = DiffOptions {
        legacy_wrapping: true,
        fixtures_dir: Some(fixtures.clone()),
        ..quick(true, 12)
    };
    let report = run_difftest(&opts);
    assert!(
        !report.divergences.is_empty(),
        "the reverted fix must be detected"
    );
    let minimized: Vec<&Divergence> = report
        .divergences
        .iter()
        .filter(|d| d.minimized.is_some())
        .collect();
    assert!(!minimized.is_empty(), "generated programs must minimize");
    for d in &minimized {
        assert_eq!(
            d.minimized.as_deref(),
            Some("[RawLoad(GuardWrap)]"),
            "every divergence under this fault mode shrinks to the \
             guard-wrap load: {d:?}"
        );
        let path = d.fixture.as_ref().expect("fixture emitted");
        let text = std::fs::read_to_string(path).expect("fixture readable");
        assert!(text.contains("func work"), "fixture is replayable IR");
    }
    let _ = std::fs::remove_dir_all(&fixtures);
}

/// Replicates the CLI's `.njc` loader: synthesized classes `C0..C7` with
/// eight int fields each, functions split on `func ` lines, header
/// comments before the first function skipped.
fn load_fixture(path: &str) -> Module {
    let source = std::fs::read_to_string(path).unwrap();
    let mut module = Module::new("fixture");
    for c in 0..8 {
        let fields: Vec<(String, Type)> = (0..8).map(|f| (format!("f{f}"), Type::Int)).collect();
        let refs: Vec<(&str, Type)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        module.add_class(format!("C{c}"), &refs);
    }
    let mut chunks: Vec<String> = Vec::new();
    for line in source.lines() {
        if line.trim_start().starts_with("func ") {
            chunks.push(String::new());
        }
        if let Some(cur) = chunks.last_mut() {
            cur.push_str(line);
            cur.push('\n');
        }
    }
    for chunk in &chunks {
        module.add_function(njc_ir::parse_function(chunk).unwrap());
    }
    njc_ir::verify_module(&module).unwrap();
    module
}

#[test]
fn handler_entry_copy_fixture_is_config_invariant() {
    // The handler-entry fact fixture: a copy checked before the try
    // region's first throw point is re-checked inside the handler. Every
    // sound configuration — with and without the value-numbered analysis
    // — must behave exactly like the unoptimized module on every
    // platform model, whether or not it removes the handler's check.
    let m = load_fixture("tests/fixtures/handler_entry_copy.njc");
    for platform in [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ] {
        let base = run_module(&m, platform, "main", &[]).unwrap();
        for kind in [
            ConfigKind::Full,
            ConfigKind::Phase1Only,
            ConfigKind::OldNullCheck,
            ConfigKind::NoNullOptNoTrap,
        ] {
            for gvn in [false, true] {
                let mut opt = m.clone();
                optimize_module(
                    &mut opt,
                    &platform,
                    &OptConfig {
                        gvn,
                        ..kind.to_config(&platform)
                    },
                );
                let out = run_module(&opt, platform, "main", &[]).unwrap();
                base.assert_equivalent(&out).unwrap_or_else(|e| {
                    panic!(
                        "{:?}{} on {}: {e}",
                        kind,
                        if gvn { "+gvn" } else { "" },
                        platform.name
                    )
                });
            }
        }
    }
}

#[test]
fn committed_fixtures_replay_with_uniform_fault_on_every_platform() {
    // Under checked addressing (the fix), the guard-wrap load's overflow
    // is caught and reported as a trap against the guard page at an
    // unmarked site — the SAME structured fault on every platform model,
    // which is exactly why the harness diffs clean today. Under the old
    // wrapping arithmetic these fixtures split AIX from Windows/S390.
    for fixture in [
        "tests/fixtures/guard_wrap_minimized.njc",
        "tests/fixtures/seed11_guard_wrap_minimized.njc",
    ] {
        let m = load_fixture(fixture);
        for platform in [
            Platform::windows_ia32(),
            Platform::aix_ppc(),
            Platform::linux_s390(),
        ] {
            let fault = run_module(&m, platform, "main", &[]).unwrap_err();
            assert!(
                matches!(fault, Fault::UnexpectedTrap { .. }),
                "{fixture} on {}: expected UnexpectedTrap, got {fault:?}",
                platform.name
            );
        }
    }
}
