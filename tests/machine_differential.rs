//! Differential testing: the machine-level simulator (lowered code +
//! exception tables) must agree with the IR interpreter on every
//! observable, for every workload and optimization configuration.

use njc_arch::Platform;
use njc_codegen::{lower_module, MValue, Machine};
use njc_jit::compile;
use njc_opt::ConfigKind;
use njc_vm::{Value, Vm};

fn assert_agree(
    name: &str,
    kind: &str,
    vm_out: &njc_vm::Outcome,
    m_out: &njc_codegen::MachineOutcome,
) {
    assert_eq!(
        vm_out.exception, m_out.exception,
        "{name} [{kind}]: exception mismatch"
    );
    let conv = |v: &Value| match *v {
        Value::Int(i) => MValue::Int(i),
        Value::Float(f) => MValue::Float(f),
        Value::Ref(_) => MValue::Ref(0), // addresses differ between heaps
    };
    assert_eq!(
        vm_out.result.as_ref().map(conv),
        m_out.result,
        "{name} [{kind}]: result mismatch"
    );
    let vm_trace: Vec<MValue> = vm_out.trace.iter().map(conv).collect();
    assert_eq!(vm_trace, m_out.trace, "{name} [{kind}]: trace mismatch");
}

#[test]
fn machine_matches_interpreter_on_unoptimized_workloads() {
    let p = Platform::windows_ia32();
    for w in njc_workloads::all() {
        let vm_out = Vm::new(&w.module, p).run("main", &[]).unwrap();
        let mm = lower_module(&w.module);
        let m_out = Machine::new(&mm, p).run("main").unwrap();
        assert_agree(w.name, "unoptimized", &vm_out, &m_out);
    }
}

#[test]
fn machine_matches_interpreter_on_optimized_workloads() {
    for p in [Platform::windows_ia32(), Platform::aix_ppc()] {
        for w in njc_workloads::all() {
            for kind in [ConfigKind::Full, ConfigKind::OldNullCheck] {
                let compiled = compile(&w, &p, kind);
                let vm_out = Vm::new(&compiled.module, p).run("main", &[]).unwrap();
                let mm = lower_module(&compiled.module);
                let m_out = Machine::new(&mm, p).run("main").unwrap();
                assert_agree(w.name, &format!("{kind:?} {}", p.name), &vm_out, &m_out);
                // The machine's explicit check count must match the
                // interpreter's: both execute the same residual checks.
                assert_eq!(
                    vm_out.stats.explicit_null_checks, m_out.stats.explicit_null_checks,
                    "{} [{kind:?}]: residual check count",
                    w.name
                );
            }
        }
    }
}

#[test]
fn machine_traps_dispatch_through_the_site_table() {
    // The null-seeded stress program under Full: its NPEs arrive as real
    // hardware traps resolved by PC lookup.
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: njc_workloads::micro::null_seeded(),
        entry: "main",
        work_units: 1,
    };
    let p = Platform::windows_ia32();
    let compiled = compile(&w, &p, ConfigKind::Full);
    let vm_out = Vm::new(&compiled.module, p).run("main", &[]).unwrap();
    let mm = lower_module(&compiled.module);
    assert!(mm.total_sites() > 0, "the optimized code relies on traps");
    let m_out = Machine::new(&mm, p).run("main").unwrap();
    assert_agree("null_seeded", "Full", &vm_out, &m_out);
    assert!(
        m_out.stats.traps_taken > 0,
        "NPEs must arrive via hardware traps: {:?}",
        m_out.stats
    );
}

#[test]
fn machine_detects_unsound_code() {
    // Strip the exception site tables from correctly optimized code: the
    // first trap must become an UnexpectedTrap machine fault.
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: njc_workloads::micro::null_seeded(),
        entry: "main",
        work_units: 1,
    };
    let p = Platform::windows_ia32();
    let compiled = compile(&w, &p, ConfigKind::Full);
    let mut mm = lower_module(&compiled.module);
    for f in &mut mm.functions {
        f.sites = njc_codegen::ExceptionSiteTable::new();
    }
    let err = Machine::new(&mm, p).run("main").unwrap_err();
    assert!(
        matches!(err, njc_codegen::MachineFault::UnexpectedTrap { .. }),
        "{err}"
    );
}

#[test]
fn unexpected_trap_carries_reconcilable_provenance() {
    // The enriched fault must identify the escape precisely enough to
    // reconcile it against the intact site table: faulting function, PC,
    // access kind, and static offset all name the exact entry that was
    // deleted, and with the rest of the table left in place the nearest
    // surviving site is offered as the provenance lead.
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: njc_workloads::micro::null_seeded(),
        entry: "main",
        work_units: 1,
    };
    let p = Platform::windows_ia32();
    let compiled = compile(&w, &p, ConfigKind::Full);
    let intact = lower_module(&compiled.module);

    // First escape: strip every table, so the very first trap escapes.
    let mut stripped = intact.clone();
    for f in &mut stripped.functions {
        f.sites = njc_codegen::ExceptionSiteTable::new();
    }
    let err = Machine::new(&stripped, p).run("main").unwrap_err();
    let njc_codegen::MachineFault::UnexpectedTrap {
        function,
        pc,
        kind,
        offset,
        nearest_site,
    } = err
    else {
        panic!("expected UnexpectedTrap, got {err:?}");
    };
    assert!(
        nearest_site.is_none(),
        "a fully stripped function offers no lead"
    );
    // Reconcile against the intact table: the fault names exactly the
    // entry that was deleted, down to access kind and static offset.
    let fi = intact.function_by_name(&function).expect("known function");
    let site = intact.functions[fi]
        .sites
        .get(pc)
        .unwrap_or_else(|| panic!("pc {pc} of {function} is not a registered site"));
    assert_eq!(site.kind, kind, "access kind matches the table entry");
    assert_eq!(site.offset, offset, "static offset matches the table entry");
    assert!(
        site.offset.is_some_and(|o| o < p.trap.trap_area_bytes),
        "the escaped access is inside the trap area: {:?}",
        site.offset
    );

    // Second escape: delete only that one entry. The trap still escapes,
    // but now the nearest surviving site is handed over as the lead.
    let mut holed = intact.clone();
    let table = &mut holed.functions[fi].sites;
    let mut rebuilt = njc_codegen::ExceptionSiteTable::new();
    for (spc, info) in table.iter() {
        if spc != pc {
            rebuilt.insert(spc, *info);
        }
    }
    assert!(!rebuilt.is_empty(), "the function has surviving sites");
    holed.functions[fi].sites = rebuilt;
    let err = Machine::new(&holed, p).run("main").unwrap_err();
    let njc_codegen::MachineFault::UnexpectedTrap {
        pc: pc2,
        nearest_site: Some((lead_pc, lead_check)),
        ..
    } = err
    else {
        panic!("expected a led UnexpectedTrap, got {err:?}");
    };
    assert_eq!(pc2, pc, "the same access escapes");
    assert_ne!(lead_pc, pc, "the lead is a surviving neighbor");
    assert!(
        intact.functions[fi].sites.contains(lead_pc),
        "the lead is a genuine registered site"
    );
    assert_eq!(
        intact.functions[fi].sites.get(lead_pc).unwrap().check,
        lead_check,
        "the lead hands over the surviving entry's IR check"
    );
}

#[test]
fn illegal_implicit_misses_npes_at_machine_level_too() {
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: njc_workloads::micro::null_seeded(),
        entry: "main",
        work_units: 1,
    };
    let aix = Platform::aix_ppc();
    let compiled = compile(&w, &aix, ConfigKind::AixIllegalImplicit);
    let mm = lower_module(&compiled.module);
    let m_out = Machine::new(&mm, aix).run("main").unwrap();
    assert!(m_out.stats.missed_npes > 0, "{:?}", m_out.stats);
}
