//! Integration properties of the multi-tenant compilation service
//! (`njc_runtime::ServiceRuntime`).
//!
//! Four acceptance properties under one roof: cross-tenant deduplication
//! must serve byte-identical code (the shared cache is a correctness
//! no-op, only an economics win); shard routing must be deterministic and
//! content-addressed for real workload bodies; a capacity-1 shared cache
//! under contention must evict without changing any tenant's results; and
//! tier-down must return a quiesced site to the implicit (free) form with
//! every tier's conservation ledger still balanced.

use njc_arch::{Platform, TrapModel};
use njc_core::ExplicitOverride;
use njc_ir::FunctionId;
use njc_observe::FunctionTrace;
use njc_opt::ConfigKind;
use njc_runtime::{
    hot_field_workload, many_hot_workload, phase_shift_workload, CacheKey, CompiledArtifact,
    ServiceConfig, ServiceRuntime, ShardedCodeCache, TenantSpec, TieredRuntime, PHASE_NULL,
};
use njc_vm::Value;
use std::sync::Arc;

fn fleet(name: &str, module: &njc_ir::Module, args: &[Value], n: usize) -> Vec<TenantSpec> {
    (0..n)
        .map(|i| TenantSpec {
            name: format!("{name}-{i}"),
            module: module.clone(),
            entry: "main".to_string(),
            args: args.to_vec(),
            recovery: njc_runtime::RecoveryPolicy::abort(),
        })
        .collect()
}

/// Cross-tenant dedup is an economics win and a correctness no-op: every
/// tenant of the same workload receives byte-identical final bodies, equal
/// to what a single-tenant runtime compiles in isolation, while the fleet
/// pays strictly less fresh compile work than per-tenant isolation would.
#[test]
fn cross_tenant_dedup_serves_byte_identical_code() {
    let platform = Platform::windows_ia32();
    let module = hot_field_workload();
    let args = [Value::Int(2_000), Value::Ref(0)];
    let service = ServiceRuntime::new(platform);
    let out = service
        .run(&fleet("tenant", &module, &args, 6))
        .expect("fleet runs clean");
    out.verify().expect("every tenant reconciles and converges");

    assert!(out.dedup_hits > 0, "identical tenants must dedup");
    assert!(
        out.compiles_performed < out.isolated_compiles,
        "shared cache must beat isolation: {} fresh !< {} isolated",
        out.compiles_performed,
        out.isolated_compiles
    );

    let reference = TieredRuntime::new(module.clone(), platform)
        .run("main", &args)
        .expect("single-tenant reference runs clean");
    for t in &out.tenants {
        assert_eq!(
            t.outcome.final_module, reference.final_module,
            "{}: dedup must serve byte-identical code",
            t.name
        );
        assert_eq!(t.outcome.steady.stats, reference.steady.stats, "{}", t.name);
        assert_eq!(t.outcome.overrides, reference.overrides, "{}", t.name);
    }
}

/// Shard routing for real workload bodies: `body_hash % shards`, stable
/// across lookups and across cache instances of equal fanout, and
/// invariant under config, trap model, and override set — every compiled
/// variant of one source body co-locates, which is what makes dedup a
/// plain cache hit.
#[test]
fn shard_key_routing_is_deterministic_and_content_addressed() {
    let a = ShardedCodeCache::new(8, 4);
    let b = ShardedCodeCache::new(8, 4);
    let mut distinct = std::collections::BTreeSet::new();
    for module in [hot_field_workload(), many_hot_workload(5)] {
        for fi in 0..module.num_functions() {
            let f = module.function(FunctionId::new(fi));
            let base = CacheKey::new(
                f,
                ConfigKind::Full,
                TrapModel::windows_ia32(),
                &ExplicitOverride::new(),
            );
            let home = a.shard_of(&base);
            assert_eq!(home, (base.body_hash() % 8) as usize);
            assert_eq!(home, a.shard_of(&base), "stable across lookups");
            assert_eq!(home, b.shard_of(&base), "stable across instances");
            distinct.insert(home);

            let mut ov = ExplicitOverride::new();
            ov.insert(8, njc_ir::AccessKind::Read);
            for variant in [
                CacheKey::new(f, ConfigKind::OldNullCheck, TrapModel::windows_ia32(), &ov),
                CacheKey::new(
                    f,
                    ConfigKind::Full,
                    TrapModel::aix_ppc(),
                    &ExplicitOverride::new(),
                ),
            ] {
                assert_ne!(variant, base, "distinct key");
                assert_eq!(
                    a.shard_of(&variant),
                    home,
                    "all variants of one body co-locate"
                );
            }
        }
    }
    assert!(
        distinct.len() > 1,
        "distinct bodies must spread across shards, all landed in {distinct:?}"
    );
}

/// Capacity-1 shared cache under real contention. Driven directly with the
/// single-tenant compile pattern (miss, then insert) the distinct hot
/// bodies of `many_hot_workload` evict each other deterministically; run
/// as a service fleet over the same tiny cache, the thrash shows up in the
/// shard counters but every tenant's results match a roomy-cache
/// single-tenant reference byte-for-byte.
#[test]
fn capacity_one_shared_cache_evicts_without_changing_results() {
    // Direct drive: ties admit, so each new body evicts the previous one.
    let tiny = ShardedCodeCache::new(1, 1);
    let module = many_hot_workload(3);
    for fi in 0..module.num_functions() {
        let f = module.function(FunctionId::new(fi));
        let key = CacheKey::new(
            f,
            ConfigKind::Full,
            TrapModel::windows_ia32(),
            &ExplicitOverride::new(),
        );
        assert!(tiny.get(&key).is_none(), "cold miss");
        assert!(
            tiny.insert(
                key,
                Arc::new(CompiledArtifact {
                    body: Arc::new(f.clone()),
                    trace: FunctionTrace::default(),
                })
            ),
            "equal interest ties admit"
        );
    }
    let s = tiny.shard_stats()[0];
    assert_eq!(s.occupancy, 1, "capacity 1 holds one artifact");
    assert_eq!(
        s.evictions as usize,
        module.num_functions() - 1,
        "every admission past the first evicts"
    );

    // Service drive: four tenants × four distinct hot bodies through one
    // capacity-1 shard. Whatever mix of evictions and admission rejects
    // the interleaving produces, the observable results cannot move.
    let platform = Platform::windows_ia32();
    let module = many_hot_workload(4);
    let args = [Value::Int(1_200), Value::Ref(0)];
    let mut config = ServiceConfig::for_platform(&platform);
    config.shards = 1;
    config.shard_capacity = 1;
    let service = ServiceRuntime::with_config(platform, config);
    let out = service
        .run(&fleet("contender", &module, &args, 4))
        .expect("fleet runs clean");
    out.verify().expect("every tenant reconciles and converges");
    let s = &out.shards[0];
    assert!(s.occupancy <= 1, "capacity bound holds: {s:?}");
    assert!(
        s.evictions + s.admission_rejects > 0,
        "distinct bodies through capacity 1 must contend: {s:?}"
    );
    let reference = TieredRuntime::new(module.clone(), platform)
        .run("main", &args)
        .expect("reference runs clean");
    for t in &out.tenants {
        assert_eq!(t.outcome.final_module, reference.final_module, "{}", t.name);
        assert_eq!(t.outcome.steady.stats, reference.steady.stats, "{}", t.name);
    }
}

/// Tier-down: a site that traps hard in one early burst and then quiesces
/// must settle back to the implicit (free) form — zero override slots —
/// while the burst itself stays visible as steady-state traps, and every
/// installed tier's CheckId conservation ledger still balances.
#[test]
fn tier_down_returns_quiesced_site_to_implicit_with_ledger_conservation() {
    let platform = Platform::windows_ia32();
    let module = phase_shift_workload(16);
    // One 16-iteration null phase, then clean forever: 16/12000 is far
    // below the 2/1200 break-even, so the cumulative fixpoint must strip
    // the override back off.
    let args = [Value::Int(12_000), Value::Ref(0), Value::Int(PHASE_NULL)];
    let out = TieredRuntime::new(module.clone(), platform)
        .run("main", &args)
        .expect("burst workload runs clean");
    out.reconcile().expect("all traps and checks explained");
    out.verify_convergence().expect("overrides converged");
    for (name, ov) in &out.overrides {
        assert!(
            ov.is_empty(),
            "{name}: quiesced site must tier back down, kept {ov:?}"
        );
    }
    assert_eq!(
        out.steady.stats.traps_taken, 16,
        "the burst replays as implicit-site traps in the steady state"
    );
    assert_eq!(out.steady.stats.explicit_null_checks, 0, "no residue");
    // Conservation holds in every tier ever installed, including any
    // overridden intermediate tier the burst provoked mid-run.
    for (name, tiers) in &out.tier_traces {
        for (i, trace) in tiers.iter().enumerate() {
            trace
                .ledger
                .check()
                .unwrap_or_else(|e| panic!("{name} tier {i}: {e}"));
        }
    }

    // The same settlement holds for every tenant through the service.
    let service = ServiceRuntime::new(platform);
    let svc = service
        .run(&fleet("burst", &module, &args, 3))
        .expect("fleet runs clean");
    svc.verify().expect("every tenant reconciles and converges");
    for t in &svc.tenants {
        let slots: usize = t.outcome.overrides.values().map(|ov| ov.len()).sum();
        assert_eq!(
            slots, 0,
            "{}: tier-down must hold under the service",
            t.name
        );
        assert_eq!(t.outcome.final_module, out.final_module, "{}", t.name);
    }
}
