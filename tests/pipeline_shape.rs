//! Performance-*shape* regression tests: the orderings the paper's tables
//! claim must hold on our workloads. These complement the equivalence
//! tests — an optimizer change that silently stops hoisting would pass
//! equivalence but fail here.

use njc_arch::Platform;
use njc_jit::{compile, execute};
use njc_opt::ConfigKind;
use njc_workloads::Workload;

fn cycles(w: &Workload, p: &Platform, kind: ConfigKind) -> u64 {
    execute(&compile(w, p, kind), p).unwrap().stats.cycles
}

/// Claim 1 (Tables 1–2): Full ≤ Phase1Only ≤ ~Old ≤ NoOptTrap ≤ NoOptNoTrap
/// (allowing ties; Phase1Only may exceed Old only slightly — the mtrt
/// effect §3.3.2 exists to fix).
#[test]
fn configuration_ordering_holds_suite_wide() {
    let p = Platform::windows_ia32();
    for w in njc_workloads::all() {
        let full = cycles(&w, &p, ConfigKind::Full);
        let p1 = cycles(&w, &p, ConfigKind::Phase1Only);
        let old = cycles(&w, &p, ConfigKind::OldNullCheck);
        let trap = cycles(&w, &p, ConfigKind::NoNullOptTrap);
        let none = cycles(&w, &p, ConfigKind::NoNullOptNoTrap);
        assert!(full <= p1, "{}: full {full} > phase1 {p1}", w.name);
        assert!(
            full <= old,
            "{}: full {full} > old {old} — the paper's headline",
            w.name
        );
        assert!(old <= trap, "{}: old {old} > trap {trap}", w.name);
        assert!(trap <= none, "{}: trap {trap} > none {none}", w.name);
        // Phase1-only may regress vs Old (unconverted hoisted checks) but
        // not beyond the no-opt baselines.
        assert!(p1 <= trap, "{}: phase1 {p1} > trap-only {trap}", w.name);
    }
}

/// Claim 2: Fourier is insensitive to null check optimization (paper ~0.3%).
#[test]
fn fourier_is_flat() {
    let p = Platform::windows_ia32();
    let w = njc_workloads::jbytemark()
        .into_iter()
        .find(|w| w.name == "Fourier")
        .unwrap();
    let full = cycles(&w, &p, ConfigKind::Full) as f64;
    let none = cycles(&w, &p, ConfigKind::NoNullOptNoTrap) as f64;
    let spread = (none / full - 1.0) * 100.0;
    assert!(spread.abs() < 2.0, "Fourier spread {spread:.2}% too large");
}

/// Claim 3 (§5.1): the multidimensional-array kernels gain substantially
/// from the two-phase algorithm over the old one.
#[test]
fn multidim_kernels_beat_old_substantially() {
    let p = Platform::windows_ia32();
    for name in ["Assignment", "LU Decomposition", "Neural Net"] {
        let w = njc_workloads::jbytemark()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let full = cycles(&w, &p, ConfigKind::Full) as f64;
        let old = cycles(&w, &p, ConfigKind::OldNullCheck) as f64;
        let gain = (old / full - 1.0) * 100.0;
        assert!(gain >= 8.0, "{name}: only {gain:.1}% over Old");
    }
}

/// Claim 4 (§5.1): mtrt's phase 2 matters — Full beats Old, while
/// Phase1-only does not capture the whole win.
#[test]
fn mtrt_needs_phase2() {
    let p = Platform::windows_ia32();
    let w = njc_workloads::specjvm98()
        .into_iter()
        .find(|w| w.name == "mtrt")
        .unwrap();
    let full = cycles(&w, &p, ConfigKind::Full);
    let p1 = cycles(&w, &p, ConfigKind::Phase1Only);
    let old = cycles(&w, &p, ConfigKind::OldNullCheck);
    assert!(full < old, "mtrt: full {full} !< old {old}");
    assert!(full < p1, "mtrt: phase 2 must improve on phase 1 alone");
}

/// Claim 5 (Tables 6–7): AIX ordering Speculation ≤ NoSpeculation ≤
/// NoNullOpt; speculation helps a distinct subset of kernels (those with
/// loop-invariant reads blocked by in-loop checks — Neural Net and LU in
/// the paper's Figure 14) and is neutral for the rest.
#[test]
fn aix_speculation_ordering() {
    let p = Platform::aix_ppc();
    let mut gaps = Vec::new();
    for w in njc_workloads::jbytemark() {
        let spec = cycles(&w, &p, ConfigKind::AixSpeculation);
        let nospec = cycles(&w, &p, ConfigKind::AixNoSpeculation);
        let noopt = cycles(&w, &p, ConfigKind::AixNoNullOpt);
        assert!(spec <= nospec, "{}: speculation must not hurt", w.name);
        assert!(nospec <= noopt, "{}: phase 1 must not hurt on AIX", w.name);
        let gap = (nospec as f64 / spec as f64 - 1.0) * 100.0;
        gaps.push((w.name, gap));
    }
    // Neural Net must be among the kernels speculation actually helps...
    let nn = gaps.iter().find(|(n, _)| *n == "Neural Net").unwrap().1;
    assert!(nn >= 2.0, "Neural Net speculation gap too small: {nn:.1}%");
    // ... and speculation must be *selective*: several kernels unaffected.
    let flat = gaps.iter().filter(|(_, g)| *g < 0.5).count();
    assert!(flat >= 3, "speculation should be selective: {gaps:?}");
}

/// Claim 6 (§3.3.1): the PowerPC conditional trap makes explicit checks
/// cheaper — the same no-opt workload pays relatively less for checks on
/// AIX than on Windows.
#[test]
fn ppc_conditional_trap_is_cheaper() {
    let win = Platform::windows_ia32();
    let aix = Platform::aix_ppc();
    let w = njc_workloads::jbytemark()
        .into_iter()
        .find(|w| w.name == "Numeric Sort")
        .unwrap();
    // Check cost share = (no-trap baseline - full) relative overhead. The
    // explicit check itself costs 2 cycles on IA32, 1 on PPC.
    let win_none = cycles(&w, &win, ConfigKind::NoNullOptNoTrap) as f64;
    let win_full = cycles(&w, &win, ConfigKind::Full) as f64;
    let aix_none = cycles(&w, &aix, ConfigKind::AixNoNullOpt) as f64;
    let aix_spec = cycles(&w, &aix, ConfigKind::AixSpeculation) as f64;
    let win_overhead = win_none / win_full;
    let aix_overhead = aix_none / aix_spec;
    assert!(
        aix_overhead < win_overhead,
        "check overhead should be smaller on PPC: {aix_overhead:.3} vs {win_overhead:.3}"
    );
}

/// Claim 7 (Table 4/5 shape): the two-phase optimization costs more
/// compile time than Whaley's, but the nullcheck share of the pipeline
/// stays small.
#[test]
fn compile_time_shape() {
    let p = Platform::windows_ia32();
    let w = njc_workloads::specjvm98()
        .into_iter()
        .find(|w| w.name == "javac")
        .unwrap();
    let new = compile(&w, &p, ConfigKind::Full);
    let old = compile(&w, &p, ConfigKind::OldNullCheck);
    let new_nc = new.stats.nullcheck_time().as_secs_f64();
    let old_nc = old.stats.nullcheck_time().as_secs_f64();
    assert!(
        new_nc > old_nc,
        "two-phase must cost more pass time than forward-only"
    );
    let share = new_nc / new.stats.total_time().as_secs_f64();
    assert!(
        share < 0.5,
        "nullcheck share of pipeline should stay a minority: {share:.2}"
    );
}

/// The inliner's role (§5.1): disabling inlining must leave mtrt's virtual
/// calls in place, which the statistics expose.
#[test]
fn mtrt_inlining_produces_direct_calls() {
    let p = Platform::windows_ia32();
    let w = njc_workloads::specjvm98()
        .into_iter()
        .find(|w| w.name == "mtrt")
        .unwrap();
    let c = compile(&w, &p, ConfigKind::Full);
    assert!(c.stats.inline.devirtualized >= 2, "{:?}", c.stats.inline);
    assert!(c.stats.inline.inlined >= 2, "{:?}", c.stats.inline);
}
