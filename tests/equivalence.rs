//! Full-matrix correctness: every workload × every configuration × both
//! platforms must be observationally equivalent to the unoptimized
//! program (except the deliberately-unsound Illegal Implicit experiment,
//! which must record its missed NPEs instead).

use njc_arch::Platform;
use njc_jit::{check_equivalence, compile, execute, execute_unoptimized};
use njc_opt::ConfigKind;

#[test]
fn windows_matrix_is_equivalent() {
    let p = Platform::windows_ia32();
    for w in njc_workloads::all() {
        for kind in ConfigKind::table12_rows() {
            check_equivalence(&w, &p, kind).unwrap_or_else(|e| panic!("equivalence failure: {e}"));
        }
        check_equivalence(&w, &p, ConfigKind::RefJit)
            .unwrap_or_else(|e| panic!("equivalence failure: {e}"));
    }
}

#[test]
fn aix_matrix_is_equivalent_modulo_illegal_implicit() {
    let p = Platform::aix_ppc();
    for w in njc_workloads::all() {
        for kind in ConfigKind::table67_rows() {
            check_equivalence(&w, &p, kind).unwrap_or_else(|e| panic!("equivalence failure: {e}"));
        }
    }
}

#[test]
fn micro_workloads_equivalent_on_both_platforms() {
    for (name, module) in njc_workloads::micro::all_micro() {
        let w = njc_workloads::Workload {
            name: Box::leak(name.to_string().into_boxed_str()),
            suite: njc_workloads::Suite::Micro,
            module,
            entry: "main",
            work_units: 1,
        };
        for p in [Platform::windows_ia32(), Platform::aix_ppc()] {
            for kind in [
                ConfigKind::NoNullOptNoTrap,
                ConfigKind::NoNullOptTrap,
                ConfigKind::OldNullCheck,
                ConfigKind::Phase1Only,
                ConfigKind::Full,
                ConfigKind::AixSpeculation,
            ] {
                check_equivalence(&w, &p, kind)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", p.name));
            }
        }
    }
}

#[test]
fn null_seeded_npe_paths_survive_all_sound_configs() {
    // The stress case: NPEs actually fire. Every sound configuration must
    // deliver the exact same exception pattern.
    let micro = njc_workloads::micro::null_seeded();
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: micro,
        entry: "main",
        work_units: 1,
    };
    for p in [Platform::windows_ia32(), Platform::aix_ppc()] {
        let base = execute_unoptimized(&w, &p).unwrap();
        assert!(base.exception.is_none(), "NPEs are caught internally");
        // The checksum encodes the NPE count; it must be nonzero.
        let npes = base.trace[1];
        assert_ne!(npes, njc_vm::Value::Int(0), "stress case exercises NPEs");
        for kind in [
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
        ] {
            let out = check_equivalence(&w, &p, kind)
                .unwrap_or_else(|e| panic!("null_seeded on {}: {e}", p.name));
            assert_eq!(out.trace, base.trace);
        }
    }
}

#[test]
fn illegal_implicit_misses_npes_on_aix_only() {
    // §5.4: applying the Intel phase 2 on AIX silently misses NPEs.
    let micro = njc_workloads::micro::null_seeded();
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: micro,
        entry: "main",
        work_units: 1,
    };
    let aix = Platform::aix_ppc();
    let compiled = compile(&w, &aix, ConfigKind::AixIllegalImplicit);
    let out = execute(&compiled, &aix).expect("runs to completion (with garbage)");
    assert!(
        out.stats.missed_npes > 0,
        "the illegal configuration must record missed NPEs: {:?}",
        out.stats
    );
    // The same configuration on Windows (where reads DO trap) is sound.
    let win = Platform::windows_ia32();
    let base = execute_unoptimized(&w, &win).unwrap();
    let compiled = compile(&w, &win, ConfigKind::Full);
    let out = execute(&compiled, &win).unwrap();
    base.assert_equivalent(&out).unwrap();
    assert_eq!(out.stats.missed_npes, 0);
}

#[test]
fn s390_platform_matrix_is_equivalent() {
    // The paper's third JIT target. Read+write trapping like Windows, so
    // the full configuration set applies.
    let p = Platform::linux_s390();
    for w in njc_workloads::jbytemark().into_iter().take(4) {
        for kind in [
            ConfigKind::Full,
            ConfigKind::OldNullCheck,
            ConfigKind::NoNullOptNoTrap,
        ] {
            check_equivalence(&w, &p, kind).unwrap_or_else(|e| panic!("s390: {e}"));
        }
    }
    let micro = njc_workloads::micro::null_seeded();
    let w = njc_workloads::Workload {
        name: "null_seeded",
        suite: njc_workloads::Suite::Micro,
        module: micro,
        entry: "main",
        work_units: 1,
    };
    check_equivalence(&w, &p, ConfigKind::Full).unwrap();
}
