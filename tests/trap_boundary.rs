//! Boundary fixtures for the protected trap area (§3.3.2).
//!
//! The trap models guard exactly `[0, trap_area_bytes)` of the null page:
//! a dereference at static offset `trap_area_bytes - 8` is the *last*
//! offset that faults on a null base, and an access at offset exactly
//! `trap_area_bytes` is the *first* that does not. The legality predicate
//! is strict `<` — an off-by-one in either direction is a soundness bug
//! (a "protected" access that silently reads past the guard page) or a
//! missed optimization. These fixtures pin the fence end to end on the
//! paper's two trap-area platforms:
//!
//! * IA32/Windows (4 KiB area, reads and writes trap) — read sites;
//! * AIX/PowerPC (4 KiB area, only writes trap) — write sites;
//!
//! at every level: optimized IR (check kind + exception-site marking),
//! the lowered machine site tables, execution with real null arrivals,
//! and the emitted x86-64 binary (the `njc-emit` verifier must find
//! nothing, and byte-level execution must match the simulator).

use njc_arch::Platform;
use njc_codegen::{lower_module, Machine};
use njc_emit::{emit_module, verify_module, ByteMachine};
use njc_ir::{CatchKind, ExceptionKind, FuncBuilder, Inst, Module, NullCheckKind, Op, Type};
use njc_opt::ConfigKind;

/// A module whose class straddles the trap-area fence: one field at the
/// last protected offset (`area - 8`), one at the first unprotected
/// offset (exactly `area`). Four leaf functions dereference a nullable
/// parameter — a read and a write on each side of the fence — and `main`
/// exercises all four with a real object and with null (inside
/// NPE-catching try regions), folding the handler count into the
/// checksum.
fn boundary_module(area: u64) -> Module {
    let mut m = Module::new("trap_boundary");
    let class = m.add_class_with_offsets(
        "Straddle",
        &[("inside", Type::Int, area - 8), ("edge", Type::Int, area)],
    );
    let f_inside = m.field(class, "inside").unwrap();
    let f_edge = m.field(class, "edge").unwrap();

    let read_inside = {
        let mut b = FuncBuilder::new("read_inside", &[Type::Ref], Type::Int);
        let o = b.param(0);
        let v = b.get_field(o, f_inside);
        b.ret(Some(v));
        m.add_function(b.finish())
    };
    let read_edge = {
        let mut b = FuncBuilder::new("read_edge", &[Type::Ref], Type::Int);
        let o = b.param(0);
        let v = b.get_field(o, f_edge);
        b.ret(Some(v));
        m.add_function(b.finish())
    };
    let write_inside = {
        let mut b = FuncBuilder::new_void("write_inside", &[Type::Ref, Type::Int]);
        let o = b.param(0);
        let v = b.param(1);
        b.put_field(o, f_inside, v);
        b.ret(None);
        m.add_function(b.finish())
    };
    let write_edge = {
        let mut b = FuncBuilder::new_void("write_edge", &[Type::Ref, Type::Int]);
        let o = b.param(0);
        let v = b.param(1);
        b.put_field(o, f_edge, v);
        b.ret(None);
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let a = b.iconst(17);
    let c = b.iconst(25);
    b.call_static(write_inside, &[obj, a], None);
    b.call_static(write_edge, &[obj, c], None);
    let ri = b.call_static(read_inside, &[obj], Some(Type::Int)).unwrap();
    let re = b.call_static(read_edge, &[obj], Some(Type::Int)).unwrap();
    let acc = b.add(ri, re);

    // Null arrivals on both sides of the fence, each in its own
    // NPE-catching try region. Inside the area the NPE comes from the
    // hardware trap (on platforms where the access kind traps); at the
    // fence it must come from a retained explicit check — either way the
    // handler runs and observable behavior is identical.
    let npes = b.var(Type::Int);
    let zero = b.iconst(0);
    b.assign(npes, zero);
    for callee in [read_inside, read_edge] {
        let handler = b.new_block();
        let after = b.new_block();
        let tryb = b.new_block();
        let region = b.add_try_region(handler, CatchKind::Only(ExceptionKind::NullPointer), None);
        b.goto(tryb);
        b.set_try_region(Some(region));
        b.switch_to(tryb);
        let nul = b.null_ref();
        let v = b.call_static(callee, &[nul], Some(Type::Int)).unwrap();
        b.binop_into(acc, Op::Add, acc, v);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        let one = b.iconst(1);
        b.binop_into(npes, Op::Add, npes, one);
        b.goto(after);
        b.switch_to(after);
    }
    for callee in [write_inside, write_edge] {
        let handler = b.new_block();
        let after = b.new_block();
        let tryb = b.new_block();
        let region = b.add_try_region(handler, CatchKind::Only(ExceptionKind::NullPointer), None);
        b.goto(tryb);
        b.set_try_region(Some(region));
        b.switch_to(tryb);
        let nul = b.null_ref();
        let seven = b.iconst(7);
        b.call_static(callee, &[nul, seven], None);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        let one = b.iconst(1);
        b.binop_into(npes, Op::Add, npes, one);
        b.goto(after);
        b.switch_to(after);
    }
    let sixteen = b.iconst(16);
    let hi = b.binop(Op::Shl, npes, sixteen);
    let out = b.add(acc, hi);
    b.observe(acc);
    b.observe(npes);
    b.ret(Some(out));
    m.add_function(b.finish());
    m
}

/// Explicit null checks and exception-site marks in one function of an
/// optimized module.
fn check_shape(m: &Module, name: &str) -> (usize, usize) {
    let fid = m.function_by_name(name).unwrap();
    let f = m.function(fid);
    let mut explicit = 0;
    let mut sites = 0;
    for block in f.blocks() {
        for inst in &block.insts {
            if matches!(
                inst,
                Inst::NullCheck {
                    kind: NullCheckKind::Explicit,
                    ..
                }
            ) {
                explicit += 1;
            }
            if inst.is_exception_site() {
                sites += 1;
            }
        }
    }
    (explicit, sites)
}

fn optimized(platform: &Platform, kind: ConfigKind) -> Module {
    let mut m = boundary_module(platform.trap.trap_area_bytes);
    njc_opt::optimize_module(&mut m, platform, &kind.to_config(platform));
    m
}

#[test]
fn ia32_read_at_last_protected_offset_is_implicit_at_fence_explicit() {
    let p = Platform::windows_ia32();
    assert_eq!(p.trap.trap_area_bytes, 4096);
    let m = optimized(&p, ConfigKind::Full);
    let (explicit_in, sites_in) = check_shape(&m, "read_inside");
    assert_eq!(
        (explicit_in, sites_in > 0),
        (0, true),
        "offset {} (== area - 8) must be an implicit exception site",
        4096 - 8
    );
    let (explicit_edge, sites_edge) = check_shape(&m, "read_edge");
    assert!(
        explicit_edge > 0,
        "offset 4096 (== area) is outside the guard: the check must stay explicit"
    );
    assert_eq!(
        sites_edge, 0,
        "an access beyond the protected area must never be marked a site"
    );
}

#[test]
fn aix_configs_keep_every_check_explicit_on_both_sides_of_the_fence() {
    // §5.4: the paper's AIX configurations never use implicit checks —
    // reads of the null page do not trap, so phase 2 is off and every
    // surviving check is explicit, protected offset or not.
    let p = Platform::aix_ppc();
    assert_eq!(p.trap.trap_area_bytes, 4096);
    for kind in [ConfigKind::AixSpeculation, ConfigKind::AixNoSpeculation] {
        let m = optimized(&p, kind);
        for name in ["read_inside", "read_edge", "write_inside", "write_edge"] {
            let (explicit, sites) = check_shape(&m, name);
            assert!(explicit > 0, "{kind:?} {name}: check must stay explicit");
            assert_eq!(sites, 0, "{kind:?} {name}: no implicit sites on AIX");
        }
    }
}

#[test]
fn aix_illegal_implicit_misses_exactly_the_protected_read() {
    // The §5.4 negative control lies to the compiler (IA32 trap model on
    // AIX). The fence must still be respected under the lie: inside-area
    // accesses become implicit sites, fence-offset accesses keep their
    // explicit checks — a `<=` boundary bug would also drop the edge
    // check and this test would count a second miss.
    let p = Platform::aix_ppc();
    let m = optimized(&p, ConfigKind::AixIllegalImplicit);
    let (explicit_in, sites_in) = check_shape(&m, "read_inside");
    assert_eq!(
        (explicit_in, sites_in > 0),
        (0, true),
        "inside read implicit"
    );
    let (explicit_win, sites_win) = check_shape(&m, "write_inside");
    assert_eq!(
        (explicit_win, sites_win > 0),
        (0, true),
        "inside write implicit"
    );
    for name in ["read_edge", "write_edge"] {
        let (explicit, sites) = check_shape(&m, name);
        assert!(
            explicit > 0,
            "{name}: fence offset stays checked even under the lie"
        );
        assert_eq!(sites, 0, "{name}: offset == area is never a site");
    }

    // Run on the real AIX trap model. The implicit *write* still traps
    // (writes trap on AIX) and raises its NPE; the implicit *read* of
    // the null page silently yields zero — exactly one missed exception,
    // and the fence-offset accesses both raise correctly through their
    // explicit checks.
    let vm_out = njc_vm::run_module(&m, p, "main", &[]).unwrap();
    assert_eq!(
        vm_out.stats.missed_npes, 1,
        "exactly the protected-offset read escapes"
    );
    let sound = optimized(&p, ConfigKind::AixNoSpeculation);
    let sound_out = njc_vm::run_module(&sound, p, "main", &[]).unwrap();
    assert_eq!(sound_out.stats.missed_npes, 0);
    // Observed handler counts: all four null arrivals caught when sound,
    // three (read_edge, write_inside, write_edge) under the lie.
    assert_eq!(
        sound_out.trace.last(),
        Some(&njc_vm::Value::Int(4)),
        "sound run catches every null arrival: {:?}",
        sound_out.trace
    );
    assert_eq!(
        vm_out.trace.last(),
        Some(&njc_vm::Value::Int(3)),
        "the silent read's handler never ran: {:?}",
        vm_out.trace
    );
}

#[test]
fn machine_tables_and_null_arrivals_respect_the_fence() {
    let p = Platform::windows_ia32();
    let m = optimized(&p, ConfigKind::Full);
    let mm = lower_module(&m);

    let inside = &mm.functions[mm.function_by_name("read_inside").unwrap()];
    assert_eq!(inside.sites.len(), 1, "one implicit site");
    let (_, info) = inside.sites.iter().next().unwrap();
    assert_eq!(info.offset, Some(4096 - 8));
    let edge = &mm.functions[mm.function_by_name("read_edge").unwrap()];
    assert!(
        edge.sites.is_empty(),
        "the fence-offset access has no site entry: {:?}",
        edge.sites.iter().collect::<Vec<_>>()
    );

    // Null actually arrives in main (through both callees): the inside
    // dereference resolves via hardware trap, the fence one via its
    // explicit check — and nothing is missed either way.
    let vm_out = njc_vm::run_module(&m, p, "main", &[]).unwrap();
    let out = Machine::new(&mm, p).run("main").unwrap();
    assert_eq!(
        vm_out.result.map(|v| match v {
            njc_vm::Value::Int(i) => njc_codegen::MValue::Int(i),
            njc_vm::Value::Float(f) => njc_codegen::MValue::Float(f),
            njc_vm::Value::Ref(_) => njc_codegen::MValue::Ref(0),
        }),
        out.result
    );
    assert_eq!(vm_out.exception, out.exception);
    assert_eq!(out.stats.missed_npes, 0);
    assert!(out.stats.traps_taken > 0, "the protected side trapped");
    assert!(
        out.stats.explicit_null_checks > 0,
        "the fence side executed its explicit check"
    );

    // The un-optimized ("all checks explicit") build agrees observably.
    let baseline = optimized(&p, ConfigKind::NoNullOptNoTrap);
    let base_out = njc_vm::run_module(&baseline, p, "main", &[]).unwrap();
    base_out.assert_equivalent(&vm_out).unwrap();
}

#[test]
fn emitted_binary_verifies_clean_and_executes_the_fence_correctly() {
    for (p, kinds) in [
        (
            Platform::windows_ia32(),
            [ConfigKind::Full, ConfigKind::OldNullCheck],
        ),
        (
            Platform::aix_ppc(),
            [ConfigKind::AixSpeculation, ConfigKind::AixNoSpeculation],
        ),
    ] {
        for kind in kinds {
            let m = optimized(&p, kind);
            let mm = lower_module(&m);
            let em = emit_module(&mm, 2);
            let report = verify_module(&em, &p, 2);
            assert!(
                report.findings.is_empty(),
                "{} {kind:?}: {:#?}",
                p.name,
                report.findings
            );
            let byte_out = ByteMachine::new(&em, p).run("main").unwrap();
            let sim_out = Machine::new(&mm, p).run("main").unwrap();
            assert_eq!(byte_out.result, sim_out.result, "{} {kind:?}", p.name);
            assert_eq!(
                byte_out.stats.missed_npes, 0,
                "{} {kind:?}: no null dereference may escape",
                p.name
            );
        }
    }
}
