//! Determinism of the compile-time performance machinery:
//!
//! 1. The parallel per-function pipeline must produce byte-identical IR and
//!    identical `PipelineStats` counters at every thread count, on every
//!    workload — the soundness contract of `OptConfig::threads`.
//! 2. The worklist solver must reach the same fixed point as the
//!    round-robin oracle on randomly generated CFGs, for a forward
//!    must-analysis (non-nullness) and a backward may-analysis (liveness).

use njc::prop::{run_cases, Rng};
use njc_arch::Platform;
use njc_core::nonnull::{compute_sets, NonNullProblem};
use njc_dataflow::{solve, solve_round_robin, BitSet, Direction, Meet, Problem};
use njc_ir::{BlockId, Cond, FieldId, FuncBuilder, Function, Module, Type, VarId};
use njc_opt::{ConfigKind, OptConfig};

/// The IR of every function, concatenated — the byte-identity witness.
fn module_display(m: &Module) -> String {
    m.functions().iter().map(|f| format!("{f}\n")).collect()
}

#[test]
fn parallel_pipeline_is_deterministic_on_all_workloads() {
    for (platform, kind) in [
        (Platform::windows_ia32(), ConfigKind::Full),
        (Platform::windows_ia32(), ConfigKind::OldNullCheck),
        (Platform::aix_ppc(), ConfigKind::AixSpeculation),
    ] {
        let base = kind.to_config(&platform);
        for w in njc_workloads::all() {
            let mut seq = w.module.clone();
            let s1 = njc_opt::optimize_module(&mut seq, &platform, &base);
            for threads in [4, 16] {
                let mut par = w.module.clone();
                let sp =
                    njc_opt::optimize_module(&mut par, &platform, &OptConfig { threads, ..base });
                assert_eq!(
                    module_display(&seq),
                    module_display(&par),
                    "{} [{kind:?}] threads={threads}: IR differs",
                    w.name
                );
                assert_eq!(seq, par, "{} module mismatch", w.name);
                assert_eq!(
                    s1.null_checks, sp.null_checks,
                    "{} [{kind:?}] threads={threads}: counters differ",
                    w.name
                );
                assert_eq!(s1.boundchecks_eliminated, sp.boundchecks_eliminated);
                assert_eq!(s1.loops_versioned, sp.loops_versioned);
                assert_eq!(s1.fields_promoted, sp.fields_promoted);
                assert_eq!(s1.scalar, sp.scalar);
                assert_eq!(s1.copies_propagated, sp.copies_propagated);
                assert_eq!(s1.dead_removed, sp.dead_removed);
            }
        }
    }
}

/// Emits a random structured body: field traffic (carrying the builder's
/// automatic null checks), diamonds, loops, and null-test branches — the
/// CFG shapes whose meet/edge behavior the solver must order correctly.
fn gen_body(
    b: &mut FuncBuilder,
    rng: &mut Rng,
    depth: u32,
    ints: &mut Vec<VarId>,
    refs: &[VarId],
    fields: &[FieldId],
) {
    for _ in 0..rng.range(1, 4) {
        match rng.below(if depth > 0 { 7 } else { 4 }) {
            0 => ints.push(b.iconst(rng.i8() as i64)),
            1 => {
                let r = *rng.pick(refs);
                ints.push(b.get_field(r, *rng.pick(fields)));
            }
            2 => {
                let r = *rng.pick(refs);
                let v = *rng.pick(ints);
                b.put_field(r, *rng.pick(fields), v);
            }
            3 => {
                let v = *rng.pick(ints);
                b.observe(v);
            }
            4 => {
                let (x, y) = (*rng.pick(ints), *rng.pick(ints));
                let t = b.new_block();
                let j = b.new_block();
                b.br_if(Cond::Lt, x, y, t, j);
                b.switch_to(t);
                let mut inner = ints.clone();
                gen_body(b, rng, depth - 1, &mut inner, refs, fields);
                b.goto(j);
                b.switch_to(j);
            }
            5 => {
                let r = *rng.pick(refs);
                let nul = b.new_block();
                let non = b.new_block();
                let j = b.new_block();
                b.br_ifnull(r, nul, non);
                b.switch_to(nul);
                b.goto(j);
                b.switch_to(non);
                let mut inner = ints.clone();
                gen_body(b, rng, depth - 1, &mut inner, refs, fields);
                b.goto(j);
                b.switch_to(j);
            }
            _ => {
                let zero = b.iconst(0);
                let end = b.iconst(rng.range(1, 5) as i64);
                let body: Vec<VarId> = ints.clone();
                b.for_loop(zero, end, 1, |b, _i| {
                    let mut inner = body.clone();
                    gen_body(b, rng, depth - 1, &mut inner, refs, fields);
                });
            }
        }
    }
}

fn gen_function(rng: &mut Rng, m: &Module, fields: &[FieldId]) -> Function {
    let _ = m;
    let mut b = FuncBuilder::new("rand", &[Type::Ref, Type::Ref], Type::Int);
    let a = b.param(0);
    let c = b.param(1);
    let mut ints = vec![b.iconst(1)];
    gen_body(&mut b, rng, 3, &mut ints, &[a, c], fields);
    let last = *ints.last().unwrap();
    b.ret(Some(last));
    b.finish()
}

/// Backward may-analysis (liveness) defined over whole blocks: facts are
/// variables, `out = (in - defs) ∪ upward-exposed-uses`.
struct Liveness<'a> {
    func: &'a Function,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

impl<'a> Liveness<'a> {
    fn new(func: &'a Function) -> Self {
        let nv = func.num_vars();
        let mut gen = Vec::new();
        let mut kill = Vec::new();
        for block in func.blocks() {
            let mut g = BitSet::new(nv);
            let mut k = BitSet::new(nv);
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    g.remove(d.index());
                    k.insert(d.index());
                }
                for u in inst.uses() {
                    g.insert(u.index());
                    k.remove(u.index());
                }
            }
            for u in block.term.uses() {
                g.insert(u.index());
                k.remove(u.index());
            }
            gen.push(g);
            kill.push(k);
        }
        Liveness { func, gen, kill }
    }
}

impl Problem for Liveness<'_> {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn num_facts(&self) -> usize {
        self.func.num_vars()
    }
    fn boundary(&self) -> BitSet {
        BitSet::new(self.func.num_vars())
    }
    fn transfer(&self, block: BlockId, input: &BitSet, output: &mut BitSet) {
        output.subtract_from(input, &self.kill[block.index()]);
        output.union_with(&self.gen[block.index()]);
    }
}

#[test]
fn worklist_matches_round_robin_on_random_cfgs() {
    run_cases("worklist_matches_round_robin_on_random_cfgs", 120, |rng| {
        let mut m = Module::new("rand");
        let class = m.add_class("C", &[("f0", Type::Int), ("f1", Type::Int)]);
        let fields = [m.field(class, "f0").unwrap(), m.field(class, "f1").unwrap()];
        let f = gen_function(rng, &m, &fields);
        njc_ir::verify(&f).unwrap_or_else(|e| {
            panic!(
                "generated function invalid: {:?}\n{f}",
                &e[..1.min(e.len())]
            )
        });

        let nonnull = NonNullProblem {
            func: &f,
            sets: compute_sets(&f),
            earliest: None,
            entry: None,
            num_facts: f.num_vars(),
        };
        let wl = solve(&f, &nonnull);
        let rr = solve_round_robin(&f, &nonnull);
        assert_eq!(wl.ins, rr.ins, "forward fixed points differ\n{f}");
        assert_eq!(wl.outs, rr.outs, "forward fixed points differ\n{f}");

        let live = Liveness::new(&f);
        let wl = solve(&f, &live);
        let rr = solve_round_robin(&f, &live);
        assert_eq!(wl.ins, rr.ins, "backward fixed points differ\n{f}");
        assert_eq!(wl.outs, rr.outs, "backward fixed points differ\n{f}");
        Ok(())
    });
}
