//! Integration tests for the interprocedural non-nullness inference:
//! call-graph facts must flow into phase 1, kill checks the
//! intraprocedural analysis cannot, stay behaviorally invisible, and
//! vanish without a trace when the feature is off.

use njc_arch::Platform;
use njc_ir::{FuncBuilder, FunctionId, Module, Type};
use njc_observe::{CheckEvent, ModuleTrace, Redundancy};
use njc_opt::{optimize_module, optimize_module_traced, ConfigKind, OptConfig};
use njc_vm::run_module;
use njc_workloads::gen::{build_call_module, gen_call_actions, Rng};

fn opt_with(m: &Module, platform: &Platform, kind: ConfigKind, interproc: bool) -> Module {
    let mut out = m.clone();
    let config = OptConfig {
        interproc,
        ..kind.to_config(platform)
    };
    optimize_module(&mut out, platform, &config);
    out
}

/// Phase 1 eliminations of `func` justified by an interprocedural fact —
/// the provenance-true count of "checks interproc killed". (Final-IR site
/// counts cannot measure this: phase 2 marks every guaranteed-trapping
/// access as an exception site whether or not a check obligation reached
/// it.)
fn kills_in(trace: &ModuleTrace, func: &str) -> usize {
    trace
        .functions
        .iter()
        .filter(|ft| ft.function == func)
        .flat_map(|ft| &ft.events)
        .filter(|e| {
            matches!(
                e,
                CheckEvent::Phase1Eliminated {
                    why: Redundancy::Interproc(_),
                    ..
                }
            )
        })
        .count()
}

fn total_kills(trace: &ModuleTrace) -> usize {
    trace
        .functions
        .iter()
        .flat_map(|ft| &ft.events)
        .filter(|e| {
            matches!(
                e,
                CheckEvent::Phase1Eliminated {
                    why: Redundancy::Interproc(_),
                    ..
                }
            )
        })
        .count()
}

/// A module whose helper checks only die with interprocedural facts: the
/// helper dereferences its parameter, and every call site passes a fresh
/// allocation.
fn helper_module() -> Module {
    let mut m = Module::new("helper");
    let c = m.add_class("C", &[("f", Type::Int)]);
    let f = m.field(c, "f").unwrap();

    let helper = {
        let mut b = FuncBuilder::new("helper", &[Type::Ref], Type::Int);
        let p = b.param(0);
        let v = b.get_field(p, f);
        b.ret(Some(v));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let o1 = b.new_object(c);
    let k = b.iconst(3);
    b.put_field(o1, f, k);
    let a = b.call_static(helper, &[o1], Some(Type::Int)).unwrap();
    let o2 = b.new_object(c);
    b.put_field(o2, f, a);
    let bv = b.call_static(helper, &[o2], Some(Type::Int)).unwrap();
    b.observe(bv);
    b.ret(Some(bv));
    m.add_function(b.finish());
    m
}

#[test]
fn interproc_kills_param_checks_in_helper() {
    let m = helper_module();
    let p = Platform::windows_ia32();
    // Inlining would swallow both call sites (making `helper` a root with
    // no facts — correct, but not what this test probes), so turn it off
    // and let the facts do the work.
    let base = OptConfig {
        inline: false,
        ..ConfigKind::Full.to_config(&p)
    };
    let mut off = m.clone();
    let stats_off = optimize_module(&mut off, &p, &base);
    let mut on = m.clone();
    let (stats_on, trace) = optimize_module_traced(
        &mut on,
        &p,
        &OptConfig {
            interproc: true,
            gvn: false,
            ..base
        },
    );
    assert!(
        kills_in(&trace, "helper") >= 1,
        "param fact must kill helper's check; trace shows {} interproc kills",
        total_kills(&trace)
    );
    assert!(
        stats_on.null_checks.phase1.eliminated > stats_off.null_checks.phase1.eliminated,
        "phase 1 must eliminate strictly more with facts: off {} on {}",
        stats_off.null_checks.phase1.eliminated,
        stats_on.null_checks.phase1.eliminated
    );

    // The kill is also visible in the IR when phase 2 is withheld: the
    // helper's explicit check survives without facts and dies with them.
    let bare = OptConfig {
        inline: false,
        phase2: false,
        trivial_trap: false,
        ..ConfigKind::Full.to_config(&p)
    };
    let explicit_in_helper = |m: &Module| {
        m.functions()
            .iter()
            .filter(|f| f.name() == "helper")
            .map(njc_core::phase2::count_explicit)
            .sum::<usize>()
    };
    let mut bare_off = m.clone();
    optimize_module(&mut bare_off, &p, &bare);
    let mut bare_on = m.clone();
    optimize_module(
        &mut bare_on,
        &p,
        &OptConfig {
            interproc: true,
            gvn: false,
            ..bare
        },
    );
    assert_eq!(explicit_in_helper(&bare_off), 1, "check survives intraproc");
    assert_eq!(explicit_in_helper(&bare_on), 0, "fact kills the check");

    // And the optimized modules behave identically.
    let a = run_module(&off, p, "main", &[]).unwrap();
    let b = run_module(&on, p, "main", &[]).unwrap();
    a.assert_equivalent(&b).unwrap();
}

#[test]
fn disabled_interproc_is_byte_identical() {
    // `interproc: false` must produce the same module as every preset (all
    // of which leave the flag off) — the feature leaves no residue.
    let p = Platform::windows_ia32();
    for seed in 0..4u64 {
        let mut rng = Rng::new(seed ^ 0xca11);
        let len = rng.range(1, 10);
        let actions = gen_call_actions(&mut rng, len, 2);
        let m = build_call_module(&actions);
        let preset = opt_with(&m, &p, ConfigKind::Full, false);
        let mut plain = m.clone();
        optimize_module(&mut plain, &p, &ConfigKind::Full.to_config(&p));
        assert_eq!(preset, plain, "seed {seed}");
    }
}

#[test]
fn all_presets_leave_interproc_off() {
    let p = Platform::windows_ia32();
    for kind in [
        ConfigKind::Full,
        ConfigKind::Phase1Only,
        ConfigKind::OldNullCheck,
        ConfigKind::NoNullOptTrap,
        ConfigKind::NoNullOptNoTrap,
        ConfigKind::RefJit,
        ConfigKind::AixSpeculation,
        ConfigKind::AixNoSpeculation,
        ConfigKind::AixNoNullOpt,
        ConfigKind::AixIllegalImplicit,
    ] {
        assert!(
            !kind.to_config(&p).interproc,
            "{kind:?} must not enable interproc by default"
        );
    }
}

#[test]
fn call_corpus_strictly_improves_and_stays_equivalent() {
    // Acceptance: across the call-heavy corpus, interprocedural facts let
    // phase 1 eliminate strictly more checks (and the provenance stream
    // attributes kills to them), with observationally identical behavior
    // on every platform.
    let platforms = [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ];
    let mut total_off = 0usize;
    let mut total_on = 0usize;
    let mut total_attributed = 0usize;
    for seed in 0..6u64 {
        let mut rng = Rng::new(seed ^ 0xca11);
        let len = rng.range(1, 10);
        let actions = gen_call_actions(&mut rng, len, 2);
        let m = build_call_module(&actions);
        for p in &platforms {
            let base = ConfigKind::Full.to_config(p);
            let mut off = m.clone();
            let stats_off = optimize_module(&mut off, p, &base);
            let mut on = m.clone();
            let (stats_on, trace) = optimize_module_traced(
                &mut on,
                p,
                &OptConfig {
                    interproc: true,
                    gvn: false,
                    ..base
                },
            );
            total_off += stats_off.null_checks.phase1.eliminated;
            total_on += stats_on.null_checks.phase1.eliminated;
            total_attributed += total_kills(&trace);
            let a = run_module(&off, *p, "main", &[]).unwrap();
            let b = run_module(&on, *p, "main", &[]).unwrap();
            a.assert_equivalent(&b)
                .unwrap_or_else(|e| panic!("seed {seed} on {}: {e}", p.name));
        }
    }
    assert!(
        total_on > total_off,
        "interproc must strictly increase phase 1 eliminations: off {total_off} on {total_on}"
    );
    assert!(
        total_attributed > 0,
        "provenance must attribute kills to interprocedural facts"
    );
}

#[test]
fn recursion_and_virtual_dispatch_survive_the_pipeline() {
    // Direct recursion: `count(o, n)` dereferences its parameter and
    // recurses; `main` passes a fresh object. The parameter fact must
    // survive the cycle (induction on call depth) and kill the check.
    let mut m = Module::new("rec");
    let c = m.add_class("C", &[("f", Type::Int)]);
    let f = m.field(c, "f").unwrap();
    let self_id = FunctionId::new(m.num_functions());
    {
        let mut b = FuncBuilder::new("count", &[Type::Ref, Type::Int], Type::Int);
        let o = b.param(0);
        let n = b.param(1);
        let v = b.get_field(o, f);
        let done = b.new_block();
        let more = b.new_block();
        let zero = b.iconst(0);
        b.br_if(njc_ir::Cond::Le, n, zero, done, more);
        b.switch_to(more);
        let one = b.iconst(1);
        let n1 = b.binop(njc_ir::Op::Sub, n, one);
        let r = b.call_static(self_id, &[o, n1], Some(Type::Int)).unwrap();
        let s = b.binop(njc_ir::Op::Add, v, r);
        b.ret(Some(s));
        b.switch_to(done);
        b.ret(Some(v));
        let got = m.add_function(b.finish());
        assert_eq!(got, self_id);
    }
    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let o = b.new_object(c);
    let k = b.iconst(2);
    b.put_field(o, f, k);
    let three = b.iconst(3);
    let r = b
        .call_static(self_id, &[o, three], Some(Type::Int))
        .unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());

    let p = Platform::windows_ia32();
    let base = OptConfig {
        inline: false,
        ..ConfigKind::Full.to_config(&p)
    };
    let mut off = m.clone();
    optimize_module(&mut off, &p, &base);
    let mut on = m.clone();
    let (_, trace) = optimize_module_traced(
        &mut on,
        &p,
        &OptConfig {
            interproc: true,
            gvn: false,
            ..base
        },
    );
    // The self-recursive call site must not break the fixpoint: the
    // parameter fact holds by induction on call depth and kills the check.
    assert!(
        kills_in(&trace, "count") >= 1,
        "recursive param fact must kill count's check"
    );
    let a = run_module(&off, p, "main", &[]).unwrap();
    let b2 = run_module(&on, p, "main", &[]).unwrap();
    a.assert_equivalent(&b2).unwrap();
}

#[test]
fn maybe_null_argument_keeps_the_check() {
    // Negative case end-to-end: one call site passes null, so the callee's
    // check must survive and the NPE must still fire identically.
    let mut m = Module::new("neg");
    let c = m.add_class("C", &[("f", Type::Int)]);
    let f = m.field(c, "f").unwrap();
    let helper = {
        let mut b = FuncBuilder::new("helper", &[Type::Ref], Type::Int);
        let p = b.param(0);
        let handler = b.new_block();
        let after = b.new_block();
        let body = b.new_block();
        let code = b.var(Type::Int);
        let out = b.var(Type::Int);
        let z = b.iconst(0);
        b.assign(out, z);
        let region = b.add_try_region(handler, njc_ir::CatchKind::Any, Some(code));
        b.goto(body);
        b.set_try_region(Some(region));
        b.switch_to(body);
        let v = b.get_field(p, f);
        b.assign(out, v);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        b.assign(out, code);
        b.goto(after);
        b.switch_to(after);
        b.ret(Some(out));
        m.add_function(b.finish())
    };
    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let o = b.new_object(c);
    let k = b.iconst(9);
    b.put_field(o, f, k);
    let a = b.call_static(helper, &[o], Some(Type::Int)).unwrap();
    let nul = b.null_ref();
    let bv = b.call_static(helper, &[nul], Some(Type::Int)).unwrap();
    let s = b.binop(njc_ir::Op::Add, a, bv);
    b.observe(s);
    b.ret(Some(s));
    m.add_function(b.finish());

    let p = Platform::windows_ia32();
    let off = opt_with(&m, &p, ConfigKind::Full, false);
    let on = opt_with(&m, &p, ConfigKind::Full, true);
    let a = run_module(&off, p, "main", &[]).unwrap();
    let b2 = run_module(&on, p, "main", &[]).unwrap();
    a.assert_equivalent(&b2).unwrap();
    // The NPE path still fires: helper catches one NPE, so the observed
    // sum includes the handler's exception code exactly once either way.
    let raw = run_module(&m, p, "main", &[]).unwrap();
    raw.assert_equivalent(&b2).unwrap();
    // And the inference itself never claims the poisoned parameter.
    let asm = njc_interproc::infer(&m);
    assert!(
        asm.function("helper")
            .is_none_or(|ff| !ff.nonnull_params.contains(&0)),
        "a null-passing call site must demote the param fact: {asm:?}"
    );
}

#[test]
fn mutual_recursion_keeps_param_facts() {
    // `even`/`odd` call each other with the same object; the optimistic
    // fixpoint must keep both parameter facts through the cycle and kill
    // the deref checks in both bodies.
    let mut m = Module::new("mutual");
    let c = m.add_class("C", &[("f", Type::Int)]);
    let f = m.field(c, "f").unwrap();
    let even_id = FunctionId::new(0);
    let odd_id = FunctionId::new(1);
    let mk = |name: &str, other: FunctionId| {
        let mut b = FuncBuilder::new(name, &[Type::Ref, Type::Int], Type::Int);
        let o = b.param(0);
        let n = b.param(1);
        let v = b.get_field(o, f);
        let done = b.new_block();
        let more = b.new_block();
        let zero = b.iconst(0);
        b.br_if(njc_ir::Cond::Le, n, zero, done, more);
        b.switch_to(more);
        let one = b.iconst(1);
        let n1 = b.binop(njc_ir::Op::Sub, n, one);
        let r = b.call_static(other, &[o, n1], Some(Type::Int)).unwrap();
        let s = b.binop(njc_ir::Op::Add, v, r);
        b.ret(Some(s));
        b.switch_to(done);
        b.ret(Some(v));
        b.finish()
    };
    assert_eq!(m.add_function(mk("even", odd_id)), even_id);
    assert_eq!(m.add_function(mk("odd", even_id)), odd_id);
    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let o = b.new_object(c);
    let k = b.iconst(5);
    b.put_field(o, f, k);
    let four = b.iconst(4);
    let r = b.call_static(even_id, &[o, four], Some(Type::Int)).unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());

    let p = Platform::windows_ia32();
    let base = OptConfig {
        inline: false,
        ..ConfigKind::Full.to_config(&p)
    };
    let mut off = m.clone();
    optimize_module(&mut off, &p, &base);
    let mut on = m.clone();
    let (_, trace) = optimize_module_traced(
        &mut on,
        &p,
        &OptConfig {
            interproc: true,
            gvn: false,
            ..base
        },
    );
    assert!(
        kills_in(&trace, "even") >= 1 && kills_in(&trace, "odd") >= 1,
        "mutual recursion must keep both param facts: even {} odd {}",
        kills_in(&trace, "even"),
        kills_in(&trace, "odd")
    );
    let a = run_module(&off, p, "main", &[]).unwrap();
    let b2 = run_module(&on, p, "main", &[]).unwrap();
    a.assert_equivalent(&b2).unwrap();
}

#[test]
fn dynamic_call_targets_merge_conservatively() {
    // A virtual call site feeds *every* implementation of the method: the
    // clean impl keeps the argument fact (its only caller passes a fresh
    // object), while a statically null-called impl is demoted — even
    // though the null-passing site sits on a dynamically dead path.
    let mut m = Module::new("virt");
    let a = m.add_class("A", &[("f", Type::Int)]);
    let bcls = m.add_class("B", &[("g", Type::Int)]);
    let fa = m.field(a, "f").unwrap();
    let mk_impl = |name: &str| {
        let mut b = FuncBuilder::new(name, &[Type::Ref, Type::Ref], Type::Int);
        b.instance_method();
        let arg = b.param(1);
        let v = b.get_field(arg, fa);
        b.ret(Some(v));
        b.finish()
    };
    let _a_m = m.add_method(a, "m", mk_impl("A_m"));
    let b_m = m.add_method(bcls, "m", mk_impl("B_m"));

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let recv = b.new_object(a);
    let arg = b.new_object(a);
    let k = b.iconst(6);
    b.put_field(arg, fa, k);
    let live = b.new_block();
    let dead = b.new_block();
    let join = b.new_block();
    let out = b.var(Type::Int);
    let zero = b.iconst(0);
    b.br_if(njc_ir::Cond::Ne, zero, zero, dead, live);
    b.switch_to(dead);
    // Statically visible, dynamically unreachable: B_m(recv, null).
    let nul = b.null_ref();
    let d = b.call_static(b_m, &[recv, nul], Some(Type::Int)).unwrap();
    b.assign(out, d);
    b.goto(join);
    b.switch_to(live);
    let r = b
        .call_virtual(a, "m", recv, &[arg], Some(Type::Int))
        .unwrap();
    b.assign(out, r);
    b.goto(join);
    b.switch_to(join);
    b.observe(out);
    b.ret(Some(out));
    m.add_function(b.finish());

    // The inference: A_m keeps the argument fact, B_m loses it.
    let asm = njc_interproc::infer(&m);
    assert!(
        asm.function("A_m")
            .is_some_and(|ff| ff.nonnull_params.contains(&1)),
        "virtual site passes non-null: {asm:?}"
    );
    assert!(
        asm.function("B_m")
            .is_none_or(|ff| !ff.nonnull_params.contains(&1)),
        "static null site must demote B_m's fact: {asm:?}"
    );

    // Through the pipeline: A_m's check dies, B_m's survives.
    let p = Platform::windows_ia32();
    let base = OptConfig {
        inline: false,
        ..ConfigKind::Full.to_config(&p)
    };
    let mut off = m.clone();
    optimize_module(&mut off, &p, &base);
    let mut on = m.clone();
    let (_, trace) = optimize_module_traced(
        &mut on,
        &p,
        &OptConfig {
            interproc: true,
            gvn: false,
            ..base
        },
    );
    assert!(
        kills_in(&trace, "A_m") >= 1,
        "A_m's arg check must die interprocedurally"
    );
    assert_eq!(
        kills_in(&trace, "B_m"),
        0,
        "B_m must keep its arg check (one caller passes null)"
    );
    let x = run_module(&off, p, "main", &[]).unwrap();
    let y = run_module(&on, p, "main", &[]).unwrap();
    x.assert_equivalent(&y).unwrap();
}
