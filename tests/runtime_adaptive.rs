//! Integration properties of the adaptive runtime (`njc-runtime`).
//!
//! Three layers under one roof: the content-addressed cache key must track
//! what the hash *means* (body content, not CFG-generation bookkeeping),
//! the code cache must stay correct under eviction pressure, and a
//! function recompiled mid-run must still reconcile every dynamic trap and
//! explicit check against the provenance of *some* installed tier — the
//! CheckId conservation ledger holding per tier.

use njc_arch::{Platform, TrapModel};
use njc_core::ExplicitOverride;
use njc_ir::{parse_function, AccessKind, BlockId, Inst};
use njc_opt::ConfigKind;
use njc_runtime::{hot_field_workload, CacheKey, RuntimeConfig, TieredRuntime};
use njc_vm::Value;

fn key(f: &njc_ir::Function) -> CacheKey {
    CacheKey::new(
        f,
        ConfigKind::Full,
        TrapModel::windows_ia32(),
        &ExplicitOverride::new(),
    )
}

/// The cache key follows `Function::body_hash`: rewrites through
/// `insts_mut` (which deliberately do *not* bump the CFG generation)
/// change the key exactly when they change content, and generation bumps
/// without content changes leave it alone.
#[test]
fn cache_key_tracks_content_not_generation() {
    let src = "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  nullcheck v0\n  v1 = getfield v0, field0\n  return v1\n}";
    let mut f = parse_function(src).unwrap();
    let original = key(&f);

    // A bump of the CFG generation with no content change: same key.
    let gen_before = f.generation();
    let _ = f.block_mut(BlockId::new(0));
    assert!(
        f.generation() > gen_before,
        "block_mut bumps the generation"
    );
    assert_eq!(key(&f), original, "generation bookkeeping is not content");

    // A non-bumping rewrite through insts_mut that changes content: the
    // key must move even though the generation counter does not.
    let gen_before = f.generation();
    let removed = f.insts_mut(BlockId::new(0)).remove(0);
    assert_eq!(f.generation(), gen_before, "insts_mut does not bump");
    assert_ne!(key(&f), original, "content changed, key must change");

    // Restoring the instruction restores the key byte-for-byte.
    f.insts_mut(BlockId::new(0)).insert(0, removed);
    assert_eq!(key(&f), original, "identical content, identical key");

    // And a same-length replacement is still a content change.
    f.insts_mut(BlockId::new(0))[0] = Inst::Move {
        dst: njc_ir::VarId::new(1),
        src: njc_ir::VarId::new(0),
    };
    assert_ne!(key(&f), original);
}

/// Every key component separates artifacts: config, trap model, override
/// set (the integration-level view of what the cache may ever conflate).
#[test]
fn cache_key_separates_override_sets() {
    let f = parse_function(
        "func f(v0: ref) -> int {\n  locals v1: int\nbb0:\n  v1 = getfield v0, field0 [site]\n  return v1\n}",
    )
    .unwrap();
    let mut read = ExplicitOverride::new();
    read.insert(8, AccessKind::Read);
    let mut write = ExplicitOverride::new();
    write.insert(8, AccessKind::Write);
    let k_read = CacheKey::new(&f, ConfigKind::Full, TrapModel::windows_ia32(), &read);
    let k_write = CacheKey::new(&f, ConfigKind::Full, TrapModel::windows_ia32(), &write);
    assert_ne!(key(&f), k_read, "override set is part of the identity");
    assert_ne!(k_read, k_write, "access kind is part of the slot key");
}

/// A capacity-1 cache thrashes (the workload recompiles two functions) but
/// never corrupts: final bodies and the steady-state outcome are identical
/// to a run with a roomy cache.
#[test]
fn tiny_cache_evicts_without_changing_results() {
    let platform = Platform::windows_ia32();
    let args = [Value::Int(3000), Value::Ref(0)];
    let mut config = RuntimeConfig::for_platform(&platform);
    config.cache_capacity = 1;
    let tiny = TieredRuntime::with_config(hot_field_workload(), platform, config);
    let roomy = TieredRuntime::new(hot_field_workload(), platform);
    // Two runs through the tiny cache force re-misses on whatever was
    // evicted between runs.
    let tiny_first = tiny.run("main", &args).unwrap();
    let tiny_second = tiny.run("main", &args).unwrap();
    let reference = roomy.run("main", &args).unwrap();
    let stats = tiny.cache_stats();
    assert!(
        stats.evictions > 0,
        "two recompiled functions through capacity 1 must evict: {stats:?}"
    );
    for out in [&tiny_first, &tiny_second] {
        assert_eq!(out.final_module, reference.final_module);
        assert_eq!(out.steady.stats, reference.steady.stats);
        assert_eq!(out.overrides, reference.overrides);
    }
}

/// The acceptance property: a function recompiled *mid-run* (the swap
/// demonstrably landed while the loop was turning) still reconciles — the
/// adaptive run's traps and executed explicit CheckIds all resolve to
/// provenance records of some installed tier, and every tier's
/// conservation ledger balances.
#[test]
fn mid_run_recompiled_function_reconciles_across_tiers() {
    let platform = Platform::windows_ia32();
    // Generous enough that detection + recompile + install land mid-run.
    let out = TieredRuntime::new(hot_field_workload(), platform)
        .run("main", &[Value::Int(200_000), Value::Ref(0)])
        .unwrap();
    assert!(out.mid_run_swaps > 0, "swap must land mid-run");
    assert!(
        out.recompiles
            .iter()
            .any(|r| r.mid_run && r.function == "hot"),
        "hot must have been recompiled mid-run: {:?}",
        out.recompiles
    );
    // The adaptive run mixes tier-0 execution (traps at the implicit
    // site) with tier-1 execution (explicit checks from the override).
    assert!(out.adaptive.stats.traps_taken > 0, "tier-0 phase trapped");
    assert!(
        out.adaptive.stats.explicit_null_checks > 0,
        "tier-1 phase ran override-caused explicit checks"
    );
    out.reconcile().expect("all traps and checks explained");
    out.verify_convergence().expect("overrides converged");
    // CheckId conservation holds within every installed tier.
    for (name, tiers) in &out.tier_traces {
        for (i, trace) in tiers.iter().enumerate() {
            trace
                .ledger
                .check()
                .unwrap_or_else(|e| panic!("{name} tier {i}: {e}"));
        }
    }
}
