//! Property-based correctness: random programs — loops, branches, field
//! and array traffic, try regions, *and null references* — must behave
//! observationally identically under every sound optimization
//! configuration on both platforms.
//!
//! This is the oracle the whole reproduction rests on: the optimizer may
//! move, convert, and delete checks at will, but the observable outcome
//! (result, escaped exception, observation trace) must never change, and
//! the VM must never report a fault (unexpected trap / wild access).

use njc::prop::run_cases;
use njc_arch::Platform;
use njc_jit::{compile, execute, execute_unoptimized};
use njc_opt::ConfigKind;
use njc_workloads::gen::{build_module, gen_actions, Action};
use njc_workloads::{Suite, Workload};

fn check_all_configs(actions: &[Action]) -> Result<(), String> {
    let module = build_module(actions);
    njc_ir::verify_module(&module)
        .map_err(|e| format!("generated module invalid: {:?}", &e[..1]))?;
    let w = Workload {
        name: "random",
        suite: Suite::Micro,
        module,
        entry: "main",
        work_units: 1,
    };
    for platform in [Platform::windows_ia32(), Platform::aix_ppc()] {
        let base = execute_unoptimized(&w, &platform)
            .map_err(|f| format!("baseline fault on {}: {f}", platform.name))?;
        for kind in [
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
        ] {
            let compiled = compile(&w, &platform, kind);
            // The static validator must prove every sound output sound —
            // on random programs too, not just the fixed workloads.
            let report = njc_analysis::validate_module(&compiled.module, platform.trap);
            if !report.is_sound() {
                return Err(format!(
                    "static validator rejects {kind:?} on {}:\n{report}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                ));
            }
            let out = execute(&compiled, &platform).map_err(|f| {
                format!(
                    "fault under {kind:?} on {}: {f}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                )
            })?;
            base.assert_equivalent(&out).map_err(|e| {
                format!(
                    "divergence under {kind:?} on {}: {e}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                )
            })?;
            if out.stats.missed_npes != 0 {
                return Err(format!(
                    "sound config {kind:?} on {} missed {} NPEs",
                    platform.name, out.stats.missed_npes
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn random_programs_survive_every_sound_config() {
    run_cases("random_programs_survive_every_sound_config", 160, |rng| {
        let len = rng.range(1, 20);
        let actions = gen_actions(rng, len, 3);
        check_all_configs(&actions)
    });
}

#[test]
fn known_tricky_shapes() {
    // Regression seeds: shapes that exercise specific machinery.
    let cases: Vec<Vec<Action>> = vec![
        // Null deref inside a loop inside a branch.
        vec![Action::IfLt(
            0,
            1,
            vec![Action::Loop(3, vec![Action::GetField(1, 0)])],
        )],
        // Alternating field writes and reads through both refs.
        vec![
            Action::IConst(3),
            Action::PutField(0, 0, 1),
            Action::GetField(0, 0),
            Action::PutField(1, 1, 1), // null write: NPE -> handler
            Action::Observe(1),
        ],
        // Loop that redefines a ref then dereferences it.
        vec![Action::Loop(
            4,
            vec![
                Action::NewObj,
                Action::GetField(2, 1),
                Action::NullRef,
                Action::GetField(3, 0),
            ],
        )],
        // Array traffic mixed with null derefs.
        vec![
            Action::IConst(2),
            Action::ArrStore(1, 1),
            Action::Loop(3, vec![Action::ArrLoad(1), Action::GetField(1, 0)]),
        ],
    ];
    for (i, actions) in cases.iter().enumerate() {
        check_all_configs(actions).unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}
