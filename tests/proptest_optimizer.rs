//! Property-based correctness: random programs — loops, branches, field
//! and array traffic, try regions, *and null references* — must behave
//! observationally identically under every sound optimization
//! configuration on both platforms.
//!
//! This is the oracle the whole reproduction rests on: the optimizer may
//! move, convert, and delete checks at will, but the observable outcome
//! (result, escaped exception, observation trace) must never change, and
//! the VM must never report a fault (unexpected trap / wild access).

use njc_arch::Platform;
use njc_ir::{CatchKind, Cond, FuncBuilder, Module, Op, Type, VarId};
use njc_jit::{compile, execute, execute_unoptimized};
use njc_opt::ConfigKind;
use njc_workloads::{Suite, Workload};
use proptest::prelude::*;

/// One step of the random program.
#[derive(Clone, Debug)]
enum Action {
    /// Define a fresh int from a constant.
    IConst(i8),
    /// Combine two ints (indices into the int pool).
    IntOp(u8, usize, usize),
    /// Allocate an object into the ref pool.
    NewObj,
    /// Push a null into the ref pool.
    NullRef,
    /// Read field `field` of ref `r` into the int pool (may throw NPE).
    GetField(usize, usize),
    /// Write int `v` to field `field` of ref `r` (may throw NPE).
    PutField(usize, usize, usize),
    /// Read `arr[i & mask]` (bounds-checked) into the int pool.
    ArrLoad(usize),
    /// Store to `arr[i & mask]`.
    ArrStore(usize, usize),
    /// Observe an int.
    Observe(usize),
    /// `if (a < b) { nested }`.
    IfLt(usize, usize, Vec<Action>),
    /// Bounded counted loop over the nested body.
    Loop(u8, Vec<Action>),
}

fn action_strategy(depth: u32) -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Action::IConst),
        (0u8..4, 0usize..8, 0usize..8).prop_map(|(o, a, b)| Action::IntOp(o, a, b)),
        Just(Action::NewObj),
        Just(Action::NullRef),
        (0usize..6, 0usize..2).prop_map(|(r, f)| Action::GetField(r, f)),
        (0usize..6, 0usize..2, 0usize..8).prop_map(|(r, f, v)| Action::PutField(r, f, v)),
        (0usize..8).prop_map(Action::ArrLoad),
        (0usize..8, 0usize..8).prop_map(|(i, v)| Action::ArrStore(i, v)),
        (0usize..8).prop_map(Action::Observe),
    ];
    leaf.prop_recursive(depth, 24, 6, |inner| {
        prop_oneof![
            (
                0usize..8,
                0usize..8,
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(a, b, body)| Action::IfLt(a, b, body)),
            (1u8..5, prop::collection::vec(inner, 1..4))
                .prop_map(|(n, body)| Action::Loop(n, body)),
        ]
    })
}

/// Emits one action into the builder, maintaining pools of defined ints
/// and refs so every operand is initialized.
fn emit(
    b: &mut FuncBuilder,
    a: &Action,
    ints: &mut Vec<VarId>,
    refs: &mut Vec<VarId>,
    class: njc_ir::ClassId,
    fields: &[njc_ir::FieldId],
    arr: VarId,
) {
    let int_at = |ints: &Vec<VarId>, i: usize| ints[i % ints.len()];
    let ref_at = |refs: &Vec<VarId>, i: usize| refs[i % refs.len()];
    match a {
        Action::IConst(k) => ints.push(b.iconst(*k as i64)),
        Action::IntOp(o, x, y) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let op = [Op::Add, Op::Sub, Op::Mul, Op::Xor][*o as usize % 4];
            ints.push(b.binop(op, x, y));
        }
        Action::NewObj => refs.push(b.new_object(class)),
        Action::NullRef => refs.push(b.null_ref()),
        Action::GetField(r, f) => {
            let r = ref_at(refs, *r);
            ints.push(b.get_field(r, fields[*f % fields.len()]));
        }
        Action::PutField(r, f, v) => {
            let r = ref_at(refs, *r);
            let v = int_at(ints, *v);
            b.put_field(r, fields[*f % fields.len()], v);
        }
        Action::ArrLoad(i) => {
            let i = int_at(ints, *i);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            ints.push(b.array_load(arr, idx, Type::Int));
        }
        Action::ArrStore(i, v) => {
            let i = int_at(ints, *i);
            let v = int_at(ints, *v);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            b.array_store(arr, idx, v, Type::Int);
        }
        Action::Observe(i) => {
            let v = int_at(ints, *i);
            b.observe(v);
        }
        Action::IfLt(x, y, body) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let t = b.new_block();
            let j = b.new_block();
            b.br_if(Cond::Lt, x, y, t, j);
            b.switch_to(t);
            // Pools are branch-local extensions: anything defined inside
            // the branch must not be used at the join (it may not have
            // executed). Clone-and-restore gives that.
            let mut ints2 = ints.clone();
            let mut refs2 = refs.clone();
            for a in body {
                emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
            }
            b.goto(j);
            b.switch_to(j);
        }
        Action::Loop(n, body) => {
            let zero = b.iconst(0);
            let end = b.iconst(*n as i64);
            b.for_loop(zero, end, 1, |b, _i| {
                let mut ints2 = ints.clone();
                let mut refs2 = refs.clone();
                for a in body {
                    emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
                }
            });
        }
    }
}

/// Builds a module: `work(obj, maybe_null, arr)` runs the action list
/// inside a catch-all try region (so NPEs are observable, not escaping),
/// and `main` calls it with a real object, a null, and a small array.
fn build_module(actions: &[Action]) -> Module {
    let mut m = Module::new("random");
    let class = m.add_class("C", &[("f0", Type::Int), ("f1", Type::Int)]);
    let fields = [m.field(class, "f0").unwrap(), m.field(class, "f1").unwrap()];

    let work = {
        let mut b = FuncBuilder::new("work", &[Type::Ref, Type::Ref, Type::Ref], Type::Int);
        let obj = b.param(0);
        let nul = b.param(1);
        let arr = b.param(2);
        let handler = b.new_block();
        let after = b.new_block();
        let body = b.new_block();
        let code = b.var(Type::Int);
        let out = b.var(Type::Int);
        let z = b.iconst(0);
        b.assign(out, z);
        let region = b.add_try_region(handler, CatchKind::Any, Some(code));
        b.goto(body);
        b.set_try_region(Some(region));
        b.switch_to(body);
        let mut ints = vec![z];
        let mut refs = vec![obj, nul];
        for a in actions {
            emit(&mut b, a, &mut ints, &mut refs, class, &fields, arr);
        }
        let last = *ints.last().unwrap();
        b.assign(out, last);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        b.observe(code);
        b.assign(out, code);
        b.goto(after);
        b.switch_to(after);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let five = b.iconst(5);
    b.put_field(obj, fields[0], five);
    let nul = b.null_ref();
    let eight = b.iconst(8);
    let arr = b.new_array(Type::Int, eight);
    let r = b
        .call_static(work, &[obj, nul, arr], Some(Type::Int))
        .unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

fn check_all_configs(actions: &[Action]) -> Result<(), TestCaseError> {
    let module = build_module(actions);
    njc_ir::verify_module(&module)
        .map_err(|e| TestCaseError::fail(format!("generated module invalid: {:?}", &e[..1])))?;
    let w = Workload {
        name: "random",
        suite: Suite::Micro,
        module,
        entry: "main",
        work_units: 1,
    };
    for platform in [Platform::windows_ia32(), Platform::aix_ppc()] {
        let base = execute_unoptimized(&w, &platform).map_err(|f| {
            TestCaseError::fail(format!("baseline fault on {}: {f}", platform.name))
        })?;
        for kind in [
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
        ] {
            let compiled = compile(&w, &platform, kind);
            let out = execute(&compiled, &platform).map_err(|f| {
                TestCaseError::fail(format!(
                    "fault under {kind:?} on {}: {f}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                ))
            })?;
            base.assert_equivalent(&out).map_err(|e| {
                TestCaseError::fail(format!(
                    "divergence under {kind:?} on {}: {e}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                ))
            })?;
            prop_assert_eq!(out.stats.missed_npes, 0, "sound config missed NPEs");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 160,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_survive_every_sound_config(
        actions in prop::collection::vec(action_strategy(3), 1..20)
    ) {
        check_all_configs(&actions)?;
    }
}

#[test]
fn known_tricky_shapes() {
    // Regression seeds: shapes that exercise specific machinery.
    let cases: Vec<Vec<Action>> = vec![
        // Null deref inside a loop inside a branch.
        vec![Action::IfLt(
            0,
            1,
            vec![Action::Loop(3, vec![Action::GetField(1, 0)])],
        )],
        // Alternating field writes and reads through both refs.
        vec![
            Action::IConst(3),
            Action::PutField(0, 0, 1),
            Action::GetField(0, 0),
            Action::PutField(1, 1, 1), // null write: NPE -> handler
            Action::Observe(1),
        ],
        // Loop that redefines a ref then dereferences it.
        vec![Action::Loop(
            4,
            vec![
                Action::NewObj,
                Action::GetField(2, 1),
                Action::NullRef,
                Action::GetField(3, 0),
            ],
        )],
        // Array traffic mixed with null derefs.
        vec![
            Action::IConst(2),
            Action::ArrStore(1, 1),
            Action::Loop(3, vec![Action::ArrLoad(1), Action::GetField(1, 0)]),
        ],
    ];
    for (i, actions) in cases.iter().enumerate() {
        check_all_configs(actions).unwrap_or_else(|e| panic!("case {i}: {e:?}"));
    }
}
