//! Property-based correctness: random programs — loops, branches, field
//! and array traffic, try regions, *and null references* — must behave
//! observationally identically under every sound optimization
//! configuration on both platforms.
//!
//! This is the oracle the whole reproduction rests on: the optimizer may
//! move, convert, and delete checks at will, but the observable outcome
//! (result, escaped exception, observation trace) must never change, and
//! the VM must never report a fault (unexpected trap / wild access).

use njc::prop::{run_cases, Rng};
use njc_arch::Platform;
use njc_ir::{CatchKind, Cond, FuncBuilder, Module, Op, Type, VarId};
use njc_jit::{compile, execute, execute_unoptimized};
use njc_opt::ConfigKind;
use njc_workloads::{Suite, Workload};

/// One step of the random program.
#[derive(Clone, Debug)]
enum Action {
    /// Define a fresh int from a constant.
    IConst(i8),
    /// Combine two ints (indices into the int pool).
    IntOp(u8, usize, usize),
    /// Allocate an object into the ref pool.
    NewObj,
    /// Push a null into the ref pool.
    NullRef,
    /// Read field `field` of ref `r` into the int pool (may throw NPE).
    GetField(usize, usize),
    /// Write int `v` to field `field` of ref `r` (may throw NPE).
    PutField(usize, usize, usize),
    /// Read `arr[i & mask]` (bounds-checked) into the int pool.
    ArrLoad(usize),
    /// Store to `arr[i & mask]`.
    ArrStore(usize, usize),
    /// Observe an int.
    Observe(usize),
    /// `if (a < b) { nested }`.
    IfLt(usize, usize, Vec<Action>),
    /// Bounded counted loop over the nested body.
    Loop(u8, Vec<Action>),
}

fn gen_action(rng: &mut Rng, depth: u32) -> Action {
    // Nine leaf shapes; the two recursive shapes join the menu while
    // depth budget remains.
    let n = if depth > 0 { 11 } else { 9 };
    match rng.below(n) {
        0 => Action::IConst(rng.i8()),
        1 => Action::IntOp(rng.below(4) as u8, rng.below(8), rng.below(8)),
        2 => Action::NewObj,
        3 => Action::NullRef,
        4 => Action::GetField(rng.below(6), rng.below(2)),
        5 => Action::PutField(rng.below(6), rng.below(2), rng.below(8)),
        6 => Action::ArrLoad(rng.below(8)),
        7 => Action::ArrStore(rng.below(8), rng.below(8)),
        8 => Action::Observe(rng.below(8)),
        9 => {
            let (a, b) = (rng.below(8), rng.below(8));
            let len = rng.range(1, 4);
            Action::IfLt(a, b, gen_actions(rng, len, depth - 1))
        }
        _ => {
            let n = rng.range(1, 5) as u8;
            let len = rng.range(1, 4);
            Action::Loop(n, gen_actions(rng, len, depth - 1))
        }
    }
}

fn gen_actions(rng: &mut Rng, len: usize, depth: u32) -> Vec<Action> {
    (0..len).map(|_| gen_action(rng, depth)).collect()
}

/// Emits one action into the builder, maintaining pools of defined ints
/// and refs so every operand is initialized.
fn emit(
    b: &mut FuncBuilder,
    a: &Action,
    ints: &mut Vec<VarId>,
    refs: &mut Vec<VarId>,
    class: njc_ir::ClassId,
    fields: &[njc_ir::FieldId],
    arr: VarId,
) {
    let int_at = |ints: &Vec<VarId>, i: usize| ints[i % ints.len()];
    let ref_at = |refs: &Vec<VarId>, i: usize| refs[i % refs.len()];
    match a {
        Action::IConst(k) => ints.push(b.iconst(*k as i64)),
        Action::IntOp(o, x, y) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let op = [Op::Add, Op::Sub, Op::Mul, Op::Xor][*o as usize % 4];
            ints.push(b.binop(op, x, y));
        }
        Action::NewObj => refs.push(b.new_object(class)),
        Action::NullRef => refs.push(b.null_ref()),
        Action::GetField(r, f) => {
            let r = ref_at(refs, *r);
            ints.push(b.get_field(r, fields[*f % fields.len()]));
        }
        Action::PutField(r, f, v) => {
            let r = ref_at(refs, *r);
            let v = int_at(ints, *v);
            b.put_field(r, fields[*f % fields.len()], v);
        }
        Action::ArrLoad(i) => {
            let i = int_at(ints, *i);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            ints.push(b.array_load(arr, idx, Type::Int));
        }
        Action::ArrStore(i, v) => {
            let i = int_at(ints, *i);
            let v = int_at(ints, *v);
            let m = b.iconst(7);
            let idx = b.binop(Op::And, i, m);
            b.array_store(arr, idx, v, Type::Int);
        }
        Action::Observe(i) => {
            let v = int_at(ints, *i);
            b.observe(v);
        }
        Action::IfLt(x, y, body) => {
            let (x, y) = (int_at(ints, *x), int_at(ints, *y));
            let t = b.new_block();
            let j = b.new_block();
            b.br_if(Cond::Lt, x, y, t, j);
            b.switch_to(t);
            // Pools are branch-local extensions: anything defined inside
            // the branch must not be used at the join (it may not have
            // executed). Clone-and-restore gives that.
            let mut ints2 = ints.clone();
            let mut refs2 = refs.clone();
            for a in body {
                emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
            }
            b.goto(j);
            b.switch_to(j);
        }
        Action::Loop(n, body) => {
            let zero = b.iconst(0);
            let end = b.iconst(*n as i64);
            b.for_loop(zero, end, 1, |b, _i| {
                let mut ints2 = ints.clone();
                let mut refs2 = refs.clone();
                for a in body {
                    emit(b, a, &mut ints2, &mut refs2, class, fields, arr);
                }
            });
        }
    }
}

/// Builds a module: `work(obj, maybe_null, arr)` runs the action list
/// inside a catch-all try region (so NPEs are observable, not escaping),
/// and `main` calls it with a real object, a null, and a small array.
fn build_module(actions: &[Action]) -> Module {
    let mut m = Module::new("random");
    let class = m.add_class("C", &[("f0", Type::Int), ("f1", Type::Int)]);
    let fields = [m.field(class, "f0").unwrap(), m.field(class, "f1").unwrap()];

    let work = {
        let mut b = FuncBuilder::new("work", &[Type::Ref, Type::Ref, Type::Ref], Type::Int);
        let obj = b.param(0);
        let nul = b.param(1);
        let arr = b.param(2);
        let handler = b.new_block();
        let after = b.new_block();
        let body = b.new_block();
        let code = b.var(Type::Int);
        let out = b.var(Type::Int);
        let z = b.iconst(0);
        b.assign(out, z);
        let region = b.add_try_region(handler, CatchKind::Any, Some(code));
        b.goto(body);
        b.set_try_region(Some(region));
        b.switch_to(body);
        let mut ints = vec![z];
        let mut refs = vec![obj, nul];
        for a in actions {
            emit(&mut b, a, &mut ints, &mut refs, class, &fields, arr);
        }
        let last = *ints.last().unwrap();
        b.assign(out, last);
        b.goto(after);
        b.set_try_region(None);
        b.switch_to(handler);
        b.observe(code);
        b.assign(out, code);
        b.goto(after);
        b.switch_to(after);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    let mut b = FuncBuilder::new("main", &[], Type::Int);
    let obj = b.new_object(class);
    let five = b.iconst(5);
    b.put_field(obj, fields[0], five);
    let nul = b.null_ref();
    let eight = b.iconst(8);
    let arr = b.new_array(Type::Int, eight);
    let r = b
        .call_static(work, &[obj, nul, arr], Some(Type::Int))
        .unwrap();
    b.observe(r);
    b.ret(Some(r));
    m.add_function(b.finish());
    m
}

fn check_all_configs(actions: &[Action]) -> Result<(), String> {
    let module = build_module(actions);
    njc_ir::verify_module(&module)
        .map_err(|e| format!("generated module invalid: {:?}", &e[..1]))?;
    let w = Workload {
        name: "random",
        suite: Suite::Micro,
        module,
        entry: "main",
        work_units: 1,
    };
    for platform in [Platform::windows_ia32(), Platform::aix_ppc()] {
        let base = execute_unoptimized(&w, &platform)
            .map_err(|f| format!("baseline fault on {}: {f}", platform.name))?;
        for kind in [
            ConfigKind::NoNullOptNoTrap,
            ConfigKind::NoNullOptTrap,
            ConfigKind::OldNullCheck,
            ConfigKind::Phase1Only,
            ConfigKind::Full,
            ConfigKind::AixSpeculation,
            ConfigKind::AixNoSpeculation,
        ] {
            let compiled = compile(&w, &platform, kind);
            // The static validator must prove every sound output sound —
            // on random programs too, not just the fixed workloads.
            let report = njc_analysis::validate_module(&compiled.module, platform.trap);
            if !report.is_sound() {
                return Err(format!(
                    "static validator rejects {kind:?} on {}:\n{report}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                ));
            }
            let out = execute(&compiled, &platform).map_err(|f| {
                format!(
                    "fault under {kind:?} on {}: {f}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                )
            })?;
            base.assert_equivalent(&out).map_err(|e| {
                format!(
                    "divergence under {kind:?} on {}: {e}\n{}",
                    platform.name,
                    compiled
                        .module
                        .function(compiled.module.function_by_name("work").unwrap())
                )
            })?;
            if out.stats.missed_npes != 0 {
                return Err(format!(
                    "sound config {kind:?} on {} missed {} NPEs",
                    platform.name, out.stats.missed_npes
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn random_programs_survive_every_sound_config() {
    run_cases("random_programs_survive_every_sound_config", 160, |rng| {
        let len = rng.range(1, 20);
        let actions = gen_actions(rng, len, 3);
        check_all_configs(&actions)
    });
}

#[test]
fn known_tricky_shapes() {
    // Regression seeds: shapes that exercise specific machinery.
    let cases: Vec<Vec<Action>> = vec![
        // Null deref inside a loop inside a branch.
        vec![Action::IfLt(
            0,
            1,
            vec![Action::Loop(3, vec![Action::GetField(1, 0)])],
        )],
        // Alternating field writes and reads through both refs.
        vec![
            Action::IConst(3),
            Action::PutField(0, 0, 1),
            Action::GetField(0, 0),
            Action::PutField(1, 1, 1), // null write: NPE -> handler
            Action::Observe(1),
        ],
        // Loop that redefines a ref then dereferences it.
        vec![Action::Loop(
            4,
            vec![
                Action::NewObj,
                Action::GetField(2, 1),
                Action::NullRef,
                Action::GetField(3, 0),
            ],
        )],
        // Array traffic mixed with null derefs.
        vec![
            Action::IConst(2),
            Action::ArrStore(1, 1),
            Action::Loop(3, vec![Action::ArrLoad(1), Action::GetField(1, 0)]),
        ],
    ];
    for (i, actions) in cases.iter().enumerate() {
        check_all_configs(actions).unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}
