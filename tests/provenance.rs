//! Provenance and conservation properties of the traced optimizer.
//!
//! Every null check the optimizer touches leaves a structured event trail
//! (see `njc-observe`), and the per-function ledger must balance for any
//! program, configuration, and trap model:
//!
//! ```text
//! inserted = implicit + explicit + removed + substituted
//! ```
//!
//! These tests drive the law over the random program generator (the same
//! corpus the behavioral property tests use), reconcile dynamic VM
//! counters back to provenance records, and pin the cross-platform story
//! of the committed guard-wrap fixture: the same check converts to an
//! implicit trap where reads fault and stays explicit where reads are
//! silent.

use njc::prop::run_cases;
use njc_arch::Platform;
use njc_ir::{BlockId, CheckId, FunctionId, Module, Type};
use njc_observe::{reconcile, CheckEvent, FunctionTrace, ModuleTrace};
use njc_opt::{optimize_module, optimize_module_traced, ConfigKind};
use njc_vm::{SiteCounters, Vm, VmConfig};
use njc_workloads::gen::{build_module, gen_actions};

const ALL_KINDS: [ConfigKind; 8] = [
    ConfigKind::NoNullOptNoTrap,
    ConfigKind::NoNullOptTrap,
    ConfigKind::OldNullCheck,
    ConfigKind::Phase1Only,
    ConfigKind::Full,
    ConfigKind::AixSpeculation,
    ConfigKind::AixNoSpeculation,
    ConfigKind::AixIllegalImplicit,
];

fn platforms() -> [Platform; 3] {
    [
        Platform::windows_ia32(),
        Platform::aix_ppc(),
        Platform::linux_s390(),
    ]
}

/// Conservation law over the generated corpus, every configuration ×
/// every trap model. Also asserts the tracing itself is an observer:
/// the traced pipeline must produce the identical module.
#[test]
fn conservation_law_holds_on_generated_programs() {
    run_cases("conservation_law_on_generated_programs", 60, |rng| {
        let actions = gen_actions(rng, 12, 2);
        let module = build_module(&actions);
        for platform in platforms() {
            for kind in ALL_KINDS {
                let config = kind.to_config(&platform);
                let mut plain = module.clone();
                optimize_module(&mut plain, &platform, &config);
                let mut traced = module.clone();
                let (_, trace) = optimize_module_traced(&mut traced, &platform, &config);
                if traced != plain {
                    return Err(format!(
                        "{kind:?} on {}: tracing changed the optimized module",
                        platform.name
                    ));
                }
                trace.check_conservation().map_err(|e| {
                    format!("{kind:?} on {}: ledger unbalanced: {e}", platform.name)
                })?;
            }
        }
        Ok(())
    });
}

/// Conservation with the interprocedural inference on, over the call-heavy
/// corpus: interproc-justified kills enter the ledger as phase 1
/// eliminations, the law must still balance, tracing must still be an
/// observer, and at least one kill must actually be attributed to an
/// interprocedural fact (otherwise the test is vacuous).
#[test]
fn conservation_law_holds_with_interproc_on_call_corpus() {
    use njc_observe::Redundancy;
    use njc_opt::OptConfig;
    use njc_workloads::gen::{build_call_module, gen_call_actions, Rng};

    let mut attributed = 0usize;
    for seed in 0..8u64 {
        let mut rng = Rng::new(seed ^ 0xca11);
        let len = rng.range(1, 10);
        let module = build_call_module(&gen_call_actions(&mut rng, len, 2));
        for platform in platforms() {
            for kind in [ConfigKind::Full, ConfigKind::Phase1Only] {
                let config = OptConfig {
                    interproc: true,
                    gvn: false,
                    ..kind.to_config(&platform)
                };
                let mut plain = module.clone();
                optimize_module(&mut plain, &platform, &config);
                let mut traced = module.clone();
                let (_, trace) = optimize_module_traced(&mut traced, &platform, &config);
                assert_eq!(
                    traced, plain,
                    "seed {seed} {kind:?}+interproc on {}: tracing changed the module",
                    platform.name
                );
                trace.check_conservation().unwrap_or_else(|e| {
                    panic!(
                        "seed {seed} {kind:?}+interproc on {}: ledger unbalanced: {e}",
                        platform.name
                    )
                });
                attributed += trace
                    .functions
                    .iter()
                    .flat_map(|ft| &ft.events)
                    .filter(|e| {
                        matches!(
                            e,
                            CheckEvent::Phase1Eliminated {
                                why: Redundancy::Interproc(_),
                                ..
                            }
                        )
                    })
                    .count();
            }
        }
    }
    assert!(
        attributed > 0,
        "no elimination was ever attributed to an interprocedural fact"
    );
}

/// Reconciles a finished run's per-site counters against the trace: every
/// dynamic hardware trap must resolve to a marked exception site and every
/// executed explicit check to a materialization event.
fn reconcile_counts(module: &Module, trace: &ModuleTrace, counts: &SiteCounters) -> Vec<String> {
    let mut failures = Vec::new();
    for fi in 0..module.num_functions() {
        let name = module.function(FunctionId::new(fi)).name();
        let Some(ft) = trace.function(name) else {
            failures.push(format!("{name}: no function trace"));
            continue;
        };
        let traps: Vec<(BlockId, usize)> = counts
            .traps
            .keys()
            .filter(|(f, _, _)| *f as usize == fi)
            .map(|&(_, b, i)| (BlockId::new(b as usize), i as usize))
            .collect();
        let checks: Vec<CheckId> = counts
            .explicit_checks
            .keys()
            .filter(|(f, _)| *f as usize == fi)
            .map(|&(_, id)| CheckId(id))
            .collect();
        if let Err(missing) = reconcile(ft, &traps, &checks) {
            failures.extend(missing);
        }
    }
    failures
}

/// Dynamic counters of generated programs reconcile to provenance records
/// under every sound configuration on its home platform.
#[test]
fn generated_programs_reconcile_dynamic_counters() {
    let cells = [
        (ConfigKind::Full, Platform::windows_ia32()),
        (ConfigKind::NoNullOptTrap, Platform::windows_ia32()),
        (ConfigKind::OldNullCheck, Platform::linux_s390()),
        (ConfigKind::AixNoSpeculation, Platform::aix_ppc()),
    ];
    run_cases("generated_programs_reconcile_counters", 40, |rng| {
        let actions = gen_actions(rng, 12, 2);
        let module = build_module(&actions);
        for (kind, platform) in &cells {
            let config = kind.to_config(platform);
            let mut optimized = module.clone();
            let (_, trace) = optimize_module_traced(&mut optimized, platform, &config);
            let vm = Vm::new(&optimized, *platform).with_config(VmConfig {
                count_sites: true,
                ..VmConfig::default()
            });
            let outcome = vm
                .run("main", &[])
                .map_err(|f| format!("{kind:?} on {}: fault: {f}", platform.name))?;
            let failures = reconcile_counts(&optimized, &trace, &outcome.site_counts);
            if !failures.is_empty() {
                return Err(format!(
                    "{kind:?} on {}: unreconciled counters:\n  {}",
                    platform.name,
                    failures.join("\n  ")
                ));
            }
        }
        Ok(())
    });
}

/// Replicates the CLI's `.njc` loader (same as tests/difftest.rs):
/// synthesized classes `C0..C7` with eight int fields each, functions
/// split on `func ` lines.
fn load_fixture(path: &str) -> Module {
    let source = std::fs::read_to_string(path).unwrap();
    let mut module = Module::new("fixture");
    for c in 0..8 {
        let fields: Vec<(String, Type)> = (0..8).map(|f| (format!("f{f}"), Type::Int)).collect();
        let refs: Vec<(&str, Type)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        module.add_class(format!("C{c}"), &refs);
    }
    let mut chunks: Vec<String> = Vec::new();
    for line in source.lines() {
        if line.trim_start().starts_with("func ") {
            chunks.push(String::new());
        }
        if let Some(cur) = chunks.last_mut() {
            cur.push_str(line);
            cur.push('\n');
        }
    }
    for chunk in &chunks {
        module.add_function(njc_ir::parse_function(chunk).unwrap());
    }
    njc_ir::verify_module(&module).unwrap();
    module
}

/// How a check ended up, according to its event trail.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Fate {
    Implicit,
    Removed,
    Explicit,
}

fn fate(ft: &FunctionTrace, id: CheckId) -> Fate {
    let mut fate = Fate::Explicit;
    for e in ft.events_for(id) {
        match e {
            CheckEvent::Phase2Converted { .. } | CheckEvent::TrivialConverted { .. } => {
                fate = Fate::Implicit;
            }
            CheckEvent::Phase1Eliminated { .. }
            | CheckEvent::WhaleyEliminated { .. }
            | CheckEvent::Phase2Merged { .. }
            | CheckEvent::Phase2Substituted { .. } => fate = Fate::Removed,
            _ => {}
        }
    }
    fate
}

/// The committed guard-wrap fixture carries exactly one check whose
/// conversion differs across platforms — `work`'s check #0 guards a field
/// *read*, implicit where reads trap (ia32-winnt, s390-linux), explicit
/// where the first page reads silently (ppc-aix) — and `njc explain`'s
/// rendering names it with the distinguishing story line.
#[test]
fn explain_names_the_platform_divergent_check_in_the_guard_wrap_fixture() {
    let module = load_fixture("tests/fixtures/guard_wrap_minimized.njc");
    let kind = ConfigKind::Full;
    let mut traces = Vec::new();
    for platform in platforms() {
        let config = kind.to_config(&platform);
        let mut m = module.clone();
        let (_, trace) = optimize_module_traced(&mut m, &platform, &config);
        trace.check_conservation().unwrap();
        traces.push((platform, trace));
    }

    // Find every (function, check) whose fate is not uniform across the
    // three platforms: it must be exactly `work`'s check #0.
    let mut divergent = Vec::new();
    let (_, first) = &traces[0];
    for ft in &first.functions {
        for id in ft.check_ids() {
            let fates: Vec<Fate> = traces
                .iter()
                .map(|(_, t)| fate(t.function(&ft.function).unwrap(), id))
                .collect();
            if fates.windows(2).any(|w| w[0] != w[1]) {
                divergent.push((ft.function.clone(), id, fates));
            }
        }
    }
    assert_eq!(
        divergent.len(),
        1,
        "expected exactly one platform-divergent check, got {divergent:?}"
    );
    let (func, id, fates) = &divergent[0];
    assert_eq!(func, "work");
    assert_eq!(*id, CheckId(0));
    // ia32 and s390 convert, AIX stays explicit.
    assert_eq!(*fates, vec![Fate::Implicit, Fate::Explicit, Fate::Implicit]);

    // The rendered explanation names the check and tells the divergent
    // story in so many words.
    let ia32 = traces[0].1.function("work").unwrap().explain(Some(*id));
    let aix = traces[1].1.function("work").unwrap().explain(Some(*id));
    assert!(ia32.contains("check #0"), "{ia32}");
    assert!(
        ia32.contains("converted to an implicit hardware trap"),
        "{ia32}"
    );
    assert!(aix.contains("check #0"), "{aix}");
    assert!(aix.contains("materialized as an explicit check"), "{aix}");
}
